"""Simulated wall clock.

A tiny class, but centralizing it buys two invariants the rest of the
stack leans on:

* time never moves backwards (attempts raise :class:`ClockError`), and
* every component reads the *same* clock object, so cross-layer
  timestamps (scheduler decisions, QPU telemetry, TSDB points) are
  directly comparable without skew handling.
"""

from __future__ import annotations

from ..errors import ClockError

__all__ = ["SimClock"]


class SimClock:
    """Monotonic simulated clock measured in float seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ClockError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Raises :class:`ClockError` if ``when`` is in the past.  Advancing
        to the current time is a no-op (same-time events).
        """
        if when < self._now:
            raise ClockError(
                f"cannot move clock backwards: now={self._now}, requested={when}"
            )
        self._now = float(when)

    def advance_by(self, delta: float) -> None:
        """Move the clock forward by ``delta`` seconds (``delta >= 0``)."""
        if delta < 0:
            raise ClockError(f"cannot advance clock by negative delta {delta}")
        self._now += float(delta)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6f})"
