"""Deterministic random-stream registry.

Every stochastic component (arrival processes, drift models, emulator
sampling) draws from its own named :class:`numpy.random.Generator`
derived from one root seed.  Two properties follow:

* changing how often one component draws does not perturb the streams of
  other components (no cross-contamination between experiments), and
* the whole simulation replays exactly from ``(root_seed, names)``.
"""

from __future__ import annotations

import zlib

import numpy as np

from ..errors import SimulationError

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory of independent named random generators from one root seed."""

    def __init__(self, root_seed: int = 0, prefix: str = "") -> None:
        self.root_seed = int(root_seed)
        self.prefix = prefix
        self._streams: dict[str, np.random.Generator] = {}

    def _full_name(self, name: str) -> str:
        return f"{self.prefix}/{name}" if self.prefix else name

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The child seed is derived from ``(root_seed, full_name)`` via a
        CRC digest mixed into a ``SeedSequence`` spawn key, so stream
        identity depends only on the name, not on creation order.
        Python's salted ``hash()`` is deliberately avoided.
        """
        full = self._full_name(name)
        if full not in self._streams:
            digest = zlib.crc32(full.encode())
            seq = np.random.SeedSequence(
                entropy=self.root_seed, spawn_key=(digest, len(full))
            )
            self._streams[full] = np.random.default_rng(seq)
        return self._streams[full]

    def reset(self, name: str) -> None:
        """Forget a stream so the next ``get`` recreates it from scratch."""
        self._streams.pop(self._full_name(name), None)

    def names(self) -> list[str]:
        return sorted(self._streams)

    def fork(self, suffix: str) -> "RngRegistry":
        """Derive a registry whose streams are disjoint from this one.

        Used when an experiment spawns repetitions: each repetition gets
        ``registry.fork(f"rep{i}")``, guaranteeing independent but
        reproducible streams.
        """
        if not suffix:
            raise SimulationError("fork suffix must be non-empty")
        prefix = f"{self.prefix}/{suffix}" if self.prefix else suffix
        return RngRegistry(self.root_seed, prefix=prefix)
