"""Shared resources for simulated processes.

Four primitives, modeled on the classic DES vocabulary:

* :class:`Resource` — ``capacity`` interchangeable slots, FIFO queue.
* :class:`PriorityResource` — slots granted in (priority, fifo) order,
  with optional preemption of lower-priority holders.  Used by the
  middleware daemon's QPU queue (production > test > development).
* :class:`Container` — continuous quantity (e.g. license units,
  GRES timeshare units).
* :class:`Store` — FIFO object store (e.g. result channels).

All requests integrate with the process loop via the
``__sim_request__`` protocol: yielding a request from a process suspends
it until the request is granted.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from ..errors import SimulationError
from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .process import Process, Simulator

__all__ = ["Container", "PriorityResource", "Resource", "Store"]


class _Request:
    """Base request; subclasses fill in ``_try_grant`` semantics."""

    def __init__(self) -> None:
        self.event = Event(name=type(self).__name__)
        self.process: "Process | None" = None
        self.sim: "Simulator | None" = None
        self.granted = False
        self.cancelled = False

    def __sim_request__(self, sim: "Simulator", process: "Process") -> Event:
        self.sim = sim
        self.process = process
        self._enqueue()
        return self.event

    def _enqueue(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def cancel(self) -> None:
        """Withdraw an ungranted request (e.g. the waiter was interrupted)."""
        self.cancelled = True


class Resource:
    """Counted resource with FIFO granting."""

    def __init__(self, capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: deque["_ResourceRequest"] = deque()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def request(self) -> "_ResourceRequest":
        return _ResourceRequest(self)

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError(f"release on idle resource {self.name!r}")
        self.in_use -= 1
        self._grant_waiters()

    def _grant_waiters(self) -> None:
        while self._waiters and self.in_use < self.capacity:
            req = self._waiters.popleft()
            if req.cancelled:
                continue
            self.in_use += 1
            req.granted = True
            req.event.trigger(self)
            assert req.sim is not None
            req.sim.schedule_triggered(req.event, delay=0.0)

    def queue_length(self) -> int:
        return sum(1 for r in self._waiters if not r.cancelled)


class _ResourceRequest(_Request):
    def __init__(self, resource: Resource) -> None:
        super().__init__()
        self.resource = resource

    def _enqueue(self) -> None:
        self.resource._waiters.append(self)
        self.resource._grant_waiters()


class PriorityResource:
    """Resource granted in (priority, arrival) order; lower value = higher priority.

    With ``preemptive=True``, a request that outranks a current holder
    interrupts that holder's process (the holder receives
    :class:`~repro.simkernel.process.Interrupt` with the request as cause)
    and takes its slot.  This is the mechanism behind the paper's
    "production jobs preempt lower-priority jobs" policy (section 3.3).
    """

    def __init__(self, capacity: int = 1, name: str = "priority-resource", preemptive: bool = False) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self.preemptive = preemptive
        self._seq = 0
        self._waiters: list["_PriorityRequest"] = []
        self._holders: list["_PriorityRequest"] = []

    @property
    def in_use(self) -> int:
        return len(self._holders)

    @property
    def available(self) -> int:
        return self.capacity - len(self._holders)

    def request(self, priority: int = 0) -> "_PriorityRequest":
        self._seq += 1
        return _PriorityRequest(self, priority, self._seq)

    def release(self, request: "_PriorityRequest") -> None:
        if request not in self._holders:
            raise SimulationError(f"release of non-holding request on {self.name!r}")
        self._holders.remove(request)
        self._grant_waiters()

    def _grant_waiters(self) -> None:
        self._waiters = [w for w in self._waiters if not w.cancelled]
        self._waiters.sort(key=lambda w: (w.priority, w.seq))
        while self._waiters and len(self._holders) < self.capacity:
            req = self._waiters.pop(0)
            self._grant(req)
        if self.preemptive and self._waiters:
            self._try_preempt()

    def _grant(self, req: "_PriorityRequest") -> None:
        self._holders.append(req)
        req.granted = True
        req.event.trigger(self)
        assert req.sim is not None
        req.sim.schedule_triggered(req.event, delay=0.0)

    def _try_preempt(self) -> None:
        # Highest-priority waiter vs lowest-priority holder.
        waiter = min(self._waiters, key=lambda w: (w.priority, w.seq))
        if not self._holders:
            return
        victim = max(self._holders, key=lambda h: (h.priority, h.seq))
        if waiter.priority < victim.priority:
            self._holders.remove(victim)
            self._waiters.remove(waiter)
            if victim.process is not None and victim.process.alive:
                victim.process.interrupt(cause=("preempted", self.name, waiter.priority))
            self._grant(waiter)

    def queue_length(self) -> int:
        return sum(1 for w in self._waiters if not w.cancelled)

    def holders(self) -> list["_PriorityRequest"]:
        return list(self._holders)


class _PriorityRequest(_Request):
    def __init__(self, resource: PriorityResource, priority: int, seq: int) -> None:
        super().__init__()
        self.resource = resource
        self.priority = priority
        self.seq = seq

    def _enqueue(self) -> None:
        self.resource._waiters.append(self)
        self.resource._grant_waiters()


class Container:
    """Continuous-quantity resource (get/put amounts), FIFO granting.

    Used for license pools and GRES timeshare units where jobs take
    fractional shares of the QPU rather than whole slots.
    """

    def __init__(self, capacity: float, initial: float | None = None, name: str = "container") -> None:
        if capacity <= 0:
            raise SimulationError(f"container capacity must be > 0, got {capacity}")
        self.capacity = float(capacity)
        self.level = float(capacity if initial is None else initial)
        if not (0 <= self.level <= self.capacity):
            raise SimulationError(f"initial level {self.level} outside [0, {capacity}]")
        self.name = name
        self._getters: deque["_ContainerGet"] = deque()

    def get(self, amount: float) -> "_ContainerGet":
        if amount <= 0 or amount > self.capacity:
            raise SimulationError(
                f"cannot get {amount} from container of capacity {self.capacity}"
            )
        return _ContainerGet(self, amount)

    def put(self, amount: float) -> None:
        if amount <= 0:
            raise SimulationError(f"cannot put non-positive amount {amount}")
        if self.level + amount > self.capacity + 1e-9:
            raise SimulationError(
                f"container {self.name!r} overflow: {self.level} + {amount} > {self.capacity}"
            )
        self.level = min(self.capacity, self.level + amount)
        self._grant_getters()

    def _grant_getters(self) -> None:
        # Strict FIFO: a large blocked request blocks smaller later ones
        # (prevents starvation of large consumers).
        while self._getters:
            req = self._getters[0]
            if req.cancelled:
                self._getters.popleft()
                continue
            if req.amount > self.level + 1e-9:
                break
            self._getters.popleft()
            self.level -= req.amount
            req.granted = True
            req.event.trigger(req.amount)
            assert req.sim is not None
            req.sim.schedule_triggered(req.event, delay=0.0)


class _ContainerGet(_Request):
    def __init__(self, container: Container, amount: float) -> None:
        super().__init__()
        self.container = container
        self.amount = float(amount)

    def _enqueue(self) -> None:
        self.container._getters.append(self)
        self.container._grant_getters()


class Store:
    """Unbounded FIFO store of Python objects with blocking get."""

    def __init__(self, name: str = "store") -> None:
        self.name = name
        self.items: deque[Any] = deque()
        self._getters: deque["_StoreGet"] = deque()

    def put(self, item: Any) -> None:
        self.items.append(item)
        self._grant_getters()

    def get(self) -> "_StoreGet":
        return _StoreGet(self)

    def _grant_getters(self) -> None:
        while self._getters and self.items:
            req = self._getters.popleft()
            if req.cancelled:
                continue
            item = self.items.popleft()
            req.granted = True
            req.event.trigger(item)
            assert req.sim is not None
            req.sim.schedule_triggered(req.event, delay=0.0)

    def __len__(self) -> int:
        return len(self.items)


class _StoreGet(_Request):
    def __init__(self, store: Store) -> None:
        super().__init__()
        self.store = store

    def _enqueue(self) -> None:
        self.store._getters.append(self)
        self.store._grant_getters()


def filtered_callbacks(event: Event, predicate: Callable[[Any], bool]) -> list:
    """Utility for tests: callbacks of ``event`` satisfying ``predicate``."""
    return [cb for cb in event.callbacks if predicate(cb)]
