"""Event primitives and the global event queue.

The queue is a binary heap ordered by ``(time, priority, seq)``.  The
``seq`` tiebreaker makes same-time, same-priority events fire in the
order they were scheduled, which keeps simulations bit-for-bit
reproducible — a requirement called out in DESIGN.md because the paper's
scheduling experiments compare policies on identical arrival streams.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from ..errors import ClockError, SimulationError

__all__ = ["Event", "EventQueue", "ScheduledEvent"]


class Event:
    """One-shot event with callbacks and an optional payload.

    Events have three states: *pending* (created), *triggered* (value
    set, scheduled for processing), *processed* (callbacks ran).  The
    separation between triggered and processed lets the simulator batch
    same-time triggers deterministically.
    """

    __slots__ = ("callbacks", "_value", "_triggered", "_processed", "name")

    def __init__(self, name: str = "") -> None:
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._triggered = False
        self._processed = False
        self.name = name

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"event {self.name!r} has no value yet")
        return self._value

    def trigger(self, value: Any = None) -> None:
        """Mark the event triggered with ``value``; idempotence is an error."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value

    def run_callbacks(self) -> None:
        if self._processed:
            raise SimulationError(f"event {self.name!r} processed twice")
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending"
        )
        return f"Event({self.name!r}, {state})"


@dataclass(order=True)
class ScheduledEvent:
    """Heap entry: an event due at ``time`` with a tie-breaking priority.

    ``background`` entries belong to perpetual housekeeping processes
    (telemetry scrapers, drift models): they are processed normally but
    do not keep an unbounded :meth:`Simulator.run` alive.
    """

    time: float
    priority: int
    seq: int
    event: Event = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    background: bool = field(default=False, compare=False)


class EventQueue:
    """Deterministic time-ordered event heap with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._seq = itertools.count()
        self._live = 0
        self._foreground = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def foreground_count(self) -> int:
        return self._foreground

    def push(
        self, time: float, event: Event, priority: int = 0, background: bool = False
    ) -> ScheduledEvent:
        """Schedule ``event`` to be processed at ``time``."""
        if time < 0:
            raise ClockError(f"cannot schedule event at negative time {time}")
        entry = ScheduledEvent(
            time=time, priority=priority, seq=next(self._seq), event=event,
            background=background,
        )
        heapq.heappush(self._heap, entry)
        self._live += 1
        if not background:
            self._foreground += 1
        return entry

    def cancel(self, entry: ScheduledEvent) -> None:
        """Lazily cancel a scheduled entry (O(1); skipped on pop)."""
        if not entry.cancelled:
            entry.cancelled = True
            self._live -= 1
            if not entry.background:
                self._foreground -= 1

    def peek_time(self) -> float:
        """Time of the next live entry; raises if the queue is empty."""
        self._drop_cancelled()
        if not self._heap:
            raise SimulationError("event queue is empty")
        return self._heap[0].time

    def pop(self) -> ScheduledEvent:
        """Remove and return the next live entry in (time, priority, seq) order."""
        self._drop_cancelled()
        if not self._heap:
            raise SimulationError("event queue is empty")
        entry = heapq.heappop(self._heap)
        self._live -= 1
        if not entry.background:
            self._foreground -= 1
        return entry

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
