"""Event primitives and the global event queue.

The queue is a binary heap ordered by ``(time, priority, seq)``.  The
``seq`` tiebreaker makes same-time, same-priority events fire in the
order they were scheduled, which keeps simulations bit-for-bit
reproducible — a requirement called out in DESIGN.md because the paper's
scheduling experiments compare policies on identical arrival streams.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from ..errors import ClockError, SimulationError

__all__ = ["Event", "EventQueue", "ScheduledEvent"]


class Event:
    """One-shot event with callbacks and an optional payload.

    Events have three states: *pending* (created), *triggered* (value
    set, scheduled for processing), *processed* (callbacks ran).  The
    separation between triggered and processed lets the simulator batch
    same-time triggers deterministically.
    """

    __slots__ = ("callbacks", "_value", "_triggered", "_processed", "name")

    def __init__(self, name: str = "") -> None:
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._triggered = False
        self._processed = False
        self.name = name

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"event {self.name!r} has no value yet")
        return self._value

    def trigger(self, value: Any = None) -> None:
        """Mark the event triggered with ``value``; idempotence is an error."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value

    def run_callbacks(self) -> None:
        if self._processed:
            raise SimulationError(f"event {self.name!r} processed twice")
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending"
        )
        return f"Event({self.name!r}, {state})"


@dataclass(order=True)
class ScheduledEvent:
    """Heap entry: an event due at ``time`` with a tie-breaking priority.

    ``background`` entries belong to perpetual housekeeping processes
    (telemetry scrapers, drift models): they are processed normally but
    do not keep an unbounded :meth:`Simulator.run` alive.
    """

    time: float
    priority: int
    seq: int
    event: Event = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    background: bool = field(default=False, compare=False)


#: heaps smaller than this are never compacted — rebuilding a tiny heap
#: costs more than carrying its dead entries to the top
_COMPACT_MIN_HEAP = 64


class EventQueue:
    """Deterministic time-ordered event heap with lazy cancellation.

    Cancellation marks entries dead in O(1) and prunes them lazily when
    they surface at the heap top.  Timeout-heavy workloads (sessions
    racing heartbeats against completions) can accumulate dead entries
    deep in the heap, so when more than half the resident entries are
    cancelled the heap is compacted in one pass.  Compaction preserves
    the (time, priority, seq) total order exactly — ``seq`` is unique,
    so pop order is independent of the heap's internal layout.
    """

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._seq = itertools.count()
        self._live = 0
        self._foreground = 0
        #: cancelled entries believed resident in the heap (approximate:
        #: entries drained by pop_batch and cancelled mid-batch overcount
        #: until the next compaction recomputes the truth)
        self._dead = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def foreground_count(self) -> int:
        return self._foreground

    def push(
        self, time: float, event: Event, priority: int = 0, background: bool = False
    ) -> ScheduledEvent:
        """Schedule ``event`` to be processed at ``time``."""
        if time < 0:
            raise ClockError(f"cannot schedule event at negative time {time}")
        entry = ScheduledEvent(
            time=time, priority=priority, seq=next(self._seq), event=event,
            background=background,
        )
        heapq.heappush(self._heap, entry)
        self._live += 1
        if not background:
            self._foreground += 1
        return entry

    def cancel(self, entry: ScheduledEvent) -> None:
        """Lazily cancel a scheduled entry (O(1); skipped on pop)."""
        if not entry.cancelled:
            entry.cancelled = True
            self._live -= 1
            if not entry.background:
                self._foreground -= 1
            self._dead += 1
            if (
                len(self._heap) >= _COMPACT_MIN_HEAP
                and self._dead * 2 > len(self._heap)
            ):
                self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry in one pass and re-heapify."""
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._dead = 0

    def peek_time(self) -> float:
        """Time of the next live entry; raises if the queue is empty."""
        self._drop_cancelled()
        if not self._heap:
            raise SimulationError("event queue is empty")
        return self._heap[0].time

    def peek_entry(self) -> ScheduledEvent | None:
        """The next live entry without removing it, or None when empty."""
        self._drop_cancelled()
        return self._heap[0] if self._heap else None

    def pop(self) -> ScheduledEvent:
        """Remove and return the next live entry in (time, priority, seq) order."""
        self._drop_cancelled()
        if not self._heap:
            raise SimulationError("event queue is empty")
        entry = heapq.heappop(self._heap)
        self._live -= 1
        if not entry.background:
            self._foreground -= 1
        return entry

    def pop_batch(self) -> tuple[float, list[ScheduledEvent]]:
        """Drain every live entry sharing the next timestamp in one pass.

        Returned entries are in (priority, seq) order but are *not* yet
        accounted as dispatched — the caller marks each one via
        :meth:`consume` as it runs callbacks, so ``foreground_count`` /
        ``__len__`` stay exact mid-batch, and returns any undispatched
        tail with :meth:`requeue`.  Callbacks may schedule new same-time
        entries that sort *before* the remaining batch (the interrupt
        machinery schedules at priority -1); the dispatcher must
        interleave :meth:`peek_entry` against the batch to preserve the
        global (time, priority, seq) order.
        """
        self._drop_cancelled()
        if not self._heap:
            raise SimulationError("event queue is empty")
        heap = self._heap
        batch_time = heap[0].time
        batch: list[ScheduledEvent] = []
        while heap and heap[0].time == batch_time:
            entry = heapq.heappop(heap)
            if entry.cancelled:
                self._dead -= 1
            else:
                batch.append(entry)
        return batch_time, batch

    def consume(self, entry: ScheduledEvent) -> None:
        """Account a batch-drained entry as dispatched."""
        self._live -= 1
        if not entry.background:
            self._foreground -= 1

    def requeue(self, entries: list[ScheduledEvent]) -> None:
        """Return undispatched batch entries to the heap."""
        for entry in entries:
            heapq.heappush(self._heap, entry)

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._dead -= 1
