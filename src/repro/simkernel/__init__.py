"""Discrete-event simulation (DES) kernel.

This is the concurrency substrate for the whole testbed: the Slurm-like
cluster, the middleware daemon's second-level scheduler, the QPU shot
clock and the calibration-drift processes all run as cooperating
processes on a single simulated clock.

Design notes
------------
* Time is ``float`` seconds from simulation start.
* The event queue is a binary heap keyed on ``(time, priority, seq)``;
  ``seq`` is a monotonically increasing tiebreaker so same-time events
  fire in scheduling order (deterministic replay).
* Processes are plain Python generators that ``yield`` commands
  (:class:`~repro.simkernel.process.Timeout`, ``Wait`` on an event,
  resource requests).  This is a deliberately small simpy-like core —
  built from scratch here because the paper's middleware needs hooks
  (tracing, preemption interrupts) that are easier to own than to adapt.
* Everything is deterministic given the seeds handed to
  :class:`~repro.simkernel.rng.RngRegistry`.
"""

from .clock import SimClock
from .events import Event, EventQueue, ScheduledEvent
from .process import Interrupt, Process, Simulator, Timeout, Wait
from .resources import Container, PriorityResource, Resource, Store
from .rng import RngRegistry
from .trace import TraceRecorder, TraceRecord

__all__ = [
    "Container",
    "Event",
    "EventQueue",
    "Interrupt",
    "PriorityResource",
    "Process",
    "Resource",
    "RngRegistry",
    "ScheduledEvent",
    "SimClock",
    "Simulator",
    "Store",
    "Timeout",
    "TraceRecord",
    "TraceRecorder",
    "Wait",
]
