"""Structured trace recording for simulations.

Every layer can emit :class:`TraceRecord` rows (time, component, event,
fields).  The recorder is the raw-data backbone of the benchmark
harness: utilization, wait-time and idle-time metrics are computed from
traces after the run rather than accumulated ad hoc inside components,
so one simulation can be analyzed under many metrics.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from typing import Any

__all__ = ["TraceRecord", "TraceRecorder"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace row.

    ``time`` is simulated seconds; ``component`` names the emitting layer
    (``"slurm"``, ``"daemon"``, ``"qpu"`` ...); ``event`` is a short verb
    (``"job_submit"``, ``"shot_done"`` ...); ``fields`` holds arbitrary
    structured detail.
    """

    time: float
    component: str
    event: str
    fields: dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Append-only trace log with filtered views."""

    def __init__(self) -> None:
        self._records: list[TraceRecord] = []
        self._subscribers: list[Callable[[TraceRecord], None]] = []

    def emit(self, time: float, component: str, event: str, **fields: Any) -> TraceRecord:
        record = TraceRecord(time=time, component=component, event=event, fields=fields)
        self._records.append(record)
        for subscriber in self._subscribers:
            subscriber(record)
        return record

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Live tap: used by the observability scraper to mirror traces
        into the TSDB without post-hoc copying."""
        self._subscribers.append(callback)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def records(
        self,
        component: str | None = None,
        event: str | None = None,
        since: float | None = None,
        until: float | None = None,
    ) -> list[TraceRecord]:
        """Filtered copy of the trace."""

        def keep(r: TraceRecord) -> bool:
            if component is not None and r.component != component:
                return False
            if event is not None and r.event != event:
                return False
            if since is not None and r.time < since:
                return False
            if until is not None and r.time > until:
                return False
            return True

        return [r for r in self._records if keep(r)]

    def pairs(
        self,
        start_event: str,
        end_event: str,
        key: str,
        component: str | None = None,
    ) -> list[tuple[float, float, Any]]:
        """Match start/end events sharing ``fields[key]``.

        Returns ``(start_time, end_time, key_value)`` tuples; unmatched
        starts are dropped.  This is the workhorse for wait-time and
        busy-interval extraction.
        """
        open_starts: dict[Any, float] = {}
        matched: list[tuple[float, float, Any]] = []
        for record in self._records:
            if component is not None and record.component != component:
                continue
            if key not in record.fields:
                continue
            value = record.fields[key]
            if record.event == start_event:
                open_starts[value] = record.time
            elif record.event == end_event and value in open_starts:
                matched.append((open_starts.pop(value), record.time, value))
        return matched

    @staticmethod
    def busy_fraction(intervals: Iterable[tuple[float, float, Any]], horizon: float) -> float:
        """Fraction of ``[0, horizon]`` covered by (possibly overlapping) intervals."""
        if horizon <= 0:
            return 0.0
        spans = sorted((max(0.0, s), min(horizon, e)) for s, e, _ in intervals if e > 0 and s < horizon)
        covered = 0.0
        cursor = 0.0
        for start, end in spans:
            if end <= cursor:
                continue
            covered += end - max(cursor, start)
            cursor = max(cursor, end)
        return covered / horizon
