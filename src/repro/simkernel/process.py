"""Generator-based simulated processes and the simulator loop.

A process is a Python generator that yields *commands*:

* ``Timeout(delay)``   — suspend for ``delay`` simulated seconds,
* ``Wait(event)``      — suspend until ``event`` triggers; resumes with
  the event's value,
* another ``Process``  — wait for a child process to finish; resumes
  with the child's return value,
* a resource request object from :mod:`repro.simkernel.resources`.

Processes can be interrupted (used by the preemption machinery in the
cluster and daemon schedulers): :meth:`Process.interrupt` raises
:class:`Interrupt` inside the generator at its current suspension point.
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from time import perf_counter
from typing import Any

from ..errors import ClockError, ProcessError, SimulationError
from .clock import SimClock
from .events import Event, EventQueue, ScheduledEvent

__all__ = ["Interrupt", "Process", "Simulator", "Timeout", "Wait"]


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted.

    ``cause`` carries arbitrary context (e.g. the preempting job id).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


class Timeout:
    """Command: suspend the yielding process for ``delay`` seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ClockError(f"negative timeout {delay}")
        self.delay = float(delay)


class Wait:
    """Command: suspend the yielding process until ``event`` triggers."""

    __slots__ = ("event",)

    def __init__(self, event: Event) -> None:
        self.event = event


class Process:
    """A running simulated process wrapping a generator.

    The process exposes an :attr:`done_event` other processes can wait
    on; its value is the generator's return value (or the exception that
    killed it, re-raised in the waiter).
    """

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Any, Any, Any],
        name: str = "",
        background: bool = False,
    ) -> None:
        self.sim = sim
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: background processes (scrapers, drift models) never keep an
        #: unbounded Simulator.run() alive — see EventQueue.background.
        self.background = background
        self.done_event = Event(name=f"{self.name}.done")
        self._alive = True
        self._pending_entry: ScheduledEvent | None = None
        self._waiting_on: Event | None = None
        self._resume_callback: Callable[[Event], None] | None = None
        self.return_value: Any = None
        self.error: BaseException | None = None

    @property
    def alive(self) -> bool:
        return self._alive

    # -- driving ---------------------------------------------------------

    def _start(self) -> None:
        self._step(None)

    def _step(self, send_value: Any, exc: BaseException | None = None) -> None:
        """Advance the generator by one yield, then re-arm its suspension."""
        self._pending_entry = None
        self._waiting_on = None
        self._resume_callback = None
        try:
            if exc is not None:
                command = self.generator.throw(exc)
            else:
                command = self.generator.send(send_value)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except Interrupt as leaked:
            # Generator chose not to handle the interrupt: treat as death.
            self._finish(None, leaked)
            return
        except Exception as err:  # deliberate: process bodies may fail
            self._finish(None, err)
            return
        try:
            self._arm(command)
        except ProcessError as err:
            # Bad yield: kill the process rather than unwinding the caller
            # (spawn / event loop) so run_until_process reports it.
            self.generator.close()
            self._finish(None, err)

    def _arm(self, command: Any) -> None:
        sim = self.sim
        if isinstance(command, Timeout):
            event = Event(name=f"{self.name}.timeout")
            resume = lambda ev: self._step(ev.value)  # noqa: E731
            event.callbacks.append(resume)
            self._pending_entry = sim.schedule(
                event, delay=command.delay, background=self.background
            )
            self._waiting_on = event
            self._resume_callback = resume
        elif isinstance(command, Wait):
            self._wait_for(command.event)
        elif isinstance(command, Process):
            self._wait_for(command.done_event, unwrap_process=command)
        elif isinstance(command, Event):
            self._wait_for(command)
        elif hasattr(command, "__sim_request__"):
            # Resource request protocol: object arms itself and returns the
            # event the process should wait on.
            event = command.__sim_request__(sim, self)
            self._wait_for(event)
        else:
            raise ProcessError(
                f"process {self.name!r} yielded unsupported command {command!r}"
            )

    def _wait_for(self, event: Event, unwrap_process: "Process | None" = None) -> None:
        def resume(ev: Event) -> None:
            if unwrap_process is not None and unwrap_process.error is not None:
                self._step(None, exc=unwrap_process.error)
            else:
                self._step(ev.value)

        if event.processed:
            # Already done: resume on the next tick at the current time to
            # preserve run-to-yield semantics.
            immediate = Event(name=f"{self.name}.immediate")
            immediate.callbacks.append(resume)
            immediate.trigger(event.value if event.triggered else None)
            self._pending_entry = self.sim.schedule_triggered(
                immediate, delay=0.0, background=self.background
            )
            self._waiting_on = immediate
            self._resume_callback = resume
        else:
            event.callbacks.append(resume)
            self._waiting_on = event
            self._resume_callback = resume

    def _finish(self, value: Any, error: BaseException | None) -> None:
        self._alive = False
        self.return_value = value
        self.error = error
        self.done_event.trigger(value)
        self.sim.schedule_triggered(self.done_event, delay=0.0, background=self.background)

    # -- interruption ----------------------------------------------------

    def interrupt(self, cause: Any = None) -> None:
        """Interrupt the process at its current suspension point.

        If the process is waiting on a timeout, the timeout is cancelled.
        If it is waiting on an external event, the callback is detached so
        a later trigger will not resume a dead continuation.
        """
        if not self._alive:
            raise ProcessError(f"cannot interrupt finished process {self.name!r}")
        if self._pending_entry is not None:
            self.sim.events.cancel(self._pending_entry)
            self._pending_entry = None
        if self._waiting_on is not None and self._resume_callback is not None:
            # Detach our resume continuation so a later trigger of the event
            # does not resume an already-interrupted frame.
            self._waiting_on.callbacks = [
                cb for cb in self._waiting_on.callbacks if cb is not self._resume_callback
            ]
            self._waiting_on = None
            self._resume_callback = None
        # Deliver the interrupt on the next tick so the interruptor's frame
        # unwinds first (matches simpy semantics and avoids reentrancy).
        event = Event(name=f"{self.name}.interrupt")
        event.callbacks.append(lambda ev: self._step(None, exc=Interrupt(cause)))
        event.trigger(None)
        self.sim.schedule_triggered(event, delay=0.0, priority=-1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Process({self.name!r}, alive={self._alive})"


class Simulator:
    """The event loop: owns the clock and the event queue."""

    def __init__(self, start: float = 0.0) -> None:
        self.clock = SimClock(start)
        self.events = EventQueue()
        self._processes: list[Process] = []
        self._profile: dict[str, float] | None = None
        self._scope_profiler = None
        self._flush_hooks: list[Callable[[], None]] = []

    def add_flush_hook(self, hook: Callable[[], None]) -> None:
        """Register a callable invoked after each dispatched timestamp
        batch (and after every single :meth:`step`).  The batched
        :class:`~repro.federation.events.LifecycleBus` uses this as its
        end-of-tick flush barrier."""
        if hook not in self._flush_hooks:
            self._flush_hooks.append(hook)

    def enable_scope_profiling(self, profiler) -> None:
        """Wrap every event dispatch in a ``sim.step`` profiler scope so
        callback work (broker reconcile, scheduler select, ...) nests
        under it in the call-path stats.  Same invariants as
        :meth:`enable_profiling`: two branches per step when attached,
        one when not, and event ordering is never touched — a
        scope-profiled run is bit-identical to a plain one."""
        self._scope_profiler = profiler

    def enable_profiling(self) -> dict[str, float]:
        """Accumulate per-step wall cost into a live ``{"steps", "wall_s"}``
        dict (returned; also re-returned on repeat calls).  Used by the
        bench harness to self-calibrate latency ratios — profiling adds
        two branch checks per step and never touches event ordering, so
        a profiled run is bit-identical to an unprofiled one.
        """
        if self._profile is None:
            self._profile = {"steps": 0, "wall_s": 0.0}
        return self._profile

    @property
    def now(self) -> float:
        return self.clock.now

    # -- scheduling ------------------------------------------------------

    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = 0, background: bool = False
    ) -> ScheduledEvent:
        """Schedule a *pending* event; it is triggered when popped."""
        return self.events.push(self.now + delay, event, priority, background=background)

    def schedule_triggered(
        self, event: Event, delay: float = 0.0, priority: int = 0, background: bool = False
    ) -> ScheduledEvent:
        """Schedule an event that has already been triggered."""
        entry = self.events.push(self.now + delay, event, priority, background=background)
        entry.pretriggered = True  # type: ignore[attr-defined]
        return entry

    def mark_pretriggered(self, entry: ScheduledEvent) -> None:
        entry.pretriggered = True  # type: ignore[attr-defined]

    def timeout_event(self, delay: float, value: Any = None, name: str = "timeout") -> Event:
        """Create an event that triggers ``delay`` seconds from now."""
        event = Event(name=name)
        event.trigger(value)
        self.schedule_triggered(event, delay=delay)
        return event

    # -- processes -------------------------------------------------------

    def spawn(
        self, generator: Generator[Any, Any, Any], name: str = "", background: bool = False
    ) -> Process:
        """Create and start a process from a generator.

        ``background=True`` marks a perpetual housekeeping process
        (telemetry scraper, drift model): its pending events never keep
        an unbounded :meth:`run` alive, so simulations with eternal
        monitors still terminate when the *real* work drains.
        """
        process = Process(self, generator, name=name, background=background)
        self._processes.append(process)
        process._start()
        return process

    def call_at(self, when: float, callback: Callable[[], None], name: str = "call_at") -> ScheduledEvent:
        """Run ``callback()`` at absolute simulated time ``when``."""
        if when < self.now:
            raise ClockError(f"call_at in the past: now={self.now}, when={when}")
        event = Event(name=name)
        event.callbacks.append(lambda ev: callback())
        event.trigger(None)
        entry = self.events.push(when, event, 0)
        entry.pretriggered = True  # type: ignore[attr-defined]
        return entry

    def call_in(self, delay: float, callback: Callable[[], None], name: str = "call_in") -> ScheduledEvent:
        """Run ``callback()`` after ``delay`` simulated seconds."""
        return self.call_at(self.now + delay, callback, name=name)

    # -- running ---------------------------------------------------------

    def step(self) -> float:
        """Process the single next event; returns its time."""
        profile = self._profile
        if profile is not None:
            wall_start = perf_counter()
        sprof = self._scope_profiler
        if sprof is not None:
            sprof.push("sim.step")
        entry = self.events.pop()
        self.clock.advance_to(entry.time)
        event = entry.event
        if not event.triggered:
            event.trigger(None)
        event.run_callbacks()
        for hook in self._flush_hooks:
            hook()
        if sprof is not None:
            sprof.pop()
        if profile is not None:
            profile["steps"] += 1
            profile["wall_s"] += perf_counter() - wall_start
        return entry.time

    def step_batch(self, stop: Callable[[], bool] | None = None) -> tuple[float, int]:
        """Process every event at the next timestamp: one clock advance,
        one profiler push/pop, callbacks dispatched in exactly the order
        repeated :meth:`step` would use.

        Callbacks may schedule *new* same-time entries that sort before
        the remaining drained batch (interrupt delivery uses priority
        -1), so each dispatch re-checks the heap top against the next
        batch entry and takes whichever is globally first.  ``stop`` is
        evaluated between dispatches (never before the first): when it
        returns True the undispatched tail is requeued and the method
        returns early — this reproduces :meth:`run`'s per-event
        foreground / liveness checks under batching.

        Returns ``(batch_time, events_processed)``.
        """
        events = self.events
        profile = self._profile
        if profile is not None:
            wall_start = perf_counter()
        sprof = self._scope_profiler
        if sprof is not None:
            sprof.push("sim.step")
        batch_time, batch = events.pop_batch()
        self.clock.advance_to(batch_time)
        processed = 0
        i = 0
        n = len(batch)
        try:
            while True:
                while i < n and batch[i].cancelled:
                    i += 1
                nxt = batch[i] if i < n else None
                head = events.peek_entry()
                if nxt is None:
                    if head is None or head.time > batch_time:
                        break
                    use_heap = True
                else:
                    use_heap = head is not None and head < nxt
                if processed and stop is not None and stop():
                    break
                if use_heap:
                    entry = events.pop()
                else:
                    entry = nxt
                    i += 1
                    events.consume(entry)
                event = entry.event
                if not event.triggered:
                    event.trigger(None)
                event.run_callbacks()
                processed += 1
        finally:
            if i < n:
                events.requeue(batch[i:])
            for hook in self._flush_hooks:
                hook()
            if sprof is not None:
                sprof.pop()
            if profile is not None:
                profile["steps"] += processed
                profile["wall_s"] += perf_counter() - wall_start
        return batch_time, processed

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        """Run until the queue drains or the clock reaches ``until``.

        Returns the final simulated time.  ``max_events`` guards against
        accidental infinite event loops in tests.
        """
        steps = 0
        events = self.events
        idle = events.foreground_count
        # mid-batch equivalent of the per-step foreground check below
        stop = (lambda: idle() == 0) if until is None else None
        while events:
            if until is not None and events.peek_time() > until:
                self.clock.advance_to(until)
                return self.now
            if until is None and idle() == 0:
                # only perpetual background work (scrapers, drift) left
                break
            _, n = self.step_batch(stop=stop)
            steps += n
            if steps > max_events:
                raise SimulationError(f"exceeded max_events={max_events}; runaway simulation?")
        if until is not None and until > self.now:
            self.clock.advance_to(until)
        return self.now

    def run_until_process(self, process: Process, max_events: int = 10_000_000) -> Any:
        """Run until ``process`` completes; returns its value or raises its error."""
        steps = 0
        events = self.events

        def stop() -> bool:
            return (
                not process.alive
                or not events
                or events.foreground_count() == 0
            )

        while process.alive:
            if not events or events.foreground_count() == 0:
                raise SimulationError(
                    f"deadlock: {process.name!r} still alive but no events pending"
                )
            _, n = self.step_batch(stop=stop)
            steps += n
            if steps > max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
        if process.error is not None:
            raise process.error
        return process.return_value
