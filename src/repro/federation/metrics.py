"""Federated observability: per-site and aggregate metrics.

Reuses the existing observability path end-to-end: instruments live in
a :class:`~repro.observability.metrics.MetricRegistry`, render through
the standard Prometheus exposition, and flow into any site's (or a
dedicated federation) :class:`~repro.observability.tsdb.TimeSeriesDB`
via the ordinary :class:`~repro.observability.scrape.Scraper` target
protocol (:meth:`FederationMetrics.collector`).

Counters are **bus-driven**: :meth:`attach_bus` subscribes to the
broker's :class:`~repro.federation.events.LifecycleBus` and every
counter increment is derived from the published event stream —
placements from ``job_placed``, outcomes from ``job_completed`` /
``job_failed``, resizes from ``resize``, and so on.  There are no
scattered ``record_*`` call sites left in the broker or the resize
loop: anything the metrics plane can see, any other subscriber can see
too.  The same subscription feeds per-stage latency histograms
(queue-wait, execute, end-to-end) from task-transition timestamps.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..observability import MetricRegistry, render_exposition
from .registry import SiteHealth, SiteSnapshot

__all__ = ["FederationMetrics"]

#: numeric encoding for the health gauge (dashboards threshold on it)
_HEALTH_VALUE = {
    SiteHealth.ONLINE: 2.0,
    SiteHealth.SATURATED: 1.0,
    SiteHealth.UNHEALTHY: 0.0,
}

#: stage-latency buckets in *simulated* seconds — wide because queue
#: waits under contention run to minutes of simulated time
_STAGE_BUCKETS = (
    0.05, 0.1, 0.5, 1.0, 2.5, 5.0, 15.0, 30.0,
    60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0,
)


class FederationMetrics:
    """Instrument set for one broker."""

    def __init__(self) -> None:
        self.registry = MetricRegistry()
        self.placements = self.registry.counter(
            "federation_placements_total",
            "Job placements per site",
            label_names=("site",),
        )
        self.reroutes = self.registry.counter(
            "federation_reroutes_total",
            "Failover re-placements per abandoning site",
            label_names=("site",),
        )
        self.outcomes = self.registry.counter(
            "federation_jobs_total",
            "Federated jobs by terminal outcome",
            label_names=("outcome",),
        )
        self.site_depth = self.registry.gauge(
            "federation_site_queue_depth",
            "Queued+running tasks per site",
            label_names=("site",),
        )
        self.site_health = self.registry.gauge(
            "federation_site_health",
            "2=online 1=saturated 0=unhealthy",
            label_names=("site",),
        )
        self.site_fidelity = self.registry.gauge(
            "federation_site_fidelity",
            "Worst-case hardware fidelity proxy per site",
            label_names=("site",),
        )
        self.sites_healthy = self.registry.gauge(
            "federation_sites_healthy", "Sites currently routable"
        )
        # -- malleable placements (resize loop) -----------------------------
        self.share_events = self.registry.counter(
            "federation_share_events_total",
            "Malleable share resize events per site "
            "(kind: grow/shrink/retire/reclaim)",
            label_names=("site", "kind"),
        )
        self.rebalances = self.registry.counter(
            "federation_rebalances_total",
            "Resize-loop passes that changed at least one share weight",
        )
        self.units_completed = self.registry.counter(
            "federation_malleable_units_total",
            "Completed malleable work units per executing site",
            label_names=("site",),
        )
        self.share_weight = self.registry.gauge(
            "federation_share_weight",
            "Aggregate live malleable share weight per site",
            label_names=("site",),
        )
        # -- accounting (budgets + metering) ---------------------------------
        self.admissions = self.registry.counter(
            "federation_admissions_total",
            "Budget admission decisions at intake "
            "(decision: admit/hold/reject/released)",
            label_names=("decision",),
        )
        self.tenant_spend = self.registry.gauge(
            "federation_tenant_spend",
            "Cumulative metered spend per tenant (federation credits)",
            label_names=("tenant",),
        )
        self.tenant_remaining = self.registry.gauge(
            "federation_tenant_budget_remaining",
            "Remaining federation budget per tenant (+Inf when unbudgeted)",
            label_names=("tenant",),
        )
        self.evictions = self.registry.counter(
            "federation_evicted_jobs_total",
            "Terminal job records evicted from broker memory "
            "(spilled to the accounting archive)",
        )
        # -- reconcile hot path (the scheduler tick itself) -------------------
        self.reconcile_scanned = self.registry.gauge(
            "federation_reconcile_scanned_jobs",
            "Jobs the last reconcile sweep touched (live + held; "
            "terminal jobs are archived out of the sweep)",
        )
        self.reconcile_duration = self.registry.gauge(
            "federation_reconcile_duration_ms",
            "Wall-clock cost of the last reconcile sweep",
        )
        self.snapshot_cache_hits = self.registry.counter(
            "federation_snapshot_cache_hits_total",
            "Site snapshots served from the registry cache "
            "(no queue/health/calibration drift since the last build)",
        )
        # -- per-stage latency (bus-derived, simulated seconds) ---------------
        self.stage_latency = self.registry.histogram(
            "federation_stage_latency_seconds",
            "Per-stage latency in simulated seconds "
            "(stage: queue-wait/execute/job)",
            label_names=("stage",),
            buckets=_STAGE_BUCKETS,
        )
        # open-stage tracking for the latency histograms
        self._pending_jobs: dict[str, float] = {}
        self._queued_tasks: dict[tuple[str, str], float] = {}
        self._running_tasks: dict[tuple[str, str], float] = {}
        self._cache_hits_seen = 0

    # -- bus-driven recording -------------------------------------------------

    def attach_bus(self, bus) -> None:
        """Derive every counter from the event stream of ``bus``."""
        bus.subscribe(self._on_event, batch=self.deliver_batch)

    def deliver_batch(self, events) -> None:
        """Batched-bus delivery: counters and stage-latency histograms
        fold over *every* transition, so the batch handler replays the
        stream in publish order — never coalesce this subscriber."""
        for event in events:
            self._on_event(event)

    def _on_event(self, event) -> None:
        kind = event.kind
        # task transitions first: they dominate event volume
        if event.task_id and not kind.startswith("job_"):
            key = (event.site, event.task_id)
            if kind == "queued":
                self._queued_tasks[key] = event.time
            elif kind == "running":
                queued_at = self._queued_tasks.pop(key, None)
                if queued_at is not None:
                    self.stage_latency.observe(
                        event.time - queued_at, labels={"stage": "queue-wait"}
                    )
                self._running_tasks[key] = event.time
            elif kind in ("completed", "failed", "cancelled"):
                started_at = self._running_tasks.pop(key, None)
                self._queued_tasks.pop(key, None)
                if started_at is not None:
                    self.stage_latency.observe(
                        event.time - started_at, labels={"stage": "execute"}
                    )
            elif kind == "preempted":
                self._running_tasks.pop(key, None)
            return
        if kind == "job_placed":
            self.placements.inc(labels={"site": event.site})
        elif kind in ("job_completed", "job_failed"):
            outcome = "completed" if kind == "job_completed" else "failed"
            self.outcomes.inc(labels={"outcome": outcome})
            submitted_at = self._pending_jobs.pop(event.job_id, None)
            if submitted_at is not None:
                self.stage_latency.observe(
                    event.time - submitted_at, labels={"stage": "job"}
                )
        elif kind in ("job_submitted", "job_held"):
            self._pending_jobs.setdefault(event.job_id, event.time)
        elif kind == "job_rerouted":
            self.reroutes.inc(labels={"site": event.site})
        elif kind == "resize":
            self.share_events.inc(
                labels={"site": event.site, "kind": event.payload.get("action", "")}
            )
        elif kind == "rebalance":
            self.rebalances.inc()
        elif kind == "unit_completed":
            self.units_completed.inc(labels={"site": event.site})
        elif kind == "admission":
            self.admissions.inc(
                labels={"decision": event.payload.get("decision", "")}
            )
        elif kind == "jobs_evicted":
            self.evictions.inc(int(event.payload.get("count", 0)))

    def observe_share_weights(self, weights: Mapping[str, float]) -> None:
        for site, weight in weights.items():
            self.share_weight.set(float(weight), labels={"site": site})

    def observe_snapshot_cache(self, hits_total: int) -> None:
        """Sync the cache-hit counter to the registry's cumulative count."""
        delta = hits_total - self._cache_hits_seen
        if delta > 0:
            self.snapshot_cache_hits.inc(delta)
            self._cache_hits_seen = hits_total

    def observe_reconcile(self, scanned: int, duration_s: float) -> None:
        self.reconcile_scanned.set(float(scanned))
        self.reconcile_duration.set(duration_s * 1e3)

    def observe_accounting(self, accounting) -> None:
        """Refresh the per-tenant spend / remaining-budget gauges from a
        :class:`~repro.accounting.FederationAccounting`."""
        tenants = set(accounting.ledger.tenants()) | set(
            accounting.budgets.budgets()
        )
        for tenant in tenants:
            labels = {"tenant": tenant}
            self.tenant_spend.set(accounting.spend(tenant), labels=labels)
            self.tenant_remaining.set(accounting.remaining(tenant), labels=labels)

    def observe_sites(self, snapshots: list[SiteSnapshot]) -> None:
        healthy = 0
        for snap in snapshots:
            labels = {"site": snap.name}
            self.site_depth.set(float(snap.queue_depth), labels=labels)
            self.site_health.set(_HEALTH_VALUE[snap.health], labels=labels)
            self.site_fidelity.set(snap.fidelity_proxy, labels=labels)
            if snap.is_healthy:
                healthy += 1
        self.sites_healthy.set(float(healthy))

    # -- export ----------------------------------------------------------------

    def text(self) -> str:
        """Prometheus exposition of the whole federation view."""
        return render_exposition(self.registry)

    def collector(self) -> "callable":
        """A ``Scraper.add_target`` collector: aggregate federation
        numbers flow into the TSDB on the same cadence as QPU telemetry.
        """

        def collect(now: float) -> Mapping[str, float]:
            out: dict[str, float] = {
                "federation_sites_healthy": self._gauge_or(self.sites_healthy, 0.0),
                "federation_reconcile_scanned_jobs": self._gauge_or(
                    self.reconcile_scanned, 0.0
                ),
            }
            for _, labels, value in self.site_depth.samples():
                out[f"federation_queue_depth_{labels['site']}"] = value
            for _, labels, value in self.site_health.samples():
                out[f"federation_health_{labels['site']}"] = value
            for _, labels, value in self.tenant_spend.samples():
                out[f"federation_spend_{labels['tenant']}"] = value
            for _, labels, value in self.tenant_remaining.samples():
                # +Inf (unbudgeted) stays out of the TSDB: a series that
                # can never alert is noise in every dashboard query
                if value != float("inf"):
                    out[f"federation_budget_remaining_{labels['tenant']}"] = value
            return out

        return collect

    @staticmethod
    def _gauge_or(gauge, default: float) -> float:
        samples = gauge.samples()
        return samples[0][2] if samples else default
