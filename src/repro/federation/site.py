"""One member site of a federation.

A *site* is a complete instance of the paper's single-site stack — a
middleware daemon in front of a QRMI resource pool, usually with a
cluster feeding it locally — that additionally accepts brokered jobs
from the federation.  :class:`FederatedSite` is the thin adapter the
broker talks to: intake (reusing the daemon session machinery the cloud
gateway uses), load/health introspection, and a calibration snapshot
pulled from the site's own observability surface.

All sites of one federation share a single simulated clock (their
daemons are built on the same :class:`~repro.simkernel.Simulator`), so
cross-site brokering decisions and executions interleave causally.
"""

from __future__ import annotations

from typing import Any

from ..daemon.cloud import ensure_session
from ..daemon.queue import PriorityClass
from ..daemon.service import MiddlewareDaemon
from ..errors import SiteUnavailable
from ..qpu.device import QPUDevice
from ..qrmi.resources import ResourceType

__all__ = ["FederatedSite"]


class FederatedSite:
    """Adapter between the federation broker and one site's daemon."""

    def __init__(
        self,
        name: str,
        daemon: MiddlewareDaemon,
        max_queue_depth: int = 8,
        priority_class: PriorityClass = PriorityClass.PRODUCTION,
    ) -> None:
        if max_queue_depth < 1:
            raise SiteUnavailable(f"site {name!r}: max_queue_depth must be >= 1")
        self.name = name
        self.daemon = daemon
        self.max_queue_depth = max_queue_depth
        self.priority_class = priority_class
        self.alive = True
        self._sessions: dict[str, str] = {}  # session owner -> token
        #: lifecycle bus this site publishes task transitions onto
        #: (see :meth:`attach_bus`); None keeps the site silent
        self._bus = None
        # catalog/capacity caches keyed on the daemon's (name, resource
        # identity) pairs: exported types and max-qubit capacities are
        # static per resource object, but the placement path asks for
        # them on every candidate scan — adding, removing, or replacing
        # a resource (even under the same name) rebuilds
        self._catalog_cache: tuple[tuple, dict[str, str]] | None = None
        self._capacity_cache: tuple[tuple, dict[str, int]] | None = None
        self._device_cache: tuple[tuple, dict[str, QPUDevice]] | None = None

    def _resource_key(self) -> tuple:
        return tuple(
            (name, id(res)) for name, res in self.daemon.resources.items()
        )

    def snapshot_signature(self) -> tuple:
        """Cheap change signal for registry snapshot caching: the
        resource identity plus every hardware device's calibration
        version — identical signatures guarantee identical catalog,
        capacity, fidelity, and calibration snapshots."""
        key = self._resource_key()
        return (
            key,
            tuple(
                (name, device.calibration.version)
                for name, device in self._devices(key).items()
            ),
        )

    # -- introspection (feeds SiteRegistry snapshots) -----------------------

    def catalog(self) -> dict[str, str]:
        """name -> type for the resources this site exports to the
        federation (local emulators stay site-private)."""
        key = self._resource_key()
        cached = self._catalog_cache
        if cached is None or cached[0] != key:
            cached = (
                key,
                {
                    name: res.resource_type
                    for name, res in self.daemon.resources.items()
                    if ResourceType.parse(res.resource_type).is_federable
                },
            )
            self._catalog_cache = cached
        return dict(cached[1])

    def queue_depth(self) -> int:
        """Brokered-load signal: queued tasks plus the running one."""
        # queued_count() reads the maintained counters directly — this
        # runs per site per snapshot refresh, so no dict building here
        depth = self.daemon.queue.queued_count()
        if self.daemon.scheduler.current is not None:
            depth += 1
        return depth

    def _devices(self, key: tuple) -> dict[str, QPUDevice]:
        cached = self._device_cache
        if cached is None or cached[0] != key:
            out: dict[str, QPUDevice] = {}
            for name, res in self.daemon.resources.items():
                device = getattr(res, "device", None)
                if isinstance(device, QPUDevice):
                    out[name] = device
            cached = (key, out)
            self._device_cache = cached
        return cached[1]

    def hardware_devices(self) -> dict[str, QPUDevice]:
        return dict(self._devices(self._resource_key()))

    def calibration_snapshot(self) -> dict[str, dict[str, float]]:
        """Per-hardware-resource calibration state (drift visibility)."""
        return {
            name: device.calibration.snapshot()
            for name, device in self.hardware_devices().items()
        }

    def fidelity_proxy(self) -> float:
        """Worst-case hardware health in [0, 1]; 1.0 for emulator-only sites."""
        devices = self.hardware_devices()
        if not devices:
            return 1.0
        return min(d.calibration.fidelity_proxy() for d in devices.values())

    def _capacities(self) -> dict[str, int]:
        key = self._resource_key()
        cached = self._capacity_cache
        if cached is None or cached[0] != key:
            cached = (
                key,
                {
                    name: int(
                        self.daemon.resources[name].target().get("max_qubits", 0)
                    )
                    for name in self.catalog()
                },
            )
            self._capacity_cache = cached
        return cached[1]

    def resource_capacity(self) -> dict[str, int]:
        """max_qubits per exported resource (from its target doc)."""
        return dict(self._capacities())

    def capable_catalog(self, n_qubits: int = 0) -> dict[str, str]:
        """The exported catalog restricted to resources that can hold an
        ``n_qubits`` register — what placement must select from."""
        capacity = self._capacities()
        return {
            name: rtype
            for name, rtype in self.catalog().items()
            if capacity[name] >= n_qubits
        }

    def max_qubits(self) -> int:
        """Largest register any federable resource here accepts."""
        return max(self._capacities().values(), default=0)

    # -- lifecycle events -----------------------------------------------------

    def attach_bus(self, bus) -> None:
        """Publish every task state transition of this site's daemon
        onto ``bus`` (a :class:`~repro.federation.events.LifecycleBus`),
        tagged with the site name — the push path that lets the broker
        and resize loop stop polling task status.  Idempotent; a second
        bus replaces the first."""
        if self._bus is bus:
            return
        self._bus = bus
        self.daemon.queue.add_transition_listener(self._publish_transition)

    def _publish_transition(self, task, old, new) -> None:
        if self._bus is None:
            return
        from .events import publish_task_transition

        publish_task_transition(self._bus, self.daemon.now, self.name, task, new)

    # -- intake (brokered jobs) ---------------------------------------------

    def submit(
        self, program: Any, resource: str, shots: int | None = None,
        owner: str = "federation",
    ) -> str:
        if not self.alive:
            raise SiteUnavailable(f"site {self.name!r} is down", site=self.name)
        token = ensure_session(
            self.daemon, self._sessions, f"fed:{owner}", self.priority_class
        )
        task = self.daemon.submit_task(token, program, resource, shots=shots)
        return task.task_id

    def task_status(self, owner: str, task_id: str) -> dict[str, Any]:
        token = ensure_session(
            self.daemon, self._sessions, f"fed:{owner}", self.priority_class
        )
        return self.daemon.task_status(token, task_id)

    def task_result(self, owner: str, task_id: str) -> Any:
        token = ensure_session(
            self.daemon, self._sessions, f"fed:{owner}", self.priority_class
        )
        return self.daemon.task_result(token, task_id)

    def cancel(self, task_id: str) -> None:
        self.daemon.queue.cancel(task_id)

    # -- failure injection ----------------------------------------------------

    def kill(self) -> None:
        """Simulate a site outage: refuse intake, drop queued work, and
        abort the running task.  Queued/running jobs become the broker's
        problem — exactly the failover scenario the federation must absorb.
        """
        if not self.alive:
            return
        self.alive = False
        for task in self.daemon.queue.all_tasks():
            self.daemon.queue.cancel(task.task_id)
        worker = self.daemon.scheduler._worker
        if self.daemon.scheduler.current is not None and worker.alive:
            worker.interrupt(cause=("site-down", self.name))
