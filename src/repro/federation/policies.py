"""Pluggable routing policies for the federation broker.

A policy answers one question: given the healthy candidate sites for a
job (the broker has already filtered health, capability, and — when any
unsaturated site exists — saturation), which site runs it?  The four
policies mirror the routing families from the co-scheduling literature
(see PAPERS.md: Uberun-style profile-informed placement, malleable
spillover):

* :class:`RoundRobinPolicy`   — fairness baseline, state is one cursor,
* :class:`LeastQueuePolicy`   — route to the shallowest queue,
* :class:`CalibrationAwarePolicy` — prefer the site whose QPU drift is
  lowest for the program's geometry (big registers weight drift harder,
  since blockade-scale errors compound with atom count),
* :class:`StickyPolicy`       — locality/affinity: iterative workloads
  (VQE/SQD sessions) keep hitting the site that holds their warm state,
  falling back to an inner policy on first placement or failover,
* :class:`CostAwarePolicy`    — budget-coupled: rank sites by the share
  of the tenant's remaining federation budget a placement there would
  burn (per-site rate cards) alongside queue depth.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import FederationError
from .registry import SiteSnapshot

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .broker import FederatedJob

__all__ = [
    "CalibrationAwarePolicy",
    "CostAwarePolicy",
    "LeastQueuePolicy",
    "RoundRobinPolicy",
    "RoutingPolicy",
    "StickyPolicy",
]


class RoutingPolicy:
    """Base class: choose one snapshot from a non-empty candidate list.

    Policies answer two questions, and every concrete policy must
    declare both:

    * :meth:`choose` — which site runs a fixed-size job,
    * :meth:`rank_resize` — for malleable placements, the *order* in
      which candidate sites deserve share.  The broker's resize loop
      turns that order into share weights, so a policy's routing
      preference and its grow/shrink preference cannot drift apart.
    """

    name = "abstract"

    def choose(
        self, job: "FederatedJob", candidates: list[SiteSnapshot], now: float
    ) -> SiteSnapshot:
        raise NotImplementedError

    def rank_resize(
        self, job: "FederatedJob", candidates: list[SiteSnapshot], now: float
    ) -> list[SiteSnapshot]:
        """Candidates ordered most- to least-deserving of malleable share."""
        raise NotImplementedError

    def _require(self, candidates: list[SiteSnapshot]) -> None:
        if not candidates:
            raise FederationError(f"policy {self.name!r} called with no candidates")


class RoundRobinPolicy(RoutingPolicy):
    """Cycle through sites in name order; fair under equal health."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(
        self, job: "FederatedJob", candidates: list[SiteSnapshot], now: float
    ) -> SiteSnapshot:
        self._require(candidates)
        ordered = sorted(candidates, key=lambda s: s.name)
        choice = ordered[self._cursor % len(ordered)]
        self._cursor += 1
        return choice

    def rank_resize(
        self, job: "FederatedJob", candidates: list[SiteSnapshot], now: float
    ) -> list[SiteSnapshot]:
        """Rotate name order by the cursor: shares stay fair over time
        without thrashing within one resize tick (the cursor only
        advances on placements)."""
        self._require(candidates)
        ordered = sorted(candidates, key=lambda s: s.name)
        pivot = self._cursor % len(ordered)
        return ordered[pivot:] + ordered[:pivot]


class LeastQueuePolicy(RoutingPolicy):
    """Shallowest queue wins; ties break on name for determinism."""

    name = "least-queue"

    def choose(
        self, job: "FederatedJob", candidates: list[SiteSnapshot], now: float
    ) -> SiteSnapshot:
        self._require(candidates)
        return min(candidates, key=lambda s: (s.queue_depth, s.name))

    def rank_resize(
        self, job: "FederatedJob", candidates: list[SiteSnapshot], now: float
    ) -> list[SiteSnapshot]:
        """Shallowest queues deserve the biggest shares."""
        self._require(candidates)
        return sorted(candidates, key=lambda s: (s.queue_depth, s.name))


class CalibrationAwarePolicy(RoutingPolicy):
    """Route by drift-adjusted score.

    Score = geometry-weighted infidelity plus a queue-pressure term, so
    a pristine-but-buried site does not starve a slightly-drifted idle
    one.  ``1 - fidelity_proxy`` is scaled by the program's register
    size relative to the site's capacity: the larger the register, the
    more a drifted calibration costs (more atoms see the miscalibrated
    drive), matching how drift degrades blockade-ordered outcomes.
    """

    name = "calibration-aware"

    def __init__(self, queue_weight: float = 0.02) -> None:
        self.queue_weight = queue_weight

    def _score(self, job: "FederatedJob", snap: SiteSnapshot) -> tuple[float, str]:
        n_qubits = max(1, job.n_qubits)
        geometry_weight = 1.0 + n_qubits / max(1, snap.max_qubits)
        drift_cost = (1.0 - snap.fidelity_proxy) * geometry_weight
        return (drift_cost + self.queue_weight * snap.queue_depth, snap.name)

    def choose(
        self, job: "FederatedJob", candidates: list[SiteSnapshot], now: float
    ) -> SiteSnapshot:
        self._require(candidates)
        return min(candidates, key=lambda snap: self._score(job, snap))

    def rank_resize(
        self, job: "FederatedJob", candidates: list[SiteSnapshot], now: float
    ) -> list[SiteSnapshot]:
        """Least drift-adjusted cost deserves the biggest share."""
        self._require(candidates)
        return sorted(candidates, key=lambda snap: self._score(job, snap))


class CostAwarePolicy(RoutingPolicy):
    """Route by budget burn rate alongside queue depth.

    For each candidate site, the score is the fraction of the tenant's
    *remaining* federation budget one placement there would burn (the
    job's shots priced at that site's
    :class:`~repro.accounting.SiteRateCard`) plus a queue-pressure
    term.  The coupling is deliberate:

    * a tenant with plenty of budget routes essentially like
      least-queue (burn is a rounding error against the headroom),
    * as the budget drains, the cheap sites pull ahead even when their
      queues are deeper — the policy stretches the remaining credits,
    * unbudgeted tenants burn nothing and balance purely on load.

    Classical runtime is unknown at placement time, so only the shot
    component prices the burn; metered CPU-seconds still hit the ledger
    at completion.
    """

    name = "cost-aware"

    def __init__(self, accounting, queue_weight: float = 0.05) -> None:
        if accounting is None:
            raise FederationError("cost-aware routing needs a FederationAccounting")
        self.accounting = accounting
        self.queue_weight = queue_weight

    def _job_shots(self, job) -> int:
        shots = getattr(job, "shots", None)
        if shots is None:
            shots = getattr(job, "shots_per_unit", None)
        if shots is None:
            shots = getattr(getattr(job, "program", None), "shots", None)
        return int(shots or 100)

    def _score(self, job, snap: SiteSnapshot) -> tuple[float, str]:
        card = self.accounting.rates.card_for(snap.name)
        cost = card.qpu_shot_price * self._job_shots(job)
        remaining = self.accounting.remaining(getattr(job, "owner", ""))
        if remaining == float("inf"):
            burn = 0.0
        else:
            burn = cost / max(remaining, 1e-9)
        pressure = snap.queue_depth / max(1, snap.max_queue_depth)
        return (burn + self.queue_weight * pressure, snap.name)

    def choose(
        self, job: "FederatedJob", candidates: list[SiteSnapshot], now: float
    ) -> SiteSnapshot:
        self._require(candidates)
        return min(candidates, key=lambda snap: self._score(job, snap))

    def rank_resize(
        self, job: "FederatedJob", candidates: list[SiteSnapshot], now: float
    ) -> list[SiteSnapshot]:
        """Lowest burn-per-unit deserves the biggest malleable share."""
        self._require(candidates)
        return sorted(candidates, key=lambda snap: self._score(job, snap))


class StickyPolicy(RoutingPolicy):
    """Affinity routing: one site per affinity key while it stays healthy.

    Iterative hybrid workloads (VQE parameter loops, SQD batches)
    benefit from landing every burst on the same site: warm sessions,
    one calibration context across iterations.  The binding breaks only
    when the bound site leaves the candidate set (unhealthy/saturated),
    at which point the inner policy re-places and the key re-binds —
    that is the failover path.
    """

    name = "sticky"

    def __init__(self, fallback: RoutingPolicy | None = None) -> None:
        self.fallback = fallback or LeastQueuePolicy()
        self._bindings: dict[str, str] = {}

    def choose(
        self, job: "FederatedJob", candidates: list[SiteSnapshot], now: float
    ) -> SiteSnapshot:
        self._require(candidates)
        key = job.affinity_key
        if key is None:
            return self.fallback.choose(job, candidates, now)
        bound = self._bindings.get(key)
        if bound is not None:
            for snap in candidates:
                if snap.name == bound:
                    return snap
        choice = self.fallback.choose(job, candidates, now)
        self._bindings[key] = choice.name
        return choice

    def rank_resize(
        self, job: "FederatedJob", candidates: list[SiteSnapshot], now: float
    ) -> list[SiteSnapshot]:
        """The bound site keeps the lion's share while it stays a
        candidate; everyone else ranks by the fallback policy."""
        self._require(candidates)
        ranked = self.fallback.rank_resize(job, candidates, now)
        key = job.affinity_key
        bound = self._bindings.get(key) if key is not None else None
        if bound is not None:
            head = [s for s in ranked if s.name == bound]
            if head:
                return head + [s for s in ranked if s.name != bound]
        return ranked

    def binding(self, key: str) -> str | None:
        return self._bindings.get(key)
