"""Push-based lifecycle events: the federation's nervous system.

Every status poll the stack used to run — the broker's per-job
``task_status`` sweep, the malleable manager's per-unit refresh, user
code's ``while state not in _TERMINAL`` loops — existed because task
state only moved when somebody asked.  :class:`LifecycleBus` inverts
that: the *producers* of state transitions (each site's middleware
queue, the broker itself, the resize loop) publish a
:class:`JobEvent` at the simulated instant the transition happens, and
consumers subscribe.

Publishers wired in by :meth:`FederationBroker.attach_events
<repro.federation.broker.FederationBroker.attach_events>`:

* **site task transitions** — each :class:`~repro.federation.site.FederatedSite`
  forwards its daemon queue's QUEUED -> RUNNING -> COMPLETED/FAILED/
  CANCELLED transitions (kind = the state name), tagged with the site,
* **broker job lifecycle** — ``job_submitted`` / ``job_held`` /
  ``job_placed`` / ``job_completed`` / ``job_failed``, keyed by the
  federation-stable job id,
* **resize decisions** — kind ``resize`` with the action
  (grow/shrink/retire/reclaim) in the payload.

Dispatch is synchronous and deterministic (subscriber order =
subscription order) so event-driven runs replay bit-for-bit like the
polling runs they replace.  Subscriber exceptions are swallowed and
counted (:attr:`LifecycleBus.dropped`): a broken observer must never
break the scheduler hot path.

**Batched delivery** (:meth:`LifecycleBus.enable_batching`): events
accumulate per simulated tick and every subscriber receives its
matching events at the next :meth:`LifecycleBus.flush` barrier — the
simulator calls it after each same-timestamp event batch, the broker
at the top of every reconcile so scheduling decisions still see every
transition that preceded them.  Each subscriber's stream stays in
publish order, so consumers that fold over every event (metrics
counters, profile EWMAs) observe the exact sequence synchronous
delivery would have produced.  Subscribers that only need the latest
state per task (session wake-ups, snapshot invalidation) can opt into
``coalesce=True`` and superseded same-tick transitions are dropped
from their stream.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "EVENT_SCHEMAS",
    "JobEvent",
    "LifecycleBus",
    "TERMINAL_JOB_KINDS",
    "TERMINAL_TASK_KINDS",
    "kind_for_task_state",
    "publish_task_transition",
]

#: site-task kinds that end a task's life
TERMINAL_TASK_KINDS = ("completed", "failed", "cancelled")

#: broker-job kinds that end a federated job's life
TERMINAL_JOB_KINDS = ("job_completed", "job_failed")

#: payload keys shared by every site task transition (see
#: :func:`publish_task_transition` — the one publisher of these kinds)
_TASK_PAYLOAD = ("state", "started_at", "finished_at", "priority")

#: The declared event vocabulary: every ``kind`` the federation may
#: publish, mapped to the payload keys that kind is allowed to carry
#: (``site``/``task_id``/``job_id`` ride as :class:`JobEvent` fields,
#: not payload).  This registry is the contract archlint's *bus-schema*
#: rule enforces statically: a ``publish``/``_publish`` call site or a
#: subscriber ``kinds=`` filter naming a kind absent here fails lint,
#: as does a payload key the kind never declared.  Add the kind (and
#: its keys) HERE, next to the bus, before publishing it anywhere.
EVENT_SCHEMAS: dict[str, tuple[str, ...]] = {
    # -- site task transitions (kind = TaskState.value) ----------------
    "queued": _TASK_PAYLOAD,
    "running": _TASK_PAYLOAD,
    "completed": _TASK_PAYLOAD,
    "failed": _TASK_PAYLOAD,
    "cancelled": _TASK_PAYLOAD,
    "preempted": _TASK_PAYLOAD,
    # -- broker job lifecycle ------------------------------------------
    "job_submitted": ("tenant", "program", "qubits"),
    "job_held": ("tenant", "program", "qubits"),
    "job_placed": (),
    "job_completed": ("error",),
    "job_failed": ("error",),
    "job_rerouted": ("reason", "unit"),
    "job_converted": ("units", "shots_per_unit", "tenant"),
    "admission": ("decision",),
    "jobs_evicted": ("count",),
    # -- malleable resize plane ----------------------------------------
    "resize": ("action", "unit", "reason", "weight_before", "weight_after"),
    "rebalance": (),
    "unit_completed": ("unit",),
    "slots_agreed": ("transfers",),
}


@dataclass(frozen=True)
class JobEvent:
    """One state transition, published at the simulated time it happened.

    ``job_id`` keys subscriptions: for site task transitions it is the
    site-local task id, for broker lifecycle events the federation job
    id.  ``payload`` carries transition detail (state, started_at,
    finished_at, resize action/weights, ...).
    """

    time: float
    kind: str
    job_id: str
    site: str = ""
    task_id: str = ""
    payload: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class _Subscription:
    handle: int
    callback: Callable[[JobEvent], None]
    job_id: str | None
    kinds: tuple[str, ...] | None
    site: str | None
    #: one-call-per-flush handler (``deliver_batch(events)``); falls
    #: back to per-event ``callback`` when absent
    batch: Callable[[list[JobEvent]], None] | None = None
    #: drop superseded same-flush transitions (latest-state consumers)
    coalesce: bool = False

    def matches(self, event: JobEvent) -> bool:
        if self.job_id is not None and event.job_id != self.job_id:
            return False
        if self.kinds is not None and event.kind not in self.kinds:
            return False
        if self.site is not None and event.site != self.site:
            return False
        return True


class LifecycleBus:
    """Synchronous pub/sub over :class:`JobEvent`.

    Job-filtered subscriptions are indexed by job id so a busy
    federation dispatches each event to the subscribers that asked for
    it, not to everyone.
    """

    def __init__(self, history: int = 0) -> None:
        self._handles = itertools.count(1)
        #: wildcard subscribers (no job filter)
        self._wildcard: list[_Subscription] = []
        #: job-filtered subscribers, indexed by job id
        self._by_job: dict[str, list[_Subscription]] = {}
        self._where: dict[int, str | None] = {}  # handle -> index key
        #: events delivered so far
        self.published = 0
        #: subscriber callbacks that raised (isolated, never re-raised)
        self.dropped = 0
        #: superseded transitions dropped from coalescing subscribers
        self.coalesced = 0
        #: flush barriers that delivered at least one event
        self.flushes = 0
        #: optional bounded ring of recent events (observability aid)
        self._history_cap = history
        self._history: list[JobEvent] = []
        self._batching = False
        self._pending: list[JobEvent] = []

    # -- subscription ---------------------------------------------------------

    def subscribe(
        self,
        callback: Callable[[JobEvent], None],
        job_id: str | None = None,
        kinds: tuple[str, ...] | None = None,
        site: str | None = None,
        *,
        batch: Callable[[list[JobEvent]], None] | None = None,
        coalesce: bool = False,
    ) -> int:
        """Register ``callback`` for events matching the filters;
        returns the handle :meth:`unsubscribe` takes.

        Task ids are only unique *per daemon* (every middleware queue
        numbers its tasks ``mw-task-N``), so a task-transition
        subscription on a bus fed by several sites must also pass
        ``site=`` — a bare ``job_id`` filter would hear every
        same-numbered task in the federation.

        ``batch`` is an optional ``deliver_batch(events)`` handler: in
        batched mode the subscriber's whole per-flush stream arrives in
        one call instead of one call per event (``callback`` remains
        the synchronous-mode path).  ``coalesce=True`` marks a
        latest-state-only consumer: superseded same-flush transitions
        for the same ``(job_id, site, task_id)`` are dropped from its
        stream (a no-op in synchronous mode)."""
        sub = _Subscription(
            next(self._handles), callback, job_id, kinds, site,
            batch=batch, coalesce=coalesce,
        )
        if job_id is None:
            self._wildcard.append(sub)
        else:
            self._by_job.setdefault(job_id, []).append(sub)
        self._where[sub.handle] = job_id
        return sub.handle

    def unsubscribe(self, handle: int) -> None:
        key = self._where.pop(handle, None)
        bucket = self._wildcard if key is None else self._by_job.get(key, [])
        bucket[:] = [s for s in bucket if s.handle != handle]
        if key is not None and not bucket:
            self._by_job.pop(key, None)

    def subscriber_count(self) -> int:
        return len(self._wildcard) + sum(len(v) for v in self._by_job.values())

    # -- publication ----------------------------------------------------------

    def publish(self, event: JobEvent) -> None:
        """Deliver ``event`` to every matching subscriber, in
        subscription order (wildcards first, then job-filtered).  In
        batched mode the event is buffered until the next
        :meth:`flush` barrier instead."""
        self.published += 1
        if self._history_cap:
            self._history.append(event)
            if len(self._history) > self._history_cap:
                del self._history[: -self._history_cap]
        if self._batching:
            self._pending.append(event)
            return
        targets = list(self._wildcard)
        targets.extend(self._by_job.get(event.job_id, ()))
        for sub in targets:
            if not sub.matches(event):
                continue
            try:
                sub.callback(event)
            except Exception:
                self.dropped += 1

    # -- batched delivery -----------------------------------------------------

    @property
    def batching(self) -> bool:
        return self._batching

    def pending_count(self) -> int:
        """Events buffered and awaiting the next flush barrier."""
        return len(self._pending)

    def enable_batching(self) -> None:
        """Buffer published events until :meth:`flush`."""
        self._batching = True

    def disable_batching(self) -> None:
        """Return to synchronous delivery (buffered events flush first)."""
        self.flush()
        self._batching = False

    def flush(self) -> int:
        """Deliver every buffered event; returns the count delivered.

        Subscribers may publish during delivery — those events join the
        same barrier (the loop drains until quiescent), mirroring the
        reentrancy of synchronous dispatch."""
        delivered = 0
        while self._pending:
            batch, self._pending = self._pending, []
            delivered += len(batch)
            self._deliver_batch(batch)
        if delivered:
            self.flushes += 1
        return delivered

    def _deliver_batch(self, batch: list[JobEvent]) -> None:
        # Per-subscriber streams are each in publish order; wildcards
        # drain before job-filtered subscribers, matching the per-event
        # targets order of synchronous publish.
        for sub in list(self._wildcard):
            self._dispatch(sub, [e for e in batch if sub.matches(e)])
        if self._by_job:
            by_job: dict[str, list[JobEvent]] = {}
            for event in batch:
                by_job.setdefault(event.job_id, []).append(event)
            for job_id, events in by_job.items():
                for sub in list(self._by_job.get(job_id, ())):
                    self._dispatch(sub, [e for e in events if sub.matches(e)])

    def _dispatch(self, sub: _Subscription, events: list[JobEvent]) -> None:
        if not events:
            return
        if sub.coalesce and len(events) > 1:
            latest: dict[tuple[str, str, str], JobEvent] = {}
            for event in events:
                latest[(event.job_id, event.site, event.task_id)] = event
            if len(latest) < len(events):
                self.coalesced += len(events) - len(latest)
                events = [
                    e for e in events
                    if latest[(e.job_id, e.site, e.task_id)] is e
                ]
        if sub.batch is not None:
            try:
                sub.batch(events)
            except Exception:
                self.dropped += 1
            return
        for event in events:
            try:
                sub.callback(event)
            except Exception:
                self.dropped += 1

    def recent(self) -> list[JobEvent]:
        """The retained event tail (empty unless ``history`` was set)."""
        return list(self._history)


def kind_for_task_state(state: Any) -> str:
    """Map a :class:`~repro.daemon.queue.TaskState` to its event kind
    (the state's string value: ``queued``/``running``/...)."""
    return state.value


def publish_task_transition(
    bus: LifecycleBus, now: float, site: str, task: Any, new_state: Any
) -> None:
    """The one way a middleware-queue task transition becomes a
    :class:`JobEvent` — shared by every queue publisher (federated
    sites, session-attached local daemons) so the event shape cannot
    drift between them."""
    bus.publish(
        JobEvent(
            time=now,
            kind=kind_for_task_state(new_state),
            job_id=task.task_id,
            site=site,
            task_id=task.task_id,
            payload={
                "state": new_state.value,
                "started_at": task.started_at,
                "finished_at": task.finished_at,
                "priority": task.priority.name.lower(),
            },
        )
    )
