"""The federation broker: place hybrid jobs across HPC-QC sites.

Lifts the paper's second-level-scheduling idea one level up: where the
daemon schedules *tasks within a site*, the broker schedules *jobs
across sites*.  A submitted job gets a federation-stable ID, is placed
on a site chosen by the active routing policy, and is tracked until its
result is fetched.  Placement respects:

* **health** — only sites with fresh heartbeats are candidates,
* **capability** — the site must export a resource that can take the
  program (register fits, federable type),
* **spillover** — saturated sites are skipped while any unsaturated
  candidate exists; when the whole federation is saturated the least
  unlucky site still absorbs the job (bounded queues, not rejection),
* **failover** — when a placement's site dies (heartbeat expiry or
  mid-run crash) or the site-level task fails, the job re-routes to a
  surviving site with a bounded number of attempts.  The federated job
  ID never changes across re-placements, so callers never see
  duplicates.
"""

from __future__ import annotations

import enum
import itertools
import random
import time
from dataclasses import dataclass, field, replace
from typing import Any

from ..errors import (
    BudgetExceededError,
    FederationError,
    PlacementError,
    ResourceNotFound,
    SiteUnavailable,
    SpecError,
)
from ..observability.profiles import ProfileStore
from ..observability.profiling import Profiler, instrument_scheduler_profiler
from ..observability.tracing import TraceContext, Tracer, instrument_scheduler
from ..runtime.backend_select import select_resource
from ..scheduling.algorithms import (
    PolicyRouting,
    SchedulingAlgorithm,
    federation_views,
    get_algorithm,
)
from ..simkernel import Simulator, Timeout
from ..spec import JobSpec
from .events import TERMINAL_TASK_KINDS, JobEvent, LifecycleBus
from .metrics import FederationMetrics
from .policies import LeastQueuePolicy, RoutingPolicy
from .registry import SiteHealth, SiteRegistry, SiteSnapshot

__all__ = ["FederatedJob", "FederationBroker", "JobState", "Placement"]


class JobState(enum.Enum):
    HELD = "held"            # admitted but parked: budget exhausted (HOLD action)
    PLACED = "placed"        # live on some site
    COMPLETED = "completed"
    FAILED = "failed"        # exhausted placement attempts


@dataclass
class Placement:
    """One attempt to run a job on a site."""

    site: str
    task_id: str
    placed_at: float
    abandoned: bool = False
    abandon_reason: str = ""


@dataclass
class FederatedJob:
    """Broker-side record of one submitted hybrid job."""

    job_id: str
    program: Any
    shots: int | None
    owner: str
    affinity_key: str | None
    n_qubits: int
    submitted_at: float
    pin: str | None = None  # "site/resource": bypasses policy routing
    state: JobState = JobState.PLACED
    placements: list[Placement] = field(default_factory=list)
    result: Any = None
    error: str = ""
    #: submission sequence number — the per-state tables iterate live
    #: jobs in this order, reproducing the pre-indexing full-scan order
    seq: int = 0
    #: set when the job reaches COMPLETED/FAILED; drives terminal-record
    #: eviction (see :meth:`FederationBroker.evict_terminal`)
    finished_at: float | None = None
    #: the validated :class:`~repro.spec.JobSpec` this job was built
    #: from — the one broker-visible submission payload
    spec: Any = None

    @property
    def current(self) -> Placement | None:
        if self.placements and not self.placements[-1].abandoned:
            return self.placements[-1]
        return None

    @property
    def attempts(self) -> int:
        return len(self.placements)


def _program_qubits(program: Any) -> int:
    register = getattr(program, "register", None)
    if register is None and isinstance(program, dict):
        register = program.get("register")
    try:
        return len(register)  # Register and IR-dict register lists both size
    except TypeError:
        return 0


def _program_name(program: Any) -> str:
    name = getattr(program, "name", None)
    if name is None and isinstance(program, dict):
        name = program.get("name")
    return name or "program"


class FederationBroker:
    """Route jobs across a :class:`SiteRegistry` with a pluggable policy."""

    def __init__(
        self,
        sim: Simulator,
        registry: SiteRegistry,
        policy: RoutingPolicy | None = None,
        max_attempts: int = 3,
        accounting=None,
        algorithm: SchedulingAlgorithm | str | None = None,
    ) -> None:
        if max_attempts < 1:
            raise PlacementError("max_attempts must be >= 1")
        self.sim = sim
        self.registry = registry
        self.policy = policy or LeastQueuePolicy()
        #: the broker-wide placement discipline — by default a
        #: :class:`~repro.scheduling.algorithms.PolicyRouting` adapter
        #: around :attr:`policy`, so legacy routing is bit-identical.
        #: Jobs whose spec names an ``algorithm`` override it per-job.
        self.algorithm = self._resolve_algorithm(algorithm)
        #: per-name instances for spec-selected algorithms (one shared
        #: instance per name keeps stateful disciplines coherent)
        self._algo_cache: dict[str, SchedulingAlgorithm] = {}
        self.max_attempts = max_attempts
        self.metrics = FederationMetrics()
        #: optional :class:`~repro.accounting.FederationAccounting` —
        #: when set, intake runs budget admission, every completion and
        #: retry is metered per tenant, and the malleable resize loop
        #: arbitrates slots across jobs by tenant fair-share weight
        self.accounting = accounting
        self._jobs: dict[str, FederatedJob] = {}
        # state-indexed job tables: reconcile sweeps and state queries
        # touch only the states they care about, so tick cost scales
        # with *live* work — terminal (COMPLETED/FAILED) jobs are
        # archived here and never rescanned
        self._by_state: dict[JobState, dict[str, FederatedJob]] = {
            s: {} for s in JobState
        }
        self._reroutes = 0  # maintained: sum over jobs of attempts - 1
        self._id_counter = itertools.count(1)
        self._malleable = None  # lazily-built MalleableManager
        #: the broker always owns a lifecycle bus — its own publishes
        #: (placements, outcomes, admissions, resizes) flow to it from
        #: the first submission, which is what lets FederationMetrics
        #: derive every counter from subscriptions instead of record_*
        #: call sites.  :meth:`attach_events` additionally wires *sites*
        #: onto it and flips :attr:`_push` (push-based task tracking).
        self.events: LifecycleBus = LifecycleBus()
        #: True once :meth:`attach_events` ran: task transitions arrive
        #: as events and the refresh paths stop polling ``task_status``
        self._push = False
        #: optional :class:`~repro.observability.tracing.Tracer` (see
        #: :meth:`attach_tracer`); ``None`` skips all span bookkeeping
        self.tracer: Tracer | None = None
        #: optional :class:`~repro.observability.profiling.Profiler`
        #: (see :meth:`attach_profiler`); ``None`` costs one branch per
        #: hot-path site
        self.profiler: Profiler | None = None
        #: optional :class:`~repro.observability.profiles.ProfileStore`
        #: (see :meth:`attach_profiles`)
        self.profiles: ProfileStore | None = None
        self._wire_bus(self.events)
        #: live placement index: (site, task_id) -> federated job id,
        #: maintained by _place/_abandon/_fail/completion so pushed site
        #: events resolve to the owning job without a scan
        self._task_to_job: dict[tuple[str, str], str] = {}
        #: pushed-but-unprocessed terminal task payloads, drained by the
        #: event-driven _refresh; one entry max per live placement
        self._pushed_tasks: dict[tuple[str, str], dict] = {}
        #: terminal records dropped by :meth:`evict_terminal`
        self._evicted = 0
        #: summary of the last reconcile sweep — ``jobs_scanned`` counts
        #: the fixed-size jobs the sweep actually touched (live + held),
        #: ``duration_s`` its wall-clock cost; the C6 scale bench and
        #: the metrics collector read this
        self.last_reconcile: dict[str, float] = {}

    @property
    def malleable(self):
        """The resize-loop manager for multi-site malleable jobs
        (created on first use; see :mod:`repro.federation.malleable`)."""
        if self._malleable is None:
            from .malleable import MalleableManager

            self._malleable = MalleableManager(self)
        return self._malleable

    def configure_resize(self, config) -> None:
        """Install a non-default :class:`~repro.federation.malleable.ResizeConfig`.
        Must happen before the first malleable submission."""
        from .malleable import MalleableManager

        if self._malleable is not None and self._malleable.jobs():
            raise PlacementError("resize config must be set before submissions")
        self._malleable = MalleableManager(self, config=config)

    # -- state tables ---------------------------------------------------------

    def _set_state(self, job: FederatedJob, state: JobState) -> None:
        """The single transition point: moves the job between the
        per-state tables so they never drift from ``job.state``."""
        if state is job.state:
            return
        self._by_state[job.state].pop(job.job_id, None)
        job.state = state
        self._by_state[state][job.job_id] = job
        if state in (JobState.COMPLETED, JobState.FAILED):
            job.finished_at = self.sim.now
            self._publish(f"job_{state.value}", job.job_id, error=job.error)

    def _in_state(self, state: JobState) -> list[FederatedJob]:
        """Jobs currently in ``state``, in submission order (a released
        held job re-enters the PLACED table out of order; sorting by
        the submission seq keeps sweep order identical to a full scan)."""
        return sorted(self._by_state[state].values(), key=lambda j: j.seq)

    # -- lifecycle events ------------------------------------------------------

    def _wire_bus(self, bus: LifecycleBus) -> None:
        bus.subscribe(self.metrics._on_event, batch=self.metrics.deliver_batch)
        bus.subscribe(self._on_site_event, batch=self._on_site_events)

    def _enable_batched_bus(self) -> None:
        if not self.events.batching:
            self.events.enable_batching()
            # end-of-timestamp flush barrier: every same-tick batch the
            # simulator dispatches ends with a bus flush, so no event
            # outlives the simulated instant it was published at
            self.sim.add_flush_hook(self.events.flush)

    def attach_events(
        self, bus: LifecycleBus | None = None, batch: bool = False
    ) -> LifecycleBus:
        """Switch the broker to push-based lifecycle tracking.

        Wires the broker's lifecycle bus (or ``bus``, which replaces it)
        onto every registered site — and, via the registry hook, every
        future joiner — so task state transitions arrive as events
        instead of being polled: the fixed-size ``_refresh`` and the
        malleable resize loop stop calling ``task_status`` per job/unit
        per tick.  Idempotent; returns the active bus.  Attach *before*
        submitting work — transitions that happened pre-attach were
        never published.

        ``batch=True`` turns on coalesced bus delivery: events buffer
        per simulated tick and subscribers hear them at the flush
        barriers (end of each simulator timestamp batch, top of every
        reconcile) — see :class:`~repro.federation.events.LifecycleBus`.
        """
        if self._push:
            if batch:
                self._enable_batched_bus()
            return self.events
        if bus is not None and bus is not self.events:
            # external bus: re-point broker publishes and subscribers at
            # it; the internal bus (and anything it recorded) is dropped
            self._wire_bus(bus)
            if self.tracer is not None:
                self.tracer.attach_bus(bus)
            self.events = bus
        self._push = True
        for name in self.registry.names():
            self.registry.site(name).attach_bus(self.events)
        self.registry.on_register(lambda site: site.attach_bus(self.events))
        if batch:
            self._enable_batched_bus()
        return self.events

    def attach_tracer(self, tracer: Tracer | None = None) -> Tracer:
        """Trace every job end-to-end: switches to push-based events
        (span boundaries are bus transitions), subscribes the tracer,
        and instruments every site daemon's scheduler — current and
        future joiners — so dispatch spans nest under execute spans.
        Idempotent; returns the active tracer.
        """
        if self.tracer is not None:
            return self.tracer
        self.tracer = tracer if tracer is not None else Tracer()
        self.attach_events()
        self.tracer.attach_bus(self.events)
        for name in self.registry.names():
            instrument_scheduler(
                self.registry.site(name).daemon.scheduler, self.tracer, name
            )
        self.registry.on_register(
            lambda site: instrument_scheduler(
                site.daemon.scheduler, self.tracer, site.name
            )
        )
        return self.tracer

    def attach_profiler(self, profiler: Profiler | None = None) -> Profiler:
        """Turn on continuous hot-path profiling: the simulator wraps
        every event dispatch in a ``sim.step`` scope, each site daemon's
        select pass (current and future joiners) runs under
        ``scheduler.select``, the scrapers' TSDB flushes under
        ``tsdb.flush``, and the broker's own reconcile / resize /
        placement paths scope themselves.  The profiler never touches
        scheduling state, so a profiled run is bit-identical to a plain
        one (the C6 bench enforces this).  Idempotent; returns the
        active profiler.
        """
        if self.profiler is not None:
            return self.profiler
        self.profiler = profiler if profiler is not None else Profiler()
        self.sim.enable_scope_profiling(self.profiler)

        def wire(site) -> None:
            instrument_scheduler_profiler(site.daemon.scheduler, self.profiler)
            scraper = getattr(site.daemon, "scraper", None)
            if scraper is not None:
                scraper.profiler = self.profiler

        for name in self.registry.names():
            wire(self.registry.site(name))
        self.registry.on_register(wire)
        return self.profiler

    def attach_profiles(self, store: ProfileStore | None = None) -> ProfileStore:
        """Collect per-workload phase signatures: switches to push-based
        events and feeds a :class:`ProfileStore` from the lifecycle bus.
        The store's summary appears in :meth:`stats`; site daemons also
        expose their own stores via ``GET /profiles``.  Idempotent;
        returns the active store.
        """
        if self.profiles is not None:
            return self.profiles
        self.profiles = store if store is not None else ProfileStore()
        self.attach_events()
        self.profiles.attach_bus(self.events)
        return self.profiles

    def _publish(self, kind: str, job_id: str, site: str = "", task_id: str = "", **payload) -> None:
        self.events.publish(
            JobEvent(
                time=self.sim.now,
                kind=kind,
                job_id=job_id,
                site=site,
                task_id=task_id,
                payload=payload,
            )
        )

    def _on_site_event(self, event: JobEvent) -> None:
        """Route one site task transition to the placement that owns it
        (fixed-size index here, per-unit index in the malleable
        manager); transitions for tasks the broker never placed — e.g.
        a site's local users — are dropped."""
        if not event.task_id or event.kind.startswith("job_"):
            return
        if self._malleable is not None and self._malleable.consume_task_event(event):
            return
        key = (event.site, event.task_id)
        if key not in self._task_to_job:
            return
        if event.kind in TERMINAL_TASK_KINDS:
            self._pushed_tasks[key] = dict(event.payload)

    def _on_site_events(self, events: list[JobEvent]) -> None:
        """Batched-bus delivery: the broker's own task tracking is
        latest-state per placement (``_pushed_tasks`` / the malleable
        per-unit index), so replaying the stream in publish order is
        exactly the synchronous outcome."""
        for event in events:
            self._on_site_event(event)

    def _track_placement(self, job: FederatedJob) -> None:
        placement = job.placements[-1]
        self._task_to_job[(placement.site, placement.task_id)] = job.job_id

    def _untrack_placement(self, job: FederatedJob) -> None:
        if not job.placements:
            return
        placement = job.placements[-1]
        key = (placement.site, placement.task_id)
        self._task_to_job.pop(key, None)
        self._pushed_tasks.pop(key, None)

    # -- intake ---------------------------------------------------------------

    def submit(
        self,
        program: Any,
        shots: int | None = None,
        owner: str = "fed-user",
        affinity_key: str | None = None,
        pin: str | None = None,
    ) -> str:
        """Accept a job into the federation; returns its stable job id.

        ``program`` may be a :class:`~repro.spec.JobSpec` — the one
        submission payload every surface shares — in which case the
        remaining kwargs are ignored.  The kwarg form is a deprecated
        shim over :meth:`JobSpec.from_legacy_kwargs
        <repro.spec.JobSpec.from_legacy_kwargs>`.

        ``pin`` is a qualified ``site/resource`` name: the job runs
        exactly there (the ``--qpu`` contract — an explicit request is
        honored or fails, never silently rerouted) instead of going
        through the routing policy.
        """
        if isinstance(program, JobSpec):
            spec = program
        else:
            spec = JobSpec.from_legacy_kwargs(
                program, shots=shots, owner=owner, affinity_key=affinity_key, pin=pin
            )
        return self.submit_spec(spec)

    def submit_spec(self, spec: JobSpec) -> str:
        """Accept one validated-or-raw :class:`~repro.spec.JobSpec`.

        Multi-unit specs (``iterations``/``sites`` set) route to the
        malleable manager; everything else becomes a fixed-size
        federated job.  This is the single intake every surface funnels
        into — shot resolution and IR normalization happen exactly once,
        inside :meth:`JobSpec.validate <repro.spec.JobSpec.validate>`.
        """
        try:
            spec = spec.validate()
        except SpecError as err:
            raise PlacementError(str(err)) from err
        if spec.is_multi:
            return self.malleable.submit_spec(spec)
        if self._should_convert(spec):
            return self._convert_and_submit(spec)
        self._check_budget_hint(spec)
        admit_wall = time.perf_counter()
        hold = self._admit(spec.tenant)
        seq = next(self._id_counter)
        job = FederatedJob(
            job_id=f"fed-job-{seq}",
            program=spec.program,
            shots=spec.shots,
            owner=spec.tenant,
            affinity_key=spec.affinity_key,
            n_qubits=_program_qubits(spec.program),
            submitted_at=self.sim.now,
            pin=spec.pin,
            state=JobState.HELD if hold else JobState.PLACED,
            seq=seq,
            spec=spec,
        )
        self._jobs[job.job_id] = job
        self._by_state[job.state][job.job_id] = job
        if self.tracer is not None:
            self._trace_intake(job.job_id, spec, admit_wall, hold)
        self._publish(
            "job_held" if hold else "job_submitted",
            job.job_id,
            tenant=spec.tenant,
            program=_program_name(spec.program),
            qubits=job.n_qubits,
        )
        if not hold:
            self._place(job)
        return job.job_id

    # -- fixed -> malleable conversion -----------------------------------------

    def _should_convert(self, spec: JobSpec) -> bool:
        """Convert a fixed submission into malleable units when (a) the
        spec declared convertibility (``malleable`` with ``min_units``
        set and no pin), (b) the job's placement algorithm opted in via
        ``convert_when_saturated``, and (c) every capable site is
        saturated — i.e. the job would otherwise spill onto an
        already-full queue as one indivisible blob."""
        if (
            spec.min_units is None
            or not spec.malleable
            or spec.pin is not None
            or spec.resource is not None
        ):
            return False
        algorithm = self.algorithm
        if spec.algorithm is not None:
            named = self._algo_cache.get(spec.algorithm)
            if named is None:
                named = get_algorithm(spec.algorithm)
                self._algo_cache[spec.algorithm] = named
            if named.handles_placement:
                algorithm = named
        if not algorithm.convert_when_saturated:
            return False
        n_qubits = _program_qubits(spec.program)
        healthy = self.registry.healthy_snapshots(self.sim.now)
        capable = [
            snap
            for snap in healthy
            if snap.catalog and snap.max_qubits >= n_qubits
        ]
        return bool(capable) and all(snap.is_saturated for snap in capable)

    def _convert_and_submit(self, spec: JobSpec) -> str:
        """Split the fixed spec into ``min_units`` malleable units whose
        shot counts sum to (at least) the original request, and route it
        through the malleable manager.  The returned malleable job id is
        transparent to the caller: :meth:`status` and :meth:`result`
        delegate for converted jobs."""
        units = spec.min_units or 1
        shots_per_unit = max(1, -(-int(spec.shots) // units))
        converted = replace(
            spec, iterations=units, shots=shots_per_unit
        ).validate()
        job_id = self.malleable.submit_spec(converted)
        self._publish(
            "job_converted",
            job_id,
            units=units,
            shots_per_unit=shots_per_unit,
            tenant=spec.tenant,
        )
        return job_id

    def is_malleable(self, job_id: str) -> bool:
        """Is ``job_id`` tracked by the malleable manager (multi-unit
        submission or a converted fixed job)?"""
        return self._malleable is not None and job_id in self._malleable._jobs

    def _trace_intake(
        self, job_id: str, spec: JobSpec, admit_wall: float, hold: bool
    ) -> None:
        """Bind the job to its trace (continuing the spec's propagated
        context, or opening a fresh root for broker-direct submissions)
        and record the admission span."""
        tracer = self.tracer
        now = self.sim.now
        ctx_dict = spec.metadata.get("trace_context")
        if ctx_dict:
            tracer.bind_job(job_id, TraceContext.from_dict(ctx_dict))
        else:
            root = tracer.start_trace("job", now, job_id=job_id, tenant=spec.tenant)
            tracer.bind_job(job_id, root)
        span = tracer.start_job_span(
            job_id,
            "admission",
            now,
            wall_start=admit_wall,
            decision="hold" if hold else "admit",
        )
        if span is not None:
            tracer.end_span(span, now)

    def _check_budget_hint(self, spec: JobSpec) -> None:
        """Reject up front when the spec *declares* a cost the tenant's
        remaining federation budget cannot cover — cheaper than finding
        out mid-flight, and read straight off the spec."""
        if spec.budget_hint is None or self.accounting is None:
            return
        if not self.accounting.can_afford(spec.tenant, spec.budget_hint):
            raise BudgetExceededError(
                f"tenant {spec.tenant!r} declared a cost of "
                f"{spec.budget_hint:.3f} but has "
                f"{self.accounting.remaining(spec.tenant):.3f} remaining",
                tenant=spec.tenant,
            )

    def _admit(self, tenant: str) -> bool:
        """Run budget admission for one new submission.  Returns True
        when the job must enter HELD (budget exhausted, HOLD action);
        raises :class:`~repro.errors.BudgetExceededError` on REJECT."""
        if self.accounting is None:
            return False
        from ..accounting import AdmissionDecision

        decision = self.accounting.admission(tenant)
        # no job id exists yet at intake time: the event carries only
        # the decision (which is all the admissions counter keys on)
        self._publish("admission", "", decision=decision.value)
        if decision is AdmissionDecision.REJECT:
            raise BudgetExceededError(
                f"tenant {tenant!r} exhausted its federation budget "
                f"(spend {self.accounting.spend(tenant):.3f}, "
                f"remaining {self.accounting.remaining(tenant):.3f})",
                tenant=tenant,
            )
        return decision is AdmissionDecision.HOLD

    def submit_malleable(
        self,
        program: Any,
        iterations: int,
        shots: int | None = None,
        owner: str = "fed-user",
        affinity_key: str | None = None,
        sites: tuple[str, ...] | None = None,
        malleable: bool = True,
    ) -> str:
        """Accept an iterative job whose burst units spread across sites
        and get re-divided by the resize loop; returns its stable id.
        Deprecated kwarg shim — elasticity now lives *in the spec*
        (``iterations``/``sites``/``malleable`` fields), so
        :meth:`submit_spec` with a multi-unit spec is the same call."""
        if isinstance(program, JobSpec):
            return self.submit_spec(program)
        return self.submit_spec(
            JobSpec.from_legacy_kwargs(
                program,
                shots=shots,
                owner=owner,
                affinity_key=affinity_key,
                sites=sites,
                iterations=iterations,
                malleable=malleable,
            )
        )

    def available_resources(self) -> dict[str, str]:
        """Aggregate catalog over healthy sites, names qualified as
        ``site/resource`` — the federation-aware fall-through surface
        :func:`~repro.runtime.backend_select.select_resource` consumes."""
        merged: dict[str, str] = {}
        for snap in self.registry.healthy_snapshots(self.sim.now):
            for name, rtype in sorted(snap.catalog.items()):
                merged[f"{snap.name}/{name}"] = rtype
        return merged

    def has_resource(self, qualified: str) -> bool:
        """Does some registered site export this ``site/resource`` name?
        (Membership only — no snapshot materialization; use
        :meth:`available_resources` for the health-filtered catalog.)"""
        site_name, _, resource = qualified.partition("/")
        if not resource:
            return False
        try:
            site = self.registry.site(site_name)
        except FederationError:
            return False
        return resource in site.catalog()

    def target(self, qualified: str) -> dict[str, Any]:
        """Spec document for a ``site/resource`` name from
        :meth:`available_resources` (the runtime's validation input)."""
        site_name, _, resource = qualified.partition("/")
        if not resource:
            raise PlacementError(
                f"federated resource names are 'site/resource', got {qualified!r}"
            )
        return self.registry.site(site_name).daemon.resource_target(resource)

    # -- placement ------------------------------------------------------------

    def _resolve_algorithm(
        self, algorithm: SchedulingAlgorithm | str | None
    ) -> SchedulingAlgorithm:
        if algorithm is None:
            return PolicyRouting(policy=self.policy)
        if isinstance(algorithm, str):
            algorithm = get_algorithm(algorithm)
        if not algorithm.handles_placement:
            raise PlacementError(
                f"algorithm {algorithm.name!r} does not make placement "
                "decisions and cannot drive broker routing"
            )
        return algorithm

    def use_algorithm(self, algorithm: SchedulingAlgorithm | str | None) -> None:
        """Swap the broker-wide placement discipline by registry name
        (or instance); ``None`` restores policy routing."""
        self.algorithm = self._resolve_algorithm(algorithm)

    def _algorithm_for(self, job: FederatedJob) -> SchedulingAlgorithm:
        """The placement discipline for one job: its spec's named
        algorithm when that algorithm makes placement decisions,
        otherwise the broker-wide default."""
        name = getattr(job.spec, "algorithm", None)
        if name is None:
            return self.algorithm
        algo = self._algo_cache.get(name)
        if algo is None:
            algo = get_algorithm(name)
            self._algo_cache[name] = algo
        if not algo.handles_placement:
            # e.g. "agreement-elastic": a negotiation discipline, not a
            # router — placement falls back to the broker default
            return self.algorithm
        return algo

    def _choose_site(
        self, job: FederatedJob, candidates: list[SiteSnapshot]
    ) -> SiteSnapshot:
        """Run the job's scheduling algorithm over adapter views of the
        candidate snapshots and map its decision back to a snapshot.

        The default :class:`PolicyRouting` algorithm calls
        ``self.policy.choose`` exactly once, so legacy routing (including
        stateful policies like round-robin) is bit-identical to the
        pre-algorithm broker.  Algorithms that return no usable decision
        fall back to direct policy choice rather than failing the job.
        """
        profiler = self.profiler
        if profiler is None:
            return self._choose_site_inner(job, candidates)
        with profiler.scope("algorithm.schedule"):
            return self._choose_site_inner(job, candidates)

    def _choose_site_inner(
        self, job: FederatedJob, candidates: list[SiteSnapshot]
    ) -> SiteSnapshot:
        algorithm = self._algorithm_for(job)
        pending, resources, system = federation_views(job, candidates, self.sim.now)
        by_name = {snap.name: snap for snap in candidates}
        for decision in algorithm.schedule(pending, resources, system):
            if decision.kind in ("place", "start", "backfill", "reserve"):
                snap = by_name.get(decision.resource)
                if snap is not None:
                    return snap
        return self.policy.choose(job, candidates, self.sim.now)

    def _candidates(
        self, job: FederatedJob, exclude: tuple[str, ...]
    ) -> list[SiteSnapshot]:
        now = self.sim.now
        healthy = self.registry.healthy_snapshots(now, exclude=exclude)
        capable = [
            snap
            for snap in healthy
            if snap.catalog and snap.max_qubits >= job.n_qubits
        ]
        unsaturated = [snap for snap in capable if not snap.is_saturated]
        return unsaturated or capable  # spillover: saturated only as last resort

    def _place_pinned(self, job: FederatedJob) -> None:
        """Honor an explicit ``site/resource`` request or fail — pinned
        jobs retry on *their* site only, never reroute elsewhere."""
        site_name, _, resource = job.pin.partition("/")
        if job.attempts >= self.max_attempts:
            self._fail(job, f"exhausted {self.max_attempts} placement attempts")
            return
        try:
            health = self.registry.health_of(site_name, self.sim.now)
            site = self.registry.site(site_name)
        except FederationError as err:
            self._fail(job, str(err))
            return
        if health is SiteHealth.UNHEALTHY:
            self._fail(job, f"pinned site {site_name!r} is unhealthy")
            return
        if resource not in site.capable_catalog(job.n_qubits):
            self._fail(
                job,
                f"pinned resource {job.pin!r} cannot take a "
                f"{job.n_qubits}-qubit program",
            )
            return
        try:
            task_id = site.submit(
                job.program, resource, shots=job.shots, owner=job.owner
            )
        except SiteUnavailable as err:
            self._fail(job, str(err))
            return
        job.placements.append(
            Placement(site=site_name, task_id=task_id, placed_at=self.sim.now)
        )
        if len(job.placements) > 1:
            self._reroutes += 1
        self._set_state(job, JobState.PLACED)
        self._track_placement(job)
        self._publish("job_placed", job.job_id, site=site_name, task_id=task_id)
        if self.tracer is not None:
            self._trace_placement(job, site_name, task_id)
        self._reserve(job, site_name)

    def _job_shots(self, job: FederatedJob) -> int:
        shots = job.shots
        if shots is None:
            shots = getattr(job.program, "shots", None)
        # a shot-less submission executes at the intake default (the
        # site's to_ir(shots=100) path) — bill what actually runs
        return int(shots) if shots else 100

    def _reserve(self, job: FederatedJob, site: str) -> None:
        """Encumber the placement's shot cost against the tenant budget
        (released on completion, abandonment, or terminal failure)."""
        if self.accounting is not None:
            self.accounting.reserve_placement(
                job.owner, site, shots=self._job_shots(job), key=job.job_id
            )

    def _place(self, job: FederatedJob, exclude: tuple[str, ...] = ()) -> None:
        if job.pin is not None:
            self._place_pinned(job)
            return
        excluded = list(exclude)
        while True:
            if job.attempts >= self.max_attempts:
                self._fail(job, f"exhausted {self.max_attempts} placement attempts")
                return
            candidates = self._candidates(job, tuple(excluded))
            if not candidates:
                self._fail(
                    job,
                    f"no healthy site can take a {job.n_qubits}-qubit program "
                    f"(excluded: {sorted(excluded)})",
                )
                return
            choice = self._choose_site(job, candidates)
            site = self.registry.site(choice.name)
            try:
                # select among the resources that can actually hold the
                # register — the site filter only guarantees one exists
                resource = select_resource(site.capable_catalog(job.n_qubits))
                task_id = site.submit(
                    job.program, resource, shots=job.shots, owner=job.owner
                )
            except (SiteUnavailable, ResourceNotFound):
                # lost a race with a mid-decision crash or a shrunk
                # catalog: exclude this site and retry
                excluded.append(choice.name)
                continue
            job.placements.append(
                Placement(site=choice.name, task_id=task_id, placed_at=self.sim.now)
            )
            if len(job.placements) > 1:
                self._reroutes += 1
            self._set_state(job, JobState.PLACED)
            self._track_placement(job)
            self._publish("job_placed", job.job_id, site=choice.name, task_id=task_id)
            if self.tracer is not None:
                self._trace_placement(job, choice.name, task_id)
            self._reserve(job, choice.name)
            return

    def _trace_placement(self, job: FederatedJob, site: str, task_id: str) -> None:
        """Record the placement decision as an instant span and bind the
        site task under it, so its queue-wait/execute spans nest there."""
        tracer = self.tracer
        now = self.sim.now
        span = tracer.start_job_span(
            job.job_id, "placement", now, site=site, task_id=task_id,
            attempt=job.attempts,
        )
        if span is None:
            return
        tracer.end_span(span, now)
        tracer.bind_task(site, task_id, span, now)

    def _fail(self, job: FederatedJob, reason: str) -> None:
        self._untrack_placement(job)
        job.error = reason
        self._set_state(job, JobState.FAILED)
        if self.accounting is not None:
            self.accounting.release_placement(job.job_id)

    def _abandon_and_reroute(self, job: FederatedJob, reason: str) -> None:
        self._untrack_placement(job)
        placement = job.placements[-1]
        placement.abandoned = True
        placement.abandon_reason = reason
        dead_site = placement.site
        try:
            self.registry.site(dead_site).cancel(placement.task_id)
        except Exception:
            pass  # the site may be gone entirely; cancellation is best-effort
        self._publish(
            "job_rerouted",
            job.job_id,
            site=dead_site,
            task_id=placement.task_id,
            reason=reason,
        )
        if self.accounting is not None:
            self.accounting.meter_retry(
                job.owner, dead_site, now=self.sim.now, job_id=job.job_id
            )
        self._place(job, exclude=(dead_site,))

    # -- tracking --------------------------------------------------------------

    def _refresh(self, job: FederatedJob) -> None:
        """Advance one job's state from its current placement."""
        if job.state is not JobState.PLACED:
            return
        placement = job.current
        if placement is None:  # defensive: PLACED jobs always have one
            self._place(job)
            return
        now = self.sim.now
        if self.registry.health_of(placement.site, now) is SiteHealth.UNHEALTHY:
            self._abandon_and_reroute(job, f"site {placement.site} unhealthy")
            return
        site = self.registry.site(placement.site)
        if self._push:
            # push path: the site already told us about every terminal
            # transition — nothing pushed means the task is still live,
            # so there is nothing to poll
            status = self._pushed_tasks.pop(
                (placement.site, placement.task_id), None
            )
            if status is None:
                return
        else:
            try:
                # archlint: disable=no-poll -- legacy fallback for brokers that never called attach_events(); the poll-spy test proves push-mode runs never reach it
                status = site.task_status(job.owner, placement.task_id)
            except Exception as err:
                # the site answers but won't serve us (e.g. our session
                # idle-expired and the reopened one no longer owns the
                # task): treat like a lost placement, never crash the
                # reconcile sweep that failover depends on
                self._abandon_and_reroute(
                    job, f"query failed on {placement.site}: {err}"
                )
                return
        if status["state"] == "completed":
            fetch_span = None
            if self.tracer is not None:
                fetch_span = self.tracer.start_job_span(
                    job.job_id, "result-fetch", now, site=placement.site
                )
            try:
                job.result = site.task_result(job.owner, placement.task_id)
            except Exception as err:
                if fetch_span is not None:
                    self.tracer.end_span(fetch_span, now, status="error")
                self._abandon_and_reroute(
                    job, f"query failed on {placement.site}: {err}"
                )
                return
            if fetch_span is not None:
                self.tracer.end_span(fetch_span, now)
            self._untrack_placement(job)
            self._set_state(job, JobState.COMPLETED)
            self._meter_completion(job, placement.site, status)
        elif status["state"] in ("failed", "cancelled"):
            self._abandon_and_reroute(
                job, f"task {placement.task_id} {status['state']} on {placement.site}"
            )

    def _meter_completion(self, job: FederatedJob, site: str, status) -> None:
        """Bill a finished fixed-size job: its shots plus the classical
        seconds the site's resources actually held it."""
        if self.accounting is None:
            return
        started = status.get("started_at")
        finished = status.get("finished_at")
        cpu_seconds = 0.0
        if started is not None and finished is not None:
            cpu_seconds = max(0.0, finished - started)
        self.accounting.release_placement(job.job_id)
        self.accounting.meter_completion(
            job.owner,
            site,
            shots=self._job_shots(job),
            cpu_seconds=cpu_seconds,
            now=self.sim.now,
            job_id=job.job_id,
        )

    def _releasable(self, job: FederatedJob) -> bool:
        """Can a held job place *right now*?  During a transient
        no-healthy-site window (heartbeat lapse) release must wait for
        the next sweep — HELD means parked, never failed-by-timing."""
        if job.pin is None:
            return bool(self._candidates(job, ()))
        site_name, _, resource = job.pin.partition("/")
        try:
            health = self.registry.health_of(site_name, self.sim.now)
            site = self.registry.site(site_name)
        except FederationError:
            return False
        return (
            health is not SiteHealth.UNHEALTHY
            and resource in site.capable_catalog(job.n_qubits)
        )

    def _admission_memo(self, tenant: str, cache: dict) -> "Any":
        """Budget admission memoized per tenant for one release pass.
        Each pass gets a fresh cache (budget state moves between passes
        — the refresh loop meters retries and completions), and within
        a pass the only budget-moving event is placing a released job,
        which invalidates the entry — so the memo never returns a stale
        decision."""
        decision = cache.get(tenant)
        if decision is None:
            decision = cache[tenant] = self.accounting.admission(tenant)
        return decision

    def _release_held(self, admission_cache: dict) -> None:
        """Place held jobs whose tenant budget regained headroom
        (submission order — the hold queue is FIFO per reconcile).
        Admission is memoized per tenant for the sweep: a hundred held
        jobs of one exhausted tenant cost one budget lookup, not one
        each."""
        from ..accounting import AdmissionDecision

        for job in self._in_state(JobState.HELD):
            decision = self._admission_memo(job.owner, admission_cache)
            if decision is not AdmissionDecision.ADMIT:
                continue
            if not self._releasable(job):
                continue  # stay parked; the next reconcile retries
            self._publish("admission", job.job_id, decision="released")
            self._place(job)
            # placing reserved budget (or failing released it): the
            # tenant's next admission answer may differ — drop the memo
            admission_cache.pop(job.owner, None)

    def reconcile(self) -> None:
        """One failover sweep over the *live* jobs (held-job release,
        fixed-size refresh, the malleable resize loop) + a metrics
        snapshot.  Terminal jobs are archived out of the sweep tables,
        so tick cost tracks in-flight work, not completed history."""
        profiler = self.profiler
        if profiler is None:
            self._reconcile()
            return
        with profiler.scope("broker.reconcile"):
            self._reconcile()

    def _reconcile(self) -> None:
        started = time.perf_counter()
        if self.events.batching:
            # flush barrier: scheduling decisions must see every task
            # transition published earlier in this simulated instant,
            # exactly as synchronous delivery would have shown them
            self.events.flush()
        scanned = len(self._by_state[JobState.HELD])
        if self.accounting is not None:
            self._release_held({})
        held_done = time.perf_counter()
        live = self._in_state(JobState.PLACED)
        scanned += len(live)
        for job in live:
            self._refresh(job)
        fixed_done = time.perf_counter()
        malleable_scanned = 0
        if self._malleable is not None:
            # the malleable pass builds its own admission memo: the
            # refresh loop above may have moved tenants' budgets
            profiler = self.profiler
            if profiler is None:
                malleable_scanned = self._malleable.tick()
            else:
                with profiler.scope("malleable.tick"):
                    malleable_scanned = self._malleable.tick()
        malleable_done = time.perf_counter()
        self.metrics.observe_sites(self.registry.snapshots(self.sim.now))
        self.metrics.observe_snapshot_cache(self.registry.snapshot_cache_hits)
        if self.accounting is not None:
            self.metrics.observe_accounting(self.accounting)
        ended = time.perf_counter()
        # per-stage wall profile of the tick — the C6 bench turns these
        # into the self-calibrated latency ratios the CI gate watches
        self.last_reconcile = {
            "jobs_scanned": float(scanned),
            "malleable_scanned": float(malleable_scanned),
            "duration_s": ended - started,
            "held_s": held_done - started,
            "fixed_s": fixed_done - held_done,
            "malleable_s": malleable_done - fixed_done,
            "observe_s": ended - malleable_done,
        }
        self.metrics.observe_reconcile(
            scanned + malleable_scanned, self.last_reconcile["duration_s"]
        )

    # -- terminal-record eviction ----------------------------------------------

    def evict_terminal(self, ttl: float = 0.0) -> int:
        """Drop archived COMPLETED/FAILED records older than ``ttl``
        seconds so a long-lived broker's ``_jobs`` stays bounded.

        Each evicted record is spilled to the accounting ledger's
        archive (when accounting is wired) before it leaves memory —
        billing history survives, the hot tables don't.  After eviction
        the job id is unknown to :meth:`job`/:meth:`result`; fetch
        results before the TTL or from the archive.  Returns the number
        of records evicted (fixed-size + malleable).
        """
        if ttl < 0:
            raise PlacementError("evict ttl must be >= 0")
        now = self.sim.now
        evicted = 0
        for state in (JobState.COMPLETED, JobState.FAILED):
            table = self._by_state[state]
            expired = [
                job
                for job in table.values()
                if job.finished_at is not None and now - job.finished_at >= ttl
            ]
            for job in expired:
                del table[job.job_id]
                del self._jobs[job.job_id]
                self._spill(job)
                evicted += 1
        if self._malleable is not None:
            evicted += self._malleable.evict_terminal(ttl)
        if evicted:
            self._evicted += evicted
            self._publish("jobs_evicted", "", count=evicted)
        return evicted

    def _spill(self, job: FederatedJob) -> None:
        if self.accounting is None:
            return
        last = job.placements[-1] if job.placements else None
        self.accounting.archive_job(
            {
                "job_id": job.job_id,
                "tenant": job.owner,
                "state": job.state.value,
                "submitted_at": job.submitted_at,
                "finished_at": job.finished_at,
                "site": last.site if last is not None else None,
                "shots": self._job_shots(job),
                "attempts": job.attempts,
                "error": job.error,
            }
        )

    def spawn_housekeeping(
        self,
        interval: float = 15.0,
        jitter: float = 0.0,
        seed: int = 0,
        evict_ttl: float | None = None,
    ) -> None:
        """Run :meth:`reconcile` on a cadence inside the simulation.

        ``jitter`` spreads each cycle uniformly over
        ``interval ± jitter`` seconds (drawn from a private
        deterministic stream seeded by ``seed``), so several brokers on
        one clock don't reconcile in lockstep — multi-broker tests and
        benches stop seeing synchronized sweep artifacts.

        ``evict_ttl`` additionally runs :meth:`evict_terminal` after
        every sweep: terminal records older than the TTL spill to the
        accounting archive and leave memory.  ``None`` (the default)
        keeps records forever — opt in for long-lived brokers.
        """
        if not (0.0 <= jitter < interval):
            raise PlacementError("jitter must be in [0, interval)")
        rng = random.Random(seed) if jitter else None

        def run():
            while True:
                delay = interval
                if rng is not None:
                    delay += rng.uniform(-jitter, jitter)
                yield Timeout(delay)
                self.reconcile()
                if evict_ttl is not None:
                    self.evict_terminal(evict_ttl)

        self.sim.spawn(run(), name="federation-housekeeping", background=True)

    # -- queries ---------------------------------------------------------------

    def job(self, job_id: str) -> FederatedJob:
        if job_id not in self._jobs:
            raise PlacementError(f"unknown federated job {job_id!r}", job_id=job_id)
        return self._jobs[job_id]

    def status(self, job_id: str) -> dict[str, Any]:
        if self.is_malleable(job_id):
            # converted fixed jobs carry malleable ids — same surface
            return self.malleable_status(job_id)
        job = self.job(job_id)
        self._refresh(job)
        placement = job.current
        return {
            "job_id": job.job_id,
            "state": job.state.value,
            "site": placement.site if placement else None,
            "task_id": placement.task_id if placement else None,
            "attempts": job.attempts,
            "submitted_at": job.submitted_at,
            "error": job.error,
        }

    def result(self, job_id: str) -> Any:
        if self.is_malleable(job_id):
            # converted fixed jobs: hand back the per-unit result map —
            # FederatedClient.result merges it into one payload
            return self.malleable_result(job_id)
        job = self.job(job_id)
        self._refresh(job)
        if job.state is JobState.FAILED:
            raise PlacementError(
                f"job {job_id} failed: {job.error}", job_id=job_id
            )
        if job.state is not JobState.COMPLETED:
            raise PlacementError(
                f"job {job_id} not finished (state {job.state.value})",
                job_id=job_id,
            )
        return job.result

    def jobs(self, state: JobState | None = None) -> list[FederatedJob]:
        if state is None:
            return list(self._jobs.values())
        return self._in_state(state)  # O(jobs in that state), not O(all)

    # -- malleable queries ------------------------------------------------------

    def malleable_job(self, job_id: str):
        return self.malleable.job(job_id)

    def malleable_status(self, job_id: str) -> dict[str, Any]:
        self.malleable.tick()
        return self.malleable.status(job_id)

    def malleable_result(self, job_id: str) -> dict[int, Any]:
        """Per-unit results of a completed malleable job, keyed by unit."""
        self.malleable.tick()
        return self.malleable.results(job_id)

    def stats(self) -> dict[str, Any]:
        """O(1) snapshot from the maintained tables and counters — no
        scan over the (unbounded) job history."""
        by_state: dict[str, int] = {
            s.value: len(self._by_state[s]) for s in JobState
        }
        n_malleable = 0
        resize_events = 0
        if self._malleable is not None:
            for state in JobState:
                by_state[state.value] += self._malleable.state_count(state)
            n_malleable = self._malleable.job_count()
            resize_events = self._malleable.resize_event_count()
        return {
            "jobs": len(self._jobs) + n_malleable,
            "by_state": by_state,
            "reroutes": self._reroutes,
            "malleable_jobs": n_malleable,
            "resize_events": resize_events,
            "evicted": self._evicted,
            "sites": self.registry.names(),
            "profiles": (
                self.profiles.summary() if self.profiles is not None else None
            ),
        }
