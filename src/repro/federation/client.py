"""FederatedClient: the one-interface view of a multi-site federation.

Mirrors the call conventions of :class:`~repro.runtime.client.DaemonClient`
(submit / status / result, plus a generator ``run_process`` for use
inside simulated jobs) but speaks to the :class:`FederationBroker`
instead of one site's REST router, so user code written against the
single-site runtime moves to the federation by swapping the client.
Results come back as the same :class:`~repro.runtime.results.RunResult`
the single-site path produces, with the executing site recorded in
metadata — users keep one mental model from laptop to federation.
"""

from __future__ import annotations

from typing import Any

from ..runtime.results import RunResult
from ..sdk.translate import to_ir
from ..simkernel import Timeout
from ..spec import JobSpec
from .broker import FederationBroker

__all__ = ["FederatedClient"]

#: terminal federated-job states
_TERMINAL = ("completed", "failed")


class FederatedClient:
    """Typed client over a federation broker."""

    def __init__(self, broker: FederationBroker, user: str = "fed-user") -> None:
        self.broker = broker
        self.user = user

    # -- discovery ----------------------------------------------------------

    def resources(self) -> dict[str, str]:
        """``site/resource`` -> type across all healthy sites."""
        return self.broker.available_resources()

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        program: Any,
        shots: int | None = None,
        affinity_key: str | None = None,
        pin: str | None = None,
    ) -> str:
        """Submit one fixed-size job; ``program`` may be a
        :class:`~repro.spec.JobSpec` (preferred — the kwargs are then
        ignored).  The kwarg form is a deprecated shim; shot resolution
        happens in exactly one place, ``JobSpec.validate`` (an explicit
        ``shots`` wins, else the program's own count, else the
        federation default)."""
        if isinstance(program, JobSpec):
            return self.submit_spec(program)
        return self.submit_spec(
            JobSpec.from_legacy_kwargs(
                program, shots=shots, affinity_key=affinity_key, pin=pin
            )
        )

    def submit_spec(self, spec: JobSpec) -> str:
        """Hand a spec to the broker under this client's identity (an
        explicit ``spec.tenant`` wins over the client user)."""
        if spec.tenant is None:
            from dataclasses import replace

            spec = replace(spec, tenant=self.user)
        return self.broker.submit_spec(spec)

    def status(self, job_id: str) -> dict[str, Any]:
        return self.broker.status(job_id)

    def result(self, job_id: str) -> RunResult:
        """Fetch the result from whichever site ran the job, wrapped in
        the uniform single-site result type.  A fixed submission the
        saturated broker converted to malleable units comes back merged
        (see :meth:`malleable_result`) — conversion stays transparent."""
        if self.broker.is_malleable(job_id):
            return self.malleable_result(job_id)
        job = self.broker.job(job_id)
        emulation = self.broker.result(job_id)
        placement = job.current
        assert placement is not None  # completed jobs have a live placement
        result = RunResult.from_emulation(
            emulation,
            f"{placement.site}/{job_id}",
            to_ir(job.program).content_hash(),
        )
        result.metadata["federation_site"] = placement.site
        result.metadata["federation_attempts"] = job.attempts
        return result

    # -- malleable (multi-site) jobs ------------------------------------------

    def submit_malleable(
        self,
        program: Any,
        iterations: int,
        shots: int | None = None,
        affinity_key: str | None = None,
        sites: tuple[str, ...] | None = None,
        malleable: bool = True,
    ) -> str:
        """Submit an iterative job whose burst units the broker spreads
        across sites and re-divides mid-flight (``malleable=False`` pins
        the units to a static round-robin split — the rigid baseline).
        Deprecated kwarg shim — a multi-unit :class:`~repro.spec.JobSpec`
        through :meth:`submit_spec` is the same call."""
        if isinstance(program, JobSpec):
            return self.submit_spec(program)
        return self.submit_spec(
            JobSpec.from_legacy_kwargs(
                program,
                shots=shots,
                affinity_key=affinity_key,
                sites=sites,
                iterations=iterations,
                malleable=malleable,
            )
        )

    def malleable_status(self, job_id: str) -> dict[str, Any]:
        return self.broker.malleable_status(job_id)

    def malleable_result(self, job_id: str) -> RunResult:
        """Merge every unit's counts into one uniform result — the
        multi-site job reads exactly like a single large burst."""
        job = self.broker.malleable_job(job_id)
        unit_results = self.broker.malleable_result(job_id)
        counts: dict[str, int] = {}
        shots = 0
        execution_s = 0.0
        backends = set()
        for unit in sorted(unit_results):
            emulation = unit_results[unit]
            for bitstring, n in emulation.counts.items():
                counts[bitstring] = counts.get(bitstring, 0) + n
            shots += emulation.shots
            execution_s += float(
                emulation.metadata.get("execution_seconds", 0.0)
            )
            backends.add(emulation.backend)
        ledger = job.placement.ledger
        return RunResult(
            counts=counts,
            shots=shots,
            backend="+".join(sorted(backends)),
            resource=f"malleable/{job_id}",
            program_hash=to_ir(job.program).content_hash(),
            execution_s=execution_s,
            metadata={
                "federation_sites": ledger.completions_by_site(),
                "federation_units": job.units,
                "federation_resize_events": len(job.placement.events),
                "federation_malleable": job.malleable,
            },
        )

    # -- simulation-aware polling ---------------------------------------------

    def run_process(
        self,
        program: Any,
        shots: int | None = None,
        affinity_key: str | None = None,
        poll_interval: float = 5.0,
        pin: str | None = None,
    ):
        """Generator form for simulated jobs: submit, poll the broker on
        the simulated clock, return the fetched result."""
        job_id = self.submit(
            program, shots=shots, affinity_key=affinity_key, pin=pin
        )
        while True:
            status = self.status(job_id)
            if status["state"] in _TERMINAL:
                break
            yield Timeout(poll_interval)
        return self.result(job_id)

    def run_malleable_process(
        self,
        program: Any,
        iterations: int,
        shots: int | None = None,
        affinity_key: str | None = None,
        sites: tuple[str, ...] | None = None,
        malleable: bool = True,
        poll_interval: float = 5.0,
    ):
        """Generator form of the malleable path: submit, poll on the
        simulated clock, return the merged :class:`RunResult`."""
        job_id = self.submit_malleable(
            program,
            iterations,
            shots=shots,
            affinity_key=affinity_key,
            sites=sites,
            malleable=malleable,
        )
        while True:
            status = self.malleable_status(job_id)
            if status["state"] in _TERMINAL:
                break
            yield Timeout(poll_interval)
        return self.malleable_result(job_id)
