"""Site registry: the federation's membership and health table.

Each registered site carries a descriptor snapshot the broker routes
on: the exported resource catalog, current queue depth vs. capacity, a
calibration/drift summary from the site's observability stack, and a
health state maintained by heartbeats with expiry — a site that stops
heartbeating (crash, network partition) is treated as unhealthy after
``heartbeat_expiry`` seconds, triggering failover in the broker.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import FederationError
from ..simkernel import Simulator, Timeout
from .site import FederatedSite

__all__ = ["SiteHealth", "SiteRegistry", "SiteSnapshot"]


class SiteHealth(enum.Enum):
    ONLINE = "online"
    SATURATED = "saturated"    # healthy but at queue capacity
    UNHEALTHY = "unhealthy"    # heartbeat expired or marked down


@dataclass(frozen=True)
class SiteSnapshot:
    """Immutable routing view of one site at decision time."""

    name: str
    health: SiteHealth
    queue_depth: int
    max_queue_depth: int
    fidelity_proxy: float
    max_qubits: int
    catalog: dict[str, str] = field(default_factory=dict)
    calibration: dict[str, dict[str, float]] = field(default_factory=dict)

    @property
    def is_healthy(self) -> bool:
        return self.health is not SiteHealth.UNHEALTHY

    @property
    def is_saturated(self) -> bool:
        return self.health is SiteHealth.SATURATED

    @property
    def headroom(self) -> int:
        return max(0, self.max_queue_depth - self.queue_depth)


@dataclass
class _SiteRecord:
    site: FederatedSite
    registered_at: float
    last_heartbeat: float
    beat_seq: int = 0  # bumps per heartbeat (liveness introspection)


class SiteRegistry:
    """Membership, heartbeats, and snapshot production.

    Snapshot production is the federation's hottest read path — the
    broker rebuilds the candidate view for every placement and every
    reconcile sweep.  Each site's snapshot is therefore cached keyed on
    everything that can change its content: liveness, queue depth, the
    classified health (which folds in heartbeat expiry, so a snapshot
    can never outlive a health transition), and the site's
    :meth:`~repro.federation.site.FederatedSite.snapshot_signature`
    (resource identity + calibration versions).  Unlike the earlier
    ``now``-keyed cache, this key survives housekeeping ticks — and
    heartbeats — when nothing drifted; ``snapshot_cache_hits`` /
    ``snapshot_cache_misses`` count how often.  The sorted name list is
    likewise cached and invalidated on membership change.
    """

    def __init__(self, heartbeat_expiry: float = 60.0) -> None:
        if heartbeat_expiry <= 0:
            raise FederationError("heartbeat_expiry must be positive")
        self.heartbeat_expiry = heartbeat_expiry
        self.snapshot_cache_hits = 0
        self.snapshot_cache_misses = 0
        self._records: dict[str, _SiteRecord] = {}
        self._beat_sim: Simulator | None = None
        self._beat_interval: float = 0.0
        self._names_cache: tuple[str, ...] | None = None
        self._ordered_records: list[_SiteRecord] | None = None
        self._snap_cache: dict[str, tuple[tuple, SiteSnapshot]] = {}
        #: callbacks fired with each newly registered site — the broker
        #: uses this to wire late joiners onto the lifecycle bus
        self._register_hooks: list = []

    # -- membership ---------------------------------------------------------

    def on_register(self, callback) -> None:
        """Run ``callback(site)`` for every future :meth:`register`."""
        self._register_hooks.append(callback)

    def register(self, site: FederatedSite, now: float = 0.0) -> None:
        if site.name in self._records:
            raise FederationError(f"site {site.name!r} already registered")
        self._records[site.name] = _SiteRecord(
            site=site, registered_at=now, last_heartbeat=now
        )
        self._names_cache = None
        self._ordered_records = None
        if self._beat_sim is not None:
            # heartbeats already running: late joiners beat too
            self._spawn_beat(site)
        for callback in self._register_hooks:
            callback(site)

    def deregister(self, name: str) -> None:
        if name not in self._records:
            raise FederationError(f"unknown site {name!r}")
        del self._records[name]
        self._names_cache = None
        self._ordered_records = None
        self._snap_cache.pop(name, None)

    def site(self, name: str) -> FederatedSite:
        if name not in self._records:
            raise FederationError(f"unknown site {name!r}")
        return self._records[name].site

    def names(self) -> list[str]:
        if self._names_cache is None:
            self._names_cache = tuple(sorted(self._records))
        return list(self._names_cache)

    def __len__(self) -> int:
        return len(self._records)

    # -- health -------------------------------------------------------------

    def heartbeat(self, name: str, now: float) -> None:
        record = self._records.get(name)
        if record is None:
            raise FederationError(f"heartbeat from unknown site {name!r}")
        record.last_heartbeat = now
        record.beat_seq += 1

    def _classify(
        self, record: _SiteRecord, now: float, depth: int
    ) -> SiteHealth:
        """The one site-health rule, shared by :meth:`health_of` and
        the snapshot builder (which already holds the queue depth)."""
        site = record.site
        if not site.alive or now - record.last_heartbeat > self.heartbeat_expiry:
            return SiteHealth.UNHEALTHY
        if depth >= site.max_queue_depth:
            return SiteHealth.SATURATED
        return SiteHealth.ONLINE

    def health_of(self, name: str, now: float) -> SiteHealth:
        record = self._records.get(name)
        if record is None:
            raise FederationError(f"unknown site {name!r}")
        return self._classify(record, now, record.site.queue_depth())

    # -- snapshots -----------------------------------------------------------

    def _build_snapshot(
        self, record: _SiteRecord, now: float
    ) -> SiteSnapshot:
        site = record.site
        depth = site.queue_depth()
        health = self._classify(record, now, depth)
        # the heartbeat itself is NOT in the key: a beat changes no
        # snapshot content, and expiry transitions surface through
        # ``health`` — so quiet ticks keep hitting the cache
        key = (site.alive, depth, health, site.snapshot_signature())
        cached = self._snap_cache.get(site.name)
        if cached is not None and cached[0] == key:
            self.snapshot_cache_hits += 1
            return cached[1]
        self.snapshot_cache_misses += 1
        snap = SiteSnapshot(
            name=site.name,
            health=health,
            queue_depth=depth,
            max_queue_depth=site.max_queue_depth,
            fidelity_proxy=site.fidelity_proxy(),
            max_qubits=site.max_qubits(),
            catalog=site.catalog(),
            calibration=site.calibration_snapshot(),
        )
        self._snap_cache[site.name] = (key, snap)
        return snap

    def snapshot(self, name: str, now: float) -> SiteSnapshot:
        record = self._records.get(name)
        if record is None:
            raise FederationError(f"unknown site {name!r}")
        return self._build_snapshot(record, now)

    def snapshots(self, now: float) -> list[SiteSnapshot]:
        # the record list in sorted-name order is cached with the name
        # list: no per-name dict lookup on the sweep path
        if self._ordered_records is None:
            self._ordered_records = [
                self._records[name] for name in self.names()
            ]
        return [
            self._build_snapshot(record, now)
            for record in self._ordered_records
        ]

    def healthy_snapshots(
        self, now: float, exclude: tuple[str, ...] = ()
    ) -> list[SiteSnapshot]:
        return [
            snap
            for snap in self.snapshots(now)
            if snap.is_healthy and snap.name not in exclude
        ]

    # -- heartbeat automation -------------------------------------------------

    def start_heartbeats(self, sim: Simulator, interval: float = 15.0) -> None:
        """Spawn one background heartbeat process per registered site.

        A site stops heartbeating the moment it dies (``site.alive`` is
        False), so expiry detection behaves exactly like a lost remote
        peer rather than a graceful deregistration.
        """
        if interval <= 0:
            raise FederationError("heartbeat interval must be positive")
        self._beat_sim = sim
        self._beat_interval = interval
        for record in self._records.values():
            self._spawn_beat(record.site)

    def _spawn_beat(self, site: FederatedSite) -> None:
        sim, interval = self._beat_sim, self._beat_interval
        assert sim is not None

        def beat():
            while site.alive and site.name in self._records:
                self.heartbeat(site.name, sim.now)
                yield Timeout(interval)

        sim.spawn(beat(), name=f"heartbeat:{site.name}", background=True)
