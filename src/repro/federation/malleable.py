"""Cross-site malleable placements: the broker as a feedback controller.

The paper's malleability model (§2.4) grows and shrinks a job's *node*
allocation inside one site.  This module lifts the same idea one level
up, to the federation: an iterative hybrid job — a sequence of
identical quantum-burst *units* (VQE parameter sweeps, SQD sampling
batches) — is split across several sites through a
:class:`~repro.scheduling.malleable.ShareLedger`, and a resize loop
re-divides the *future* units while the job runs:

* **shrink** — a site whose queue depth crosses the high watermark, or
  whose per-unit latency degrades against the federation's best, loses
  weight; a site whose heartbeat lapses is retired outright and its
  in-flight units return to the pool (preemption-safe: completed units
  are checkpointed and never redone),
* **grow** — idle healthy sites, including late joiners and recovered
  sites, gain weight and start pulling units,
* **rebalance** — every pass that changes a weight re-divides the
  outstanding units by largest remainder.

The ranking that decides *who deserves share* comes from the broker's
routing policy (:meth:`~repro.federation.policies.RoutingPolicy.rank_resize`),
so placement preference and resize preference cannot diverge.  Job ids
stay stable across every resize, retry, and failover, exactly like the
fixed-size path.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Any

from ..errors import PlacementError, ResourceNotFound, SiteUnavailable, SpecError
from ..runtime.backend_select import select_resource
from ..scheduling.algorithms import AgreementElastic
from ..scheduling.malleable import ShareLedger
from ..spec import JobSpec, parse_site_leg
from .broker import JobState, _program_name, _program_qubits
from .events import TERMINAL_TASK_KINDS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .broker import FederationBroker
    from .registry import SiteSnapshot

__all__ = [
    "MalleableJob",
    "MalleableManager",
    "MalleablePlacement",
    "ResizeConfig",
    "ShareEvent",
    "UnitDispatch",
]


@dataclass(frozen=True)
class ResizeConfig:
    """Knobs of the resize loop (the controller's transfer function)."""

    #: queue_depth / max_queue_depth at or above this → share weight 0
    high_watermark: float = 0.75
    #: site EWMA unit latency > ratio x federation best → demote
    slow_ratio: float = 2.5
    #: smoothing for per-site unit latency
    ewma_alpha: float = 0.5
    #: floor weight a slow-but-alive site keeps (a trickle of units
    #: keeps refreshing its latency estimate so recovery is observable)
    demoted_weight: float = 0.25
    #: max units concurrently in flight per site per job
    max_outstanding_per_site: int = 2

    def __post_init__(self) -> None:
        if not (0.0 < self.high_watermark <= 1.0):
            raise PlacementError("high_watermark must be in (0, 1]")
        if self.slow_ratio <= 1.0:
            raise PlacementError("slow_ratio must be > 1")
        if not (0.0 < self.ewma_alpha <= 1.0):
            raise PlacementError("ewma_alpha must be in (0, 1]")
        if self.max_outstanding_per_site < 1:
            raise PlacementError("max_outstanding_per_site must be >= 1")


@dataclass
class ShareEvent:
    """One resize decision, kept for observability and the benchmarks."""

    time: float
    kind: str  # "grow" | "shrink" | "retire"
    site: str
    weight_before: float
    weight_after: float
    reason: str


@dataclass
class UnitDispatch:
    """One work unit live (or once live) on one site."""

    unit: int
    site: str
    task_id: str
    placed_at: float
    started_at: float | None = None  # site-local execution start
    abandoned: bool = False
    abandon_reason: str = ""


@dataclass
class MalleablePlacement:
    """The multi-site placement of one iterative job: the share ledger
    plus the per-unit dispatches currently in flight."""

    ledger: ShareLedger
    dispatches: dict[int, UnitDispatch] = field(default_factory=dict)
    history: list[UnitDispatch] = field(default_factory=list)
    events: list[ShareEvent] = field(default_factory=list)
    latency_ewma: dict[str, float] = field(default_factory=dict)

    def weights(self) -> dict[str, float]:
        return {
            s.site: s.weight for s in self.ledger.shares.values() if not s.retired
        }

    def events_of(self, kind: str) -> list[ShareEvent]:
        return [e for e in self.events if e.kind == kind]


@dataclass
class MalleableJob:
    """Broker-side record of one malleable (multi-site) job."""

    job_id: str
    program: Any  # IR; each unit runs it at shots_per_unit
    units: int
    shots_per_unit: int
    owner: str
    affinity_key: str | None
    n_qubits: int
    submitted_at: float
    malleable: bool
    restrict_sites: tuple[str, ...] | None
    pins: dict[str, str]
    placement: MalleablePlacement
    state: Any  # JobState; Any avoids a broker import cycle
    results: dict[int, Any] = field(default_factory=dict)
    error: str = ""
    finished_at: float | None = None
    #: submission sequence — per-state tables iterate in this order
    seq: int = 0
    #: spec-declared elasticity bounds on concurrently in-flight units
    #: (min is advisory — surfaced to the arbiter/status; max is a hard
    #: dispatch cap)
    min_units: int | None = None
    max_units: int | None = None
    #: the validated :class:`~repro.spec.JobSpec` this job came from
    spec: Any = None

    @property
    def completed_units(self) -> int:
        return self.placement.ledger.completed_units


class MalleableManager:
    """Owns the malleable jobs of one broker and runs their resize loop.

    The broker's :meth:`~repro.federation.broker.FederationBroker.reconcile`
    sweep calls :meth:`tick` — the same cadence that drives fixed-size
    failover drives shrink/grow, so there is exactly one feedback loop
    to reason about.
    """

    def __init__(
        self, broker: "FederationBroker", config: ResizeConfig | None = None
    ) -> None:
        self.broker = broker
        self.config = config or ResizeConfig()
        self._jobs: dict[str, MalleableJob] = {}
        # state-indexed tables + maintained counters, mirroring the
        # broker: the tick sweeps live jobs only, stats() never scans
        self._by_state: dict[JobState, dict[str, MalleableJob]] = {
            s: {} for s in JobState
        }
        self._resize_events = 0
        self._id_counter = itertools.count(1)
        # fair-share arbitration memo: (signature, caps) of the last
        # pass — recomputed only when contenders/demands/weights change
        self._arb_sig: tuple | None = None
        self._arb_caps: dict[tuple[str, str], int] | None = None
        # push-based lifecycle: (site, task_id) -> (job_id, unit) for
        # every in-flight dispatch, and the per-job pushed transitions
        # the event-driven _refresh drains instead of polling
        self._task_map: dict[tuple[str, str], tuple[str, int]] = {}
        self._unit_events: dict[str, dict[int, dict]] = {}
        #: terminal records dropped by :meth:`evict_terminal`
        self._evicted = 0
        #: pairwise negotiator for agreement-based slot arbitration —
        #: used whenever a live contender's spec names it (see
        #: :meth:`_arbitrate_slots`); its transfer log feeds events
        self._negotiator = AgreementElastic()

    # -- state tables ---------------------------------------------------------

    def _set_state(self, job: MalleableJob, state: Any) -> None:
        if state is job.state:
            return
        self._by_state[job.state].pop(job.job_id, None)
        job.state = state
        self._by_state[state][job.job_id] = job
        if state in (JobState.COMPLETED, JobState.FAILED):
            job.finished_at = self.broker.sim.now
            self._unit_events.pop(job.job_id, None)
            self.broker._publish(
                f"job_{state.value}", job.job_id, error=job.error
            )

    def _in_state(self, state: Any) -> list[MalleableJob]:
        return sorted(self._by_state[state].values(), key=lambda j: j.seq)

    def state_count(self, state: Any) -> int:
        return len(self._by_state[state])

    def job_count(self) -> int:
        return len(self._jobs)

    def resize_event_count(self) -> int:
        return self._resize_events

    # -- intake ---------------------------------------------------------------

    def submit(
        self,
        program: Any,
        iterations: int,
        shots: int | None = None,
        owner: str = "fed-user",
        affinity_key: str | None = None,
        sites: tuple[str, ...] | None = None,
        malleable: bool = True,
    ) -> str:
        """Accept an iterative job of ``iterations`` burst units; returns
        a stable job id that survives every resize and failover.
        Deprecated kwarg shim over :meth:`submit_spec`.

        ``sites`` optionally restricts the candidate set; entries may be
        bare site names or qualified ``site/resource`` pins.  With
        ``malleable=False`` the units are pre-assigned round-robin and
        never rebalanced — the rigid baseline the ablation measures
        against (health failover still applies: rigidity is about load,
        not about losing jobs).
        """
        if isinstance(program, JobSpec):
            return self.submit_spec(program)
        return self.submit_spec(
            JobSpec.from_legacy_kwargs(
                program,
                shots=shots,
                owner=owner,
                affinity_key=affinity_key,
                sites=sites,
                iterations=iterations,
                malleable=malleable,
            )
        )

    def submit_spec(self, spec: JobSpec) -> str:
        """Accept a multi-unit :class:`~repro.spec.JobSpec`: elasticity
        (units, site restriction, malleable-vs-rigid, in-flight bounds)
        lives in the spec, not the call site."""
        try:
            spec = spec.validate()
        except SpecError as err:
            raise PlacementError(str(err)) from err
        if spec.iterations is None:
            raise PlacementError("a malleable job needs iterations >= 1")
        self.broker._check_budget_hint(spec)
        ir = spec.program
        restrict: tuple[str, ...] | None = None
        pins: dict[str, str] = {}
        if spec.sites is not None:
            parsed = [parse_site_leg(s) for s in spec.sites]
            restrict = tuple(site for site, _ in parsed)
            pins = {site: res for site, res in parsed if res is not None}
        admit_wall = perf_counter()
        hold = self.broker._admit(spec.tenant)
        ledger = ShareLedger(spec.iterations, max_attempts=self.broker.max_attempts)
        seq = next(self._id_counter)
        job = MalleableJob(
            job_id=f"fed-mjob-{seq}",
            program=ir,
            units=spec.iterations,
            shots_per_unit=ir.shots,
            owner=spec.tenant,
            affinity_key=spec.affinity_key,
            n_qubits=_program_qubits(ir),
            submitted_at=self.broker.sim.now,
            malleable=spec.malleable,
            restrict_sites=restrict,
            pins=pins,
            placement=MalleablePlacement(ledger=ledger),
            state=JobState.HELD if hold else JobState.PLACED,
            seq=seq,
            min_units=spec.min_units,
            max_units=spec.max_units,
            spec=spec,
        )
        self._jobs[job.job_id] = job
        self._by_state[job.state][job.job_id] = job
        if self.broker.tracer is not None:
            self.broker._trace_intake(job.job_id, spec, admit_wall, hold)
        self.broker._publish(
            "job_held" if hold else "job_submitted",
            job.job_id,
            tenant=spec.tenant,
            program=_program_name(ir),
            qubits=job.n_qubits,
        )
        if not hold:
            self._seed_shares(job)
            # arbitrated from the first dispatch: a late-arriving job
            # starts at its fair share instead of flooding the queues
            # until the next tick notices the contention
            self._dispatch(job, self._arbitrate_slots())
        return job.job_id

    def _release_held(self, admission_cache: dict) -> None:
        """Activate held malleable jobs whose tenant budget regained
        headroom (shares seed at release time, against the *current*
        candidate set — the federation may have changed while parked).
        Admission is memoized per tenant for this pass (a fresh memo
        per pass: the fixed-size refresh loop runs in between and can
        move budgets)."""
        from ..accounting import AdmissionDecision

        for job in self._in_state(JobState.HELD):
            decision = self.broker._admission_memo(job.owner, admission_cache)
            if decision is not AdmissionDecision.ADMIT:
                continue
            if not self._candidates(job):
                continue  # transient no-site window: stay parked
            self.broker._publish("admission", job.job_id, decision="released")
            self._set_state(job, JobState.PLACED)
            self._seed_shares(job)
            if job.state is JobState.PLACED:
                self._dispatch(job, self._arbitrate_slots())
            # dispatching reserved budget against this tenant: the
            # memoized decision is stale from here on
            admission_cache.pop(job.owner, None)

    def _seed_shares(self, job: MalleableJob) -> None:
        candidates = self._candidates(job)
        if not candidates:
            # mirror the fixed-size intake contract: accept the job and
            # fail it with a diagnosis rather than raising after the
            # job id is already registered
            job.error = (
                f"no healthy site can take a {job.n_qubits}-qubit malleable job"
            )
            self._set_state(job, JobState.FAILED)
            return
        now = self.broker.sim.now
        ranked = self.broker.policy.rank_resize(job, candidates, now)
        ledger = job.placement.ledger
        if job.malleable:
            for i, snap in enumerate(ranked):
                weight = float(len(ranked) - i)
                ledger.add_site(snap.name, weight)
                self._record_event(job, "grow", snap.name, 0.0, weight, "join")
        else:
            for snap in ranked:
                ledger.add_site(snap.name, 1.0)
            ledger.freeze()
        self.broker.metrics.observe_share_weights(job.placement.weights())

    # -- candidate view --------------------------------------------------------

    def _candidates(self, job: MalleableJob) -> list["SiteSnapshot"]:
        """Healthy, capable sites — saturated ones stay in (the
        watermark zeroes their weight instead of retiring them)."""
        now = self.broker.sim.now
        healthy = self.broker.registry.healthy_snapshots(now)
        capable = [
            snap
            for snap in healthy
            if snap.catalog and snap.max_qubits >= job.n_qubits
        ]
        if job.restrict_sites is not None:
            capable = [s for s in capable if s.name in job.restrict_sites]
        return capable

    # -- the resize loop -------------------------------------------------------

    def tick(self) -> int:
        """One controller pass: refresh unit states, then rebalance and
        top up dispatches for every live job — under the fair-share
        slot caps when several jobs contend and accounting is wired.
        Sweeps the live tables only; returns how many jobs it touched
        (the broker's reconcile instrumentation)."""
        scanned = len(self._by_state[JobState.HELD])
        if self.broker.accounting is not None:
            self._release_held({})
        live = self._in_state(JobState.PLACED)
        scanned += len(live)
        for job in live:
            if job.state is not JobState.PLACED:
                continue  # went terminal earlier this sweep
            self._refresh(job)
            if job.state is not JobState.PLACED:
                continue
            if job.malleable:
                self._rebalance(job)
            else:
                self._retire_unhealthy(job)
        caps = self._arbitrate_slots()
        for job in live:
            if job.state is not JobState.PLACED:
                continue
            self._dispatch(job, caps)
            self._fail_if_stranded(job)
        return scanned

    def _arbitrate_slots(self) -> dict[tuple[str, str], int] | None:
        """Couple the per-job resize loops through the federation's
        :class:`~repro.accounting.FairShareArbiter`: on every site where
        several live jobs hold an active share, the per-site
        outstanding-unit budget (``max_outstanding_per_site``) becomes a
        *shared* capacity divided weighted-max-min by tenant weight
        (the *effective* weight — usage-decayed when the arbiter has a
        half-life configured).  When any contender's spec selects the
        ``"agreement-elastic"`` algorithm, the whole site switches to
        pairwise steal negotiation starting from current in-flight
        holdings instead of central water-filling — converging to the
        same weighted target by local two-party agreements.
        Returns ``{(job_id, site): slots}`` or ``None`` when no
        arbitration applies (no accounting, or no contention)."""
        accounting = self.broker.accounting
        if accounting is None:
            return None
        live = self._in_state(JobState.PLACED)
        if len(live) < 2:
            self._arb_sig = None
            return None
        capacity = self.config.max_outstanding_per_site
        active: dict[str, list[str]] = {
            j.job_id: j.placement.ledger.active_sites() for j in live
        }
        sites: set[str] = set()
        for names in active.values():
            sites.update(names)
        # dirty-flag pass: the water-filling below only needs to re-run
        # when the contender set, a demand, or a tenant weight actually
        # changed — on a quiet tick the previous grant table stands
        signature = (
            capacity,
            accounting.arbiter.version,
            tuple(
                (
                    j.job_id,
                    j.owner,
                    tuple(active[j.job_id]),
                    min(capacity, j.placement.ledger.pending_units),
                    tuple(
                        (s, len(j.placement.ledger.in_flight_at(s)))
                        for s in active[j.job_id]
                    ),
                )
                for j in live
            ),
        )
        if signature == self._arb_sig:
            return self._arb_caps
        now = self.broker.sim.now
        caps: dict[tuple[str, str], int] = {}
        for site in sorted(sites):
            contenders = [j for j in live if site in active[j.job_id]]
            if len(contenders) < 2:
                continue  # sole occupant keeps the full per-site budget
            # fairness attaches to the *tenant*: one owner's weight is
            # split over however many jobs they run here, so submitting
            # N jobs cannot multiply a tenant's aggregate share
            owner_jobs: dict[str, int] = {}
            for job in contenders:
                owner_jobs[job.owner] = owner_jobs.get(job.owner, 0) + 1
            demands = {}
            weights = {}
            holdings = {}
            negotiated = False
            for job in contenders:
                ledger = job.placement.ledger
                in_flight = len(ledger.in_flight_at(site))
                outstanding = ledger.pending_units + in_flight
                demands[job.job_id] = min(capacity, outstanding)
                weights[job.job_id] = accounting.arbiter.effective_weight(
                    job.owner, now
                ) / owner_jobs[job.owner]
                holdings[job.job_id] = in_flight
                if getattr(job.spec, "algorithm", None) == "agreement-elastic":
                    negotiated = True
            if negotiated:
                alloc, transfers = self._negotiator.negotiate(
                    capacity, demands, weights, holdings
                )
                if transfers:
                    self.broker._publish(
                        "slots_agreed", "", site=site, transfers=transfers
                    )
            else:
                alloc = accounting.arbiter.allocate(capacity, demands, weights)
            for job_id, slots in alloc.items():
                caps[(job_id, site)] = slots
        self._arb_sig = signature
        self._arb_caps = caps
        return caps

    def consume_task_event(self, event) -> bool:
        """Lifecycle-bus sink: route one site task transition to the
        (job, unit) whose dispatch owns that task.  Returns False for
        tasks this manager never placed (the broker's fixed-size index
        gets the next look)."""
        target = self._task_map.get((event.site, event.task_id))
        if target is None:
            return False
        job_id, unit = target
        if event.kind == "running" or event.kind in TERMINAL_TASK_KINDS:
            payload = dict(event.payload)
            payload["task_id"] = event.task_id
            self._unit_events.setdefault(job_id, {})[unit] = payload
        return True

    def _refresh(self, job: MalleableJob) -> None:
        """Advance in-flight units from their sites' task states.

        With the broker's lifecycle bus attached this drains only the
        *pushed* transitions (O(transitions since last tick)); without
        it, every in-flight unit is polled (O(in-flight))."""
        now = self.broker.sim.now
        placement = job.placement
        if self.broker._push:
            pending = self._unit_events.pop(job.job_id, None) or {}
            work = [
                (unit, pending[unit])
                for unit in sorted(pending)
                if unit in placement.dispatches
            ]
        else:
            work = [
                (unit, None) for unit in list(placement.dispatches)
            ]
        for unit, pushed in work:
            if job.state is not JobState.PLACED:
                return  # a prior unit exhausted its retries mid-sweep
            dispatch = placement.dispatches.get(unit)
            if dispatch is None:
                continue  # dropped by a retire/cancel earlier this sweep
            if pushed is not None:
                if pushed.get("task_id") != dispatch.task_id:
                    continue  # stale: the unit was redispatched since
                status = pushed
                result = None
                if status["state"] == "completed":
                    try:
                        result = self._fetch_result(job, dispatch)
                    except Exception as err:
                        self._abandon_unit(job, unit, f"query failed: {err}")
                        continue
            else:
                try:
                    site = self.broker.registry.site(dispatch.site)
                    # archlint: disable=no-poll -- legacy fallback for non-push brokers; push-mode sweeps take the pushed branch above (poll-spy tested)
                    status = site.task_status(job.owner, dispatch.task_id)
                    if status["state"] == "completed":
                        result = self._fetch_result(job, dispatch)
                    else:
                        result = None
                except Exception as err:
                    # deregistered site / refused session: lost placement
                    self._abandon_unit(job, unit, f"query failed: {err}")
                    continue
            started = status.get("started_at")
            if started is not None:
                dispatch.started_at = started
            if status["state"] == "completed":
                placement.ledger.checkpoint(unit)
                job.results[unit] = result
                del placement.dispatches[unit]
                self._task_map.pop((dispatch.site, dispatch.task_id), None)
                placement.history.append(dispatch)
                if self.broker.accounting is not None:
                    self.broker.accounting.release_placement(
                        f"{job.job_id}/u{unit}"
                    )
                # service latency from execution start (when known), so
                # queue wait doesn't pollute the degradation signal —
                # queue pressure is the watermark's job
                base = started if started is not None else dispatch.placed_at
                finished = status.get("finished_at")
                end = finished if finished is not None else now
                self._observe_latency(job, dispatch.site, end - base)
                self.broker._publish(
                    "unit_completed", job.job_id, site=dispatch.site, unit=unit
                )
                if self.broker.accounting is not None:
                    self.broker.accounting.meter_completion(
                        job.owner,
                        dispatch.site,
                        shots=job.shots_per_unit,
                        cpu_seconds=max(0.0, end - base),
                        now=now,
                        job_id=job.job_id,
                    )
            elif status["state"] in ("failed", "cancelled"):
                self._abandon_unit(
                    job, unit, f"unit task {status['state']} on {dispatch.site}"
                )
        if placement.ledger.done and job.state is JobState.PLACED:
            self._set_state(job, JobState.COMPLETED)

    def _fetch_result(self, job: MalleableJob, dispatch: UnitDispatch) -> Any:
        """Pull one completed unit's result, under a ``result-fetch``
        span when the broker traces."""
        site = self.broker.registry.site(dispatch.site)
        tracer = self.broker.tracer
        if tracer is None:
            return site.task_result(job.owner, dispatch.task_id)
        now = self.broker.sim.now
        span = tracer.start_job_span(
            job.job_id, "result-fetch", now, wall_start=perf_counter(),
            site=dispatch.site, task_id=dispatch.task_id, unit=dispatch.unit,
        )
        if span is None:
            return site.task_result(job.owner, dispatch.task_id)
        try:
            result = site.task_result(job.owner, dispatch.task_id)
        except Exception:
            tracer.end_span(span, self.broker.sim.now, status="error")
            raise
        tracer.end_span(span, self.broker.sim.now)
        return result

    def _fail_if_stranded(self, job: MalleableJob) -> None:
        """Mirror the fixed-size broker's behavior when the federation
        runs out of options: a job with work left, nothing in flight,
        and no candidate site fails loudly instead of polling forever."""
        if job.state is not JobState.PLACED:
            return
        ledger = job.placement.ledger
        if ledger.done or ledger.in_flight_units > 0:
            return
        if self._candidates(job):
            return
        job.error = (
            f"no healthy site can take a {job.n_qubits}-qubit malleable job "
            f"({ledger.pending_units} units stranded)"
        )
        self._set_state(job, JobState.FAILED)

    def _site_latency(self, job: MalleableJob, site: str, now: float) -> float | None:
        """Effective unit latency: the completion EWMA, or the running
        age of an *executing* in-flight unit when that is already worse
        — so a stall is detected mid-unit, not only after it finally
        lands.  Queued-but-not-started units carry no evidence."""
        ewma = job.placement.latency_ewma.get(site)
        ages = [
            now - d.started_at
            for d in job.placement.dispatches.values()
            if d.site == site and d.started_at is not None
        ]
        oldest = max(ages, default=None)
        if ewma is None:
            return oldest
        if oldest is None:
            return ewma
        return max(ewma, oldest)

    def _observe_latency(self, job: MalleableJob, site: str, latency: float) -> None:
        ewma = job.placement.latency_ewma
        alpha = self.config.ewma_alpha
        ewma[site] = (
            latency
            if site not in ewma
            else alpha * latency + (1.0 - alpha) * ewma[site]
        )

    def _drop_dispatch(self, job: MalleableJob, unit: int, reason: str) -> UnitDispatch:
        """Shared bookkeeping for removing an in-flight dispatch: mark
        it abandoned, move it to history, best-effort cancel the site
        task.  Ledger accounting (abandon/reclaim/retire) stays with
        the caller."""
        placement = job.placement
        dispatch = placement.dispatches.pop(unit)
        self._task_map.pop((dispatch.site, dispatch.task_id), None)
        dispatch.abandoned = True
        dispatch.abandon_reason = reason
        placement.history.append(dispatch)
        try:
            self.broker.registry.site(dispatch.site).cancel(dispatch.task_id)
        except Exception:
            pass  # best-effort, the site may be gone
        if self.broker.accounting is not None:
            self.broker.accounting.release_placement(f"{job.job_id}/u{unit}")
        return dispatch

    def _fail_if_exhausted(self, job: MalleableJob, unit: int, reason: str) -> bool:
        """Enforce the bounded-retry contract after any attempt charge."""
        if job.state is not JobState.PLACED:
            return True
        ledger = job.placement.ledger
        if not ledger.exhausted(unit):
            return False
        job.error = (
            f"unit {unit} exhausted {ledger.attempts(unit)} placement "
            f"attempts: {reason}"
        )
        self._set_state(job, JobState.FAILED)
        self._cancel_all(job)
        return True

    def _abandon_unit(self, job: MalleableJob, unit: int, reason: str) -> None:
        dispatch = self._drop_dispatch(job, unit, reason)
        self.broker._publish(
            "job_rerouted", job.job_id, site=dispatch.site,
            task_id=dispatch.task_id, unit=unit, reason=reason,
        )
        if self.broker.accounting is not None:
            self.broker.accounting.meter_retry(
                job.owner,
                dispatch.site,
                now=self.broker.sim.now,
                job_id=job.job_id,
            )
        job.placement.ledger.abandon(unit)
        self._fail_if_exhausted(job, unit, reason)

    def _cancel_all(self, job: MalleableJob) -> None:
        for unit in list(job.placement.dispatches):
            self._drop_dispatch(job, unit, "job failed")

    def _reclaim_queued(self, job: MalleableJob, site: str, reason: str) -> None:
        """Trim a shrunk site's dispatches down to its new allocation by
        cancelling queued-but-not-started units (newest first) — they
        hold no work, so the pull-back is attempt-free.  Executing units
        are left alone: the preemption-safe boundary is the unit."""
        placement = job.placement
        ledger = placement.ledger
        allowed = ledger.allocation().get(site, 0)
        queued = [
            unit
            for unit in ledger.in_flight_at(site)
            if placement.dispatches[unit].started_at is None
        ]
        queued.sort(key=lambda u: placement.dispatches[u].placed_at)
        while queued and len(ledger.in_flight_at(site)) > allowed:
            unit = queued.pop()  # newest placement goes back first
            self._drop_dispatch(job, unit, f"reclaimed: {reason}")
            ledger.reclaim(unit)
            self.broker._publish(
                "resize", job.job_id, site=site, action="reclaim",
                unit=unit, reason=reason,
            )

    def _retire_site(self, job: MalleableJob, site: str, reason: str) -> None:
        """Shrink-to-zero with eviction: cancel the site's in-flight
        units and return them to the pool (checkpointed units stay)."""
        placement = job.placement
        weight_before = placement.ledger.weight(site)
        doomed = placement.ledger.in_flight_at(site)
        for unit in doomed:
            self._drop_dispatch(job, unit, reason)
            self.broker._publish(
                "job_rerouted", job.job_id, site=site, unit=unit, reason=reason
            )
            if self.broker.accounting is not None:
                self.broker.accounting.meter_retry(
                    job.owner, site, now=self.broker.sim.now, job_id=job.job_id
                )
        placement.ledger.retire(site)  # abandons the doomed units
        self._record_event(job, "retire", site, weight_before, 0.0, reason)
        for unit in doomed:
            if self._fail_if_exhausted(job, unit, reason):
                return

    def _retire_unhealthy(self, job: MalleableJob) -> None:
        """Rigid jobs still fail over on health — rigidity is about
        load shares, not about losing work when a site dies."""
        candidates = self._candidates(job)
        candidate_names = {s.name for s in candidates}
        ledger = job.placement.ledger
        for site in list(ledger.active_sites()):
            if site not in candidate_names:
                self._retire_site(job, site, f"site {site} left the federation")
        if job.state is not JobState.PLACED:
            return
        if not ledger.active_sites() and candidates:
            # every shareholder died before a replacement existed:
            # adopt the current candidates (equal rigid shares) and
            # re-pin the orphaned units so the job survives the wipeout
            for snap in candidates:
                if snap.name in ledger.shares:
                    ledger.revive(snap.name, 1.0)
                else:
                    ledger.add_site(snap.name, 1.0)
                self._record_event(
                    job, "grow", snap.name, 0.0, 1.0, "rigid re-seed"
                )
            ledger.assign_orphans()

    def _rebalance(self, job: MalleableJob) -> None:
        """Recompute target weights from the policy ranking plus the
        controller's degradation signals; emit grow/shrink events."""
        now = self.broker.sim.now
        candidates = self._candidates(job)
        candidate_names = {s.name for s in candidates}
        ledger = job.placement.ledger

        # sites that fell out of the candidate set are evicted
        for site in list(ledger.active_sites()):
            if site not in candidate_names:
                self._retire_site(job, site, f"site {site} left the federation")
        if job.state is not JobState.PLACED or not candidates:
            return

        ranked = self.broker.policy.rank_resize(job, candidates, now)
        latencies: dict[str, float] = {}
        for snap in ranked:
            lat = self._site_latency(job, snap.name, now)
            if lat is None:
                continue
            # ratchet observed stalls into the EWMA: once a unit has
            # visibly run for 600 s, a fresh unit starting must not
            # reset the evidence — only genuinely fast completions
            # (via the normal EWMA update) walk the estimate back down
            ewma = job.placement.latency_ewma.get(snap.name)
            if ewma is None or lat > ewma:
                job.placement.latency_ewma[snap.name] = lat
            latencies[snap.name] = lat
        best_latency = min(latencies.values(), default=None)
        target: dict[str, float] = {}
        reasons: dict[str, str] = {}
        demoted: set[str] = set()
        for i, snap in enumerate(ranked):
            weight = float(len(ranked) - i)
            reason = "rank"
            if snap.queue_depth >= self.config.high_watermark * snap.max_queue_depth:
                weight, reason = 0.0, "queue depth over watermark"
                demoted.add(snap.name)
            else:
                ewma = latencies.get(snap.name)
                if (
                    best_latency is not None
                    and ewma is not None
                    and ewma > self.config.slow_ratio * best_latency
                ):
                    # proportional shrink off the *bottom* rank weight —
                    # a starved slow site ranks well on queue depth, and
                    # letting that amplify a demoted share would make the
                    # controller fight itself (shrink, drain, re-grow).
                    # A 10x-slower site keeps ~1/10 of one share, floored
                    # at a probing trickle.
                    weight = max(
                        best_latency / ewma, self.config.demoted_weight
                    )
                    reason = "unit latency degraded"
                    demoted.add(snap.name)
            target[snap.name] = weight
            reasons[snap.name] = reason
        # straggler avoidance: once the remaining units all fit on the
        # healthy sites concurrently, a demoted site's trickle would
        # anchor the tail of the job — starve it outright instead
        outstanding = ledger.pending_units + ledger.in_flight_units
        healthy_slots = (len(ranked) - len(demoted)) * (
            self.config.max_outstanding_per_site
        )
        if demoted and healthy_slots >= outstanding:
            for site in demoted:
                if target[site] > 0.0:
                    target[site] = 0.0
                    reasons[site] += " (tail: no straggler units)"

        changed = False
        for site, weight in target.items():
            share = ledger.shares.get(site)
            if share is None:
                ledger.add_site(site, weight)
                self._record_event(job, "grow", site, 0.0, weight, "join")
                changed = True
                continue
            if share.retired:
                ledger.revive(site, weight)
                self._record_event(job, "grow", site, 0.0, weight, "rejoin")
                changed = True
                continue
            before = share.weight
            # dead-band: ignore sub-0.1 drift so a slowly-aging EWMA
            # does not emit a shrink event on every housekeeping tick
            if abs(weight - before) < 0.1:
                continue
            ledger.set_weight(site, weight)
            kind = "grow" if weight > before else "shrink"
            self._record_event(job, kind, site, before, weight, reasons[site])
            if kind == "shrink" and reasons[site] != "rank":
                # degradation shrink: pull back units still *queued*
                # there (never started executing, so no work is lost
                # and no attempt is charged) for redispatch elsewhere
                self._reclaim_queued(job, site, reasons[site])
            changed = True
        if changed:
            self.broker._publish("rebalance", job.job_id)
            self.broker.metrics.observe_share_weights(job.placement.weights())

    def _dispatch(
        self,
        job: MalleableJob,
        caps: dict[tuple[str, str], int] | None = None,
    ) -> None:
        """Top up every active site to its allocation (pull model: fast
        sites come back for more units sooner).  ``caps`` are the
        fair-share arbiter's per-(job, site) slot grants; absent an
        entry the full per-site budget applies."""
        placement = job.placement
        ledger = placement.ledger
        now = self.broker.sim.now
        for site_name in ledger.active_sites():
            if job.state is not JobState.PLACED:
                return
            try:
                site = self.broker.registry.site(site_name)
            except Exception:
                continue
            slot_cap = self.config.max_outstanding_per_site
            if caps is not None:
                slot_cap = caps.get((job.job_id, site_name), slot_cap)
            while len(ledger.in_flight_at(site_name)) < slot_cap:
                if (
                    job.max_units is not None
                    and ledger.in_flight_units >= job.max_units
                ):
                    # spec-declared elasticity ceiling: never more than
                    # max_units concurrently in flight across all sites
                    return
                unit = ledger.claim(site_name)
                if unit is None:
                    break
                try:
                    catalog = site.capable_catalog(job.n_qubits)
                    pin = job.pins.get(site_name)
                    if pin is not None:
                        if pin not in catalog:
                            raise ResourceNotFound(
                                f"pinned resource {site_name}/{pin} cannot take "
                                f"a {job.n_qubits}-qubit program"
                            )
                        resource = pin
                    else:
                        resource = select_resource(catalog)
                    task_id = site.submit(
                        job.program.with_shots(job.shots_per_unit),
                        resource,
                        shots=job.shots_per_unit,
                        owner=job.owner,
                    )
                except (SiteUnavailable, ResourceNotFound) as err:
                    ledger.abandon(unit)
                    self._retire_site(job, site_name, str(err))
                    self._fail_if_exhausted(job, unit, str(err))
                    break
                placement.dispatches[unit] = UnitDispatch(
                    unit=unit, site=site_name, task_id=task_id, placed_at=now
                )
                self._task_map[(site_name, task_id)] = (job.job_id, unit)
                if self.broker.tracer is not None:
                    self._trace_dispatch(job, site_name, task_id, unit)
                if self.broker.accounting is not None:
                    self.broker.accounting.reserve_placement(
                        job.owner,
                        site_name,
                        shots=job.shots_per_unit,
                        key=f"{job.job_id}/u{unit}",
                    )

    def _trace_dispatch(
        self, job: MalleableJob, site: str, task_id: str, unit: int
    ) -> None:
        """Record one unit's placement as an instant span and bind the
        site task under it (mirrors the fixed-size broker)."""
        tracer = self.broker.tracer
        now = self.broker.sim.now
        span = tracer.start_job_span(
            job.job_id, "placement", now, site=site, task_id=task_id, unit=unit
        )
        if span is not None:
            tracer.end_span(span, now)
            tracer.bind_task(site, task_id, span, now, unit=unit)

    def _record_event(
        self,
        job: MalleableJob,
        kind: str,
        site: str,
        before: float,
        after: float,
        reason: str,
    ) -> None:
        job.placement.events.append(
            ShareEvent(
                time=self.broker.sim.now,
                kind=kind,
                site=site,
                weight_before=before,
                weight_after=after,
                reason=reason,
            )
        )
        self._resize_events += 1
        self.broker._publish(
            "resize",
            job.job_id,
            site=site,
            action=kind,
            weight_before=before,
            weight_after=after,
            reason=reason,
        )

    # -- terminal-record eviction ----------------------------------------------

    def evict_terminal(self, ttl: float = 0.0) -> int:
        """Drop terminal malleable records older than ``ttl`` seconds,
        spilling each to the accounting archive (see
        :meth:`FederationBroker.evict_terminal
        <repro.federation.broker.FederationBroker.evict_terminal>`)."""
        now = self.broker.sim.now
        evicted = 0
        for state in (JobState.COMPLETED, JobState.FAILED):
            table = self._by_state[state]
            expired = [
                job
                for job in table.values()
                if job.finished_at is not None and now - job.finished_at >= ttl
            ]
            for job in expired:
                del table[job.job_id]
                del self._jobs[job.job_id]
                self._unit_events.pop(job.job_id, None)
                self._spill(job)
                evicted += 1
        self._evicted += evicted
        return evicted

    def _spill(self, job: MalleableJob) -> None:
        if self.broker.accounting is None:
            return
        self.broker.accounting.archive_job(
            {
                "job_id": job.job_id,
                "tenant": job.owner,
                "state": job.state.value,
                "submitted_at": job.submitted_at,
                "finished_at": job.finished_at,
                "units": job.units,
                "completed_units": job.completed_units,
                "completions_by_site": job.placement.ledger.completions_by_site(),
                "shots": job.shots_per_unit * job.units,
                "resize_events": len(job.placement.events),
                "error": job.error,
            }
        )

    # -- queries ---------------------------------------------------------------

    def job(self, job_id: str) -> MalleableJob:
        if job_id not in self._jobs:
            raise PlacementError(
                f"unknown malleable job {job_id!r}", job_id=job_id
            )
        return self._jobs[job_id]

    def jobs(self) -> list[MalleableJob]:
        return list(self._jobs.values())

    def status(self, job_id: str) -> dict[str, Any]:
        job = self.job(job_id)
        ledger = job.placement.ledger
        return {
            "job_id": job.job_id,
            "state": job.state.value,
            "units": job.units,
            "completed_units": ledger.completed_units,
            "in_flight_units": ledger.in_flight_units,
            "shares": job.placement.weights(),
            "completions_by_site": ledger.completions_by_site(),
            "resize_events": len(job.placement.events),
            "min_units": job.min_units,
            "max_units": job.max_units,
            "submitted_at": job.submitted_at,
            "finished_at": job.finished_at,
            "error": job.error,
        }

    def results(self, job_id: str) -> dict[int, Any]:
        job = self.job(job_id)
        if job.state is JobState.FAILED:
            raise PlacementError(
                f"malleable job {job_id} failed: {job.error}", job_id=job_id
            )
        if job.state is not JobState.COMPLETED:
            raise PlacementError(
                f"malleable job {job_id} not finished "
                f"({job.completed_units}/{job.units} units)",
                job_id=job_id,
            )
        return dict(job.results)
