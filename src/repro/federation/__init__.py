"""Multi-site federation: broker hybrid jobs across HPC-QC sites.

The paper's stack serves one site; its §3.3 points outward ("the
system could be extended to also accept jobs via a cloud interface,
similar to ... the JHPC-Quantum project").  This subsystem is that
extension taken to its multi-site conclusion: several independent
sites — each a full cluster + daemon + QRMI resource pool — register
into a federation that routes incoming hybrid jobs by live resource
profiles instead of static assignment.

* :mod:`site`     — :class:`FederatedSite`, the per-site adapter
  (intake via daemon sessions, load/health/calibration introspection),
* :mod:`registry` — :class:`SiteRegistry` membership + heartbeats with
  expiry; produces the :class:`SiteSnapshot` views routing runs on,
* :mod:`policies` — pluggable routing: round-robin, least-queue,
  calibration-aware (drift-weighted by program geometry), sticky
  affinity for iterative workloads,
* :mod:`broker`   — :class:`FederationBroker`: placement, spillover
  when sites saturate, failover with bounded retries and stable job
  ids when sites die,
* :mod:`malleable` — cross-site malleable placements: an iterative
  job's burst units spread over a :class:`~repro.scheduling.ShareLedger`
  and a broker-driven resize loop shrinks/grows each site's share as
  queue depth, latency, or heartbeat health moves,
* :mod:`events`   — :class:`LifecycleBus`: push-based lifecycle —
  sites, the middleware queue, and the broker publish state
  transitions the moment they happen, replacing status polling,
* :mod:`client`   — :class:`FederatedClient`, the DaemonClient-shaped
  front end returning uniform :class:`~repro.runtime.results.RunResult`,
* :mod:`metrics`  — per-site + aggregate federation metrics through
  the existing observability registry/TSDB path.

The accounting plane (per-tenant metering, budgets, fair-share
arbitration) lives in :mod:`repro.accounting`; wire a
:class:`~repro.accounting.FederationAccounting` into the broker to
activate it, and use :class:`CostAwarePolicy` to couple routing to the
remaining budgets.
"""

from .broker import FederatedJob, FederationBroker, JobState, Placement
from .client import FederatedClient
from .events import JobEvent, LifecycleBus
from .malleable import (
    MalleableJob,
    MalleableManager,
    MalleablePlacement,
    ResizeConfig,
    ShareEvent,
    UnitDispatch,
)
from .metrics import FederationMetrics
from .policies import (
    CalibrationAwarePolicy,
    CostAwarePolicy,
    LeastQueuePolicy,
    RoundRobinPolicy,
    RoutingPolicy,
    StickyPolicy,
)
from .registry import SiteHealth, SiteRegistry, SiteSnapshot
from .site import FederatedSite

__all__ = [
    "CalibrationAwarePolicy",
    "CostAwarePolicy",
    "FederatedClient",
    "FederatedJob",
    "FederatedSite",
    "FederationBroker",
    "FederationMetrics",
    "JobEvent",
    "JobState",
    "LeastQueuePolicy",
    "LifecycleBus",
    "MalleableJob",
    "MalleableManager",
    "MalleablePlacement",
    "Placement",
    "ResizeConfig",
    "RoundRobinPolicy",
    "ShareEvent",
    "UnitDispatch",
    "RoutingPolicy",
    "SiteHealth",
    "SiteRegistry",
    "SiteSnapshot",
    "StickyPolicy",
]
