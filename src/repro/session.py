"""Session: the one submission surface over every backend.

A :class:`~repro.spec.JobSpec` describes *what* to run; a
:class:`Session` decides *where* — the local middleware daemon, the
multi-site federation broker, or the cloud gateway — from the spec and
the backends this session was built with, and hands back a uniform
:class:`JobHandle`.  The same spec object submits unchanged through all
three doors:

>>> spec = JobSpec(program=program, shots=200)
>>> session = Session(daemon=daemon, federation=broker)
>>> handle = session.submit(spec)          # backend picked from the spec
>>> result = sim.run_until_process(sim.spawn(handle.wait()))

Backend choice (see :meth:`Session.backend_for`): a spec that declares
federation-shaped placement (``sites``, ``iterations``, a ``pin``, or a
qualified ``site/resource`` target) goes to the federation; a plain
spec goes to the local daemon when one is wired, else the federation,
else the cloud gateway.  ``backend=`` overrides.

With :meth:`Session.attach_events` the session joins the push-based
lifecycle plane: every backend's state transitions land on one
:class:`~repro.federation.events.LifecycleBus`, ``JobHandle.wait()``
wakes on the pushed terminal event instead of polling status, and
``JobHandle.on(...)`` delivers per-job callbacks.

With :meth:`Session.attach_tracer` each submission additionally opens
a root span, the spec carries its
:class:`~repro.observability.tracing.TraceContext` into the backend,
and every stage (admission, placement, queue wait, execution, dispatch,
result fetch) lands as a child span — the whole tree is retrievable by
job id from the returned :class:`~repro.observability.tracing.Tracer`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from .errors import DaemonError, SpecError
from .federation.events import (
    TERMINAL_JOB_KINDS,
    TERMINAL_TASK_KINDS,
    JobEvent,
    LifecycleBus,
    publish_task_transition,
)
from .runtime.backend_select import select_resource, spec_request
from .runtime.results import RunResult
from .simkernel import Event, Timeout
from .spec import JobSpec

__all__ = ["JobHandle", "Session"]


class JobHandle:
    """One submitted job, whatever backend it landed on."""

    def __init__(
        self,
        session: "Session",
        spec: JobSpec,
        job_id: str,
        backend: str,
        token: str = "",
    ) -> None:
        self._session = session
        self.spec = spec
        self.job_id = job_id
        self.backend = backend
        #: daemon-backend REST token — each priority class owns its own
        #: session, so the handle must carry the one that owns its task
        self._token = token

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JobHandle({self.job_id!r}, backend={self.backend!r})"

    # -- queries --------------------------------------------------------------

    def status(self) -> dict[str, Any]:
        """Backend status document; always carries ``state``."""
        return self._session._backend_status(self)

    def done(self) -> bool:
        return self.status()["state"] in ("completed", "failed", "cancelled")

    def result(self) -> RunResult:
        """The uniform result, whichever backend executed the job."""
        return self._session._backend_result(self)

    # -- lifecycle events ------------------------------------------------------

    def _event_filter(self) -> tuple[str, str | None]:
        """(job id, site filter) for bus subscriptions.  Federation jobs
        are tracked by broker-level ``job_*`` events (federation-unique
        ids, no site filter); daemon/cloud tasks by the queue's own task
        transitions — those ids are only unique per daemon, so the
        subscription is pinned to the publishing site label."""
        if self.backend == "federation":
            return self.job_id, None
        return self.job_id, self._session._site_label(self.backend)

    def _terminal_kinds(self) -> tuple[str, ...]:
        if self.backend == "federation":
            return TERMINAL_JOB_KINDS
        return TERMINAL_TASK_KINDS

    def on(self, callback, kinds: tuple[str, ...] | None = None) -> int:
        """Subscribe ``callback(event)`` to this job's lifecycle events
        (requires :meth:`Session.attach_events`); returns the handle for
        ``session.events.unsubscribe``."""
        bus = self._session.events
        if bus is None:
            raise DaemonError(
                "no lifecycle bus: call Session.attach_events() first"
            )
        job_id, site = self._event_filter()
        return bus.subscribe(callback, job_id=job_id, kinds=kinds, site=site)

    def wait(self, poll_interval: float = 5.0):
        """Generator form: yield it from a simulated process; returns
        the :class:`~repro.runtime.results.RunResult`.

        Without a lifecycle bus this polls status every
        ``poll_interval`` simulated seconds.  With one
        (:meth:`Session.attach_events`), it sleeps until the backend
        *pushes* the terminal transition — ``poll_interval`` degrades
        into a liveness heartbeat that keeps the simulation loop fed.
        """
        bus = self._session.events
        while True:
            if self.status()["state"] in ("completed", "failed", "cancelled"):
                break
            if bus is None:
                yield Timeout(poll_interval)
            else:
                yield self._armed_wake(bus, poll_interval)
        return self.result()

    def _armed_wake(self, bus: LifecycleBus, heartbeat: float) -> Event:
        """An event that fires the instant this job's terminal
        transition is published — with a foreground heartbeat fallback
        so the simulator never deadlocks on background-only queues."""
        sim = self._session.sim
        wake = Event(name=f"wait-{self.job_id}")
        entry = sim.schedule(wake, delay=heartbeat)
        handle: list[int] = []

        def fire(event: JobEvent) -> None:
            bus.unsubscribe(handle[0])
            if not wake.triggered:
                sim.events.cancel(entry)
                wake.trigger(event)
                sim.schedule_triggered(wake)

        job_id, site = self._event_filter()
        handle.append(
            # latest-state-only consumer: the wake fires on the job's
            # terminal transition, so superseded same-tick transitions
            # may be coalesced away under batched delivery
            bus.subscribe(
                fire, job_id=job_id, kinds=self._terminal_kinds(), site=site,
                coalesce=True,
            )
        )
        # the heartbeat pop also retires the subscription so abandoned
        # waiters don't accumulate on the bus
        wake.callbacks.append(lambda ev: bus.unsubscribe(handle[0]))
        return wake


class Session:
    """Facade routing :class:`~repro.spec.JobSpec` submissions to the
    right backend.  Wire in any subset of:

    * ``daemon`` — a :class:`~repro.daemon.service.MiddlewareDaemon`
      (the session speaks to it through the standard REST router),
    * ``federation`` — a :class:`~repro.federation.FederationBroker`,
    * ``cloud`` — a :class:`~repro.daemon.cloud.CloudGateway` plus the
      ``cloud_api_key`` identifying this session's tenant.
    """

    def __init__(
        self,
        daemon=None,
        federation=None,
        cloud=None,
        cloud_api_key: str = "",
        user: str = "user",
    ) -> None:
        if daemon is None and federation is None and cloud is None:
            raise DaemonError("session needs at least one backend")
        if cloud is not None and not cloud_api_key:
            raise DaemonError("a cloud backend needs cloud_api_key=")
        self.daemon = daemon
        self.federation = federation
        self.cloud = cloud
        self.cloud_api_key = cloud_api_key
        self.user = user
        self.events: LifecycleBus | None = None
        self.tracer = None
        self._daemon_client = None
        self._fed_client = None
        #: one REST session token per priority class — priority lives on
        #: the daemon session, so specs of different classes cannot
        #: share one (the first submission's class would silently win)
        self._daemon_tokens: dict[str, str] = {}
        #: backend -> site label its queue publishes under (a cloud
        #: gateway sharing the local daemon publishes once, as "local")
        self._site_labels = {"daemon": "local", "cloud": "cloud"}
        if (
            cloud is not None
            and daemon is not None
            and cloud.daemon.queue is daemon.queue
        ):
            self._site_labels["cloud"] = "local"

    def _site_label(self, backend: str) -> str:
        return self._site_labels[backend]

    # -- wiring ---------------------------------------------------------------

    @property
    def sim(self):
        """The shared simulated clock behind whichever backends exist."""
        if self.federation is not None:
            return self.federation.sim
        if self.daemon is not None:
            return self.daemon.sim
        return self.cloud.daemon.sim

    def attach_events(self, bus: LifecycleBus | None = None) -> LifecycleBus:
        """Join the push-based lifecycle plane: one bus carries the
        federation's job events plus the local daemon's and cloud
        gateway's task transitions.  Idempotent; returns the bus."""
        if self.events is not None:
            return self.events
        if self.federation is not None:
            # the broker owns an always-on bus; joining it instead of
            # minting a fresh one keeps every publisher on one plane
            bus = self.federation.attach_events(bus)
        elif bus is None:
            bus = LifecycleBus()
        seen: list = []
        for daemon, backend in (
            (self.daemon, "daemon"),
            (self.cloud.daemon if self.cloud is not None else None, "cloud"),
        ):
            if daemon is None or any(daemon.queue is q for q in seen):
                continue  # one shared daemon must not publish twice
            seen.append(daemon.queue)
            daemon.queue.add_transition_listener(
                self._queue_publisher(daemon, self._site_label(backend), bus)
            )
        self.events = bus
        return bus

    def attach_tracer(self, tracer=None):
        """Join the tracing plane (implies :meth:`attach_events`): wire
        a :class:`~repro.observability.tracing.Tracer` into the bus,
        the federation broker, and every local daemon scheduler, so
        each submission from here on yields a complete span tree.
        Idempotent; returns the tracer."""
        if self.tracer is not None:
            return self.tracer
        from .observability.tracing import Tracer, instrument_scheduler

        tracer = tracer if tracer is not None else Tracer()
        bus = self.attach_events()
        tracer.attach_bus(bus)
        if self.federation is not None:
            self.federation.attach_tracer(tracer)
        seen: list = []
        for daemon, backend in (
            (self.daemon, "daemon"),
            (self.cloud.daemon if self.cloud is not None else None, "cloud"),
        ):
            if daemon is None or any(daemon.queue is q for q in seen):
                continue
            seen.append(daemon.queue)
            instrument_scheduler(
                daemon.scheduler, tracer, self._site_label(backend)
            )
        self.tracer = tracer
        return tracer

    @staticmethod
    def _queue_publisher(daemon, site: str, bus: LifecycleBus):
        def publish(task, old, new) -> None:
            publish_task_transition(bus, daemon.now, site, task, new)

        return publish

    # -- backend choice --------------------------------------------------------

    def backend_for(self, spec: JobSpec) -> str:
        """Which backend a spec routes to: federation-shaped placement
        (``sites``/``iterations``/``pin``/qualified ``site/resource``)
        needs the broker; plain specs prefer the local daemon, then the
        federation, then the cloud gateway."""
        if spec.is_multi or spec.pin is not None:
            if self.federation is None:
                raise SpecError(
                    "spec declares federation placement but this session "
                    "has no federation backend"
                )
            return "federation"
        if (
            spec.resource is not None
            and "/" in spec.resource
            and self.federation is not None
            and self.federation.has_resource(spec.resource)
        ):
            return "federation"
        if self.daemon is not None:
            return "daemon"
        if self.federation is not None:
            return "federation"
        return "cloud"

    # -- submission ------------------------------------------------------------

    def submit(self, spec: JobSpec, backend: str | None = None) -> JobHandle:
        """Submit one spec; returns the uniform :class:`JobHandle`."""
        if not isinstance(spec, JobSpec):
            raise SpecError(
                f"Session.submit takes a JobSpec, got {type(spec).__name__} "
                "(wrap programs with JobSpec(program=...))"
            )
        spec = spec.validate(default_tenant=self.user)
        backend = backend or self.backend_for(spec)
        root = None
        if self.tracer is not None:
            root = self.tracer.start_trace(
                "job", self.sim.now, tenant=spec.tenant, backend=backend
            )
            if backend == "federation":
                # the broker re-binds the job from this propagated
                # context, so its spans join the session's trace
                spec = replace(
                    spec,
                    metadata={
                        **spec.metadata,
                        "trace_context": self.tracer.context(root).to_dict(),
                    },
                )
        token = ""
        if backend == "daemon":
            job_id, token = self._submit_daemon(spec)
        elif backend == "federation":
            job_id = self._fed().submit_spec(spec)
        elif backend == "cloud":
            job_id = self._submit_cloud(spec)
        else:
            raise SpecError(f"unknown backend {backend!r}")
        if root is not None and backend != "federation":
            self.tracer.bind_job(job_id, root)
            if backend == "daemon":
                # the queue task *is* the job: its terminal transition
                # closes the whole trace.  Binding right after submit is
                # race-free — the scheduler runs in a simulated process
                # that cannot have advanced yet.
                self.tracer.bind_task(
                    self._site_label("daemon"), job_id, root,
                    self.sim.now, close_root=True,
                )
        return JobHandle(self, spec, job_id, backend, token=token)

    # -- daemon backend --------------------------------------------------------

    def _client(self):
        if self._daemon_client is None:
            from .daemon.api import build_router
            from .runtime.client import DaemonClient

            self._daemon_client = DaemonClient(build_router(self.daemon))
        return self._daemon_client

    def _fed(self):
        if self._fed_client is None:
            from .federation.client import FederatedClient

            self._fed_client = FederatedClient(self.federation, user=self.user)
        return self._fed_client

    def _daemon_token(self, priority_class: str) -> str:
        """The REST session token for one priority class, opened on
        first use and reopened after idle expiry — each class gets its
        own session so the daemon sees the class every spec declares,
        not the first submission's."""
        token = self._daemon_tokens.get(priority_class)
        if token is not None:
            try:
                self.daemon.resolve_session(token)
                return token
            except Exception:
                pass  # idle-expired: open a fresh one
        client = self._client()
        client.token = ""
        client.open_session(self.user, priority_class=priority_class)
        token = self._daemon_tokens[priority_class] = client.token
        return token

    def _submit_daemon(self, spec: JobSpec) -> tuple[str, str]:
        client = self._client()
        client.token = self._daemon_token(spec.priority_class)
        if spec.resource is None:
            available = {m["name"]: m["type"] for m in client.resources()}
            spec = replace(
                spec,
                resource=select_resource(available, requested=spec_request(spec)),
            )
        # POST /jobs ships the whole spec: tenant, metadata, and the
        # scheduling-algorithm selection land on the daemon task
        return client.submit_spec(spec)["task_id"], client.token

    def _submit_cloud(self, spec: JobSpec) -> str:
        if self.cloud is None:
            raise DaemonError("this session has no cloud backend")
        if spec.resource is None:
            available = {
                m["name"]: m["type"] for m in self.cloud.daemon.list_resources()
            }
            spec = replace(
                spec,
                resource=select_resource(available, requested=spec_request(spec)),
            )
        return self.cloud.submit(self.cloud_api_key, spec)

    # -- handle plumbing -------------------------------------------------------

    def _backend_status(self, handle: JobHandle) -> dict[str, Any]:
        if handle.backend == "daemon":
            client = self._client()
            client.token = handle._token
            return client.status(handle.job_id)
        if handle.backend == "cloud":
            return self.cloud.status(self.cloud_api_key, handle.job_id)
        if handle.spec.is_multi:
            return self.federation.malleable_status(handle.job_id)
        return self.federation.status(handle.job_id)

    def _backend_result(self, handle: JobHandle) -> RunResult:
        spec = handle.spec
        if handle.backend == "daemon":
            return self._daemon_result(handle)
        if handle.backend == "cloud":
            emulation = self.cloud.result(self.cloud_api_key, handle.job_id)
            result = RunResult.from_emulation(
                emulation, f"cloud/{handle.job_id}", spec.program.content_hash()
            )
            result.metadata["cloud_tenant"] = spec.tenant
            return result
        if spec.is_multi:
            return self._fed().malleable_result(handle.job_id)
        return self._fed().result(handle.job_id)

    def _daemon_result(self, handle: JobHandle) -> RunResult:
        client = self._client()
        client.token = handle._token
        body = client.result(handle.job_id)
        status = client.status(handle.job_id)
        wait = 0.0
        if status["started_at"] is not None:
            wait = status["started_at"] - status["enqueued_at"]
        return RunResult(
            counts=dict(body["counts"]),
            shots=body["shots"],
            backend=body["backend"],
            resource=handle.spec.resource or "daemon",
            program_hash=handle.spec.program.content_hash(),
            queue_wait_s=wait,
            execution_s=float(body["metadata"].get("execution_seconds", 0.0)),
            metadata=dict(body["metadata"]),
        )
