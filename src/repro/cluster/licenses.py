"""Cluster-wide license pools.

Slurm licenses are the paper's second proposed mechanism for partial
QPU shares (§3.5): "we could in both cases assign 10 licenses/GRES
units, corresponding to timeshares of the QPU in increments of 10
percentage points."  A license pool is a counted resource not attached
to any node; jobs list ``(name, count)`` requirements and the scheduler
only dispatches a job when all its license counts are available.
"""

from __future__ import annotations

from ..errors import LicenseError

__all__ = ["LicensePool"]


class LicensePool:
    """All license types for a cluster, with per-job tracking."""

    def __init__(self, totals: dict[str, int] | None = None) -> None:
        self._totals: dict[str, int] = {}
        self._held: dict[str, dict[int, int]] = {}
        for name, total in (totals or {}).items():
            self.add_license(name, total)

    def add_license(self, name: str, total: int) -> None:
        if total < 0:
            raise LicenseError(f"license total must be >= 0, got {total}")
        if name in self._totals:
            raise LicenseError(f"license {name!r} already defined")
        self._totals[name] = total
        self._held[name] = {}

    def total(self, name: str) -> int:
        self._check_known(name)
        return self._totals[name]

    def in_use(self, name: str) -> int:
        self._check_known(name)
        return sum(self._held[name].values())

    def available(self, name: str) -> int:
        return self.total(name) - self.in_use(name)

    def names(self) -> list[str]:
        return sorted(self._totals)

    def can_acquire(self, requirements: dict[str, int]) -> bool:
        for name, count in requirements.items():
            if name not in self._totals:
                return False
            if count > self.available(name):
                return False
        return True

    def acquire(self, job_id: int, requirements: dict[str, int]) -> None:
        """Atomically acquire all requirements or raise without side effects."""
        for name, count in requirements.items():
            self._check_known(name)
            if count < 1:
                raise LicenseError(f"license count must be >= 1, got {count}")
            if job_id in self._held[name]:
                raise LicenseError(f"job {job_id} already holds license {name!r}")
        if not self.can_acquire(requirements):
            raise LicenseError(f"insufficient licenses for job {job_id}: {requirements}")
        for name, count in requirements.items():
            self._held[name][job_id] = count

    def release(self, job_id: int) -> dict[str, int]:
        """Release everything the job holds; returns what was released."""
        released: dict[str, int] = {}
        for name, holders in self._held.items():
            if job_id in holders:
                released[name] = holders.pop(job_id)
        return released

    def held_by(self, job_id: int) -> dict[str, int]:
        return {
            name: holders[job_id]
            for name, holders in self._held.items()
            if job_id in holders
        }

    def _check_known(self, name: str) -> None:
        if name not in self._totals:
            raise LicenseError(f"unknown license {name!r}")
