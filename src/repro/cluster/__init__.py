"""Slurm-like batch resource manager (discrete-event).

This package reproduces the slice of Slurm the paper's middleware
interacts with:

* **nodes** with CPUs, memory and per-node GRES (generic resources,
  e.g. ``qpu:1`` or ``qpu_share:10`` timeshare units — paper §3.5),
* **partitions** with priorities and preemption modes (the paper maps
  job classes production/test/development onto partitions, §3.3),
* **licenses** — cluster-wide counted pools, the paper's alternative
  mechanism for fractional QPU shares (§3.5),
* a **scheduler** with priority ordering, aging, EASY backfill and
  partition-priority preemption,
* **SPANK-style plugin hooks** (§3.4: "QRMI already supports ... Slurm
  Spank plugins") used by :mod:`repro.qrmi.slurm_plugin` to inject
  ``--qpu`` resource environment variables into jobs,
* **accounting** records for every job.

The controller (:class:`~repro.cluster.slurmctld.SlurmController`)
drives everything from a :class:`repro.simkernel.Simulator`, so cluster
time is simulated and experiments over hours of queue dynamics run in
milliseconds.
"""

from .gres import GresPool, GresRequest, parse_gres
from .job import Job, JobState, JobSpec
from .jobscript import JobScript, render_jobscript
from .licenses import LicensePool
from .node import Node, NodeState
from .partition import Partition, PreemptMode
from .scheduler import AlgorithmScheduler, PriorityCalculator, Scheduler
from .slurmctld import SlurmController
from .spank import SpankHook, SpankPlugin, SpankRegistry

__all__ = [
    "GresPool",
    "GresRequest",
    "Job",
    "JobScript",
    "render_jobscript",
    "JobSpec",
    "JobState",
    "LicensePool",
    "Node",
    "NodeState",
    "Partition",
    "PreemptMode",
    "PriorityCalculator",
    "AlgorithmScheduler",
    "Scheduler",
    "SlurmController",
    "SpankHook",
    "SpankPlugin",
    "SpankRegistry",
    "parse_gres",
]
