"""Jobs: specification, state machine, and lifecycle bookkeeping.

``JobSpec`` is what a user submits (immutable); ``Job`` is the
controller's mutable record.  The state machine enforces legal
transitions only — an invalid transition raises
:class:`~repro.errors.InvalidJobTransition` rather than silently
corrupting accounting, because scheduler-policy experiments depend on
trustworthy per-state timestamps.

Hybrid jobs carry a ``payload``: a generator factory ``(context) ->
generator`` run as a simulated process when the job starts.  Pure
classical jobs just specify ``duration`` and sleep for it.  The payload
mechanism is how the runtime layer (the paper's contribution) executes
real hybrid programs *inside* the simulated cluster.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Generator
from dataclasses import dataclass, field
from typing import Any

from ..errors import InvalidJobTransition, JobError
from .gres import GresRequest

__all__ = ["Job", "JobSpec", "JobState"]


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMEOUT = "timeout"
    PREEMPTED = "preempted"  # transient; requeued jobs go back to PENDING


# Legal transitions of the job state machine.
_TRANSITIONS: dict[JobState, frozenset[JobState]] = {
    JobState.PENDING: frozenset({JobState.RUNNING, JobState.CANCELLED}),
    JobState.RUNNING: frozenset(
        {
            JobState.COMPLETED,
            JobState.FAILED,
            JobState.CANCELLED,
            JobState.TIMEOUT,
            JobState.PREEMPTED,
        }
    ),
    JobState.PREEMPTED: frozenset({JobState.PENDING, JobState.CANCELLED}),
    JobState.COMPLETED: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
    JobState.TIMEOUT: frozenset(),
}

TERMINAL_STATES = frozenset(
    {JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED, JobState.TIMEOUT}
)


@dataclass(frozen=True)
class JobSpec:
    """User-facing job description (the ``sbatch`` arguments).

    ``duration`` — simulated run time for classical jobs; ignored when a
    ``payload`` generator drives the job.
    ``qpu_seconds`` / ``classical_seconds`` — optional workload-pattern
    metadata consumed by the pattern-aware scheduler (Table 1 hints).
    ``hint`` — the paper's ``--hint=qc-balanced`` style annotation.
    ``qpu_resource`` — the ``--qpu=<resource>`` switch from §3.2.
    """

    name: str
    user: str = "user"
    partition: str = "batch"
    cpus: int = 1
    memory_mb: int = 1_000
    num_nodes: int = 1
    duration: float = 60.0
    time_limit: float | None = None
    gres: tuple[GresRequest, ...] = ()
    licenses: tuple[tuple[str, int], ...] = ()
    priority: int = 0
    hint: str = ""
    qpu_resource: str = ""
    qpu_seconds: float = 0.0
    classical_seconds: float = 0.0
    payload: Callable[[Any], Generator[Any, Any, Any]] | None = None
    env: dict[str, str] = field(default_factory=dict)
    requeue_on_preempt: bool = True

    def __post_init__(self) -> None:
        if self.cpus < 1:
            raise JobError(f"job {self.name!r}: cpus must be >= 1")
        if self.num_nodes < 1:
            raise JobError(f"job {self.name!r}: num_nodes must be >= 1")
        if self.duration < 0:
            raise JobError(f"job {self.name!r}: duration must be >= 0")
        if self.memory_mb < 0:
            raise JobError(f"job {self.name!r}: memory must be >= 0")
        for _, count in self.licenses:
            if count < 1:
                raise JobError(f"job {self.name!r}: license counts must be >= 1")


class Job:
    """The controller's record of a submitted job."""

    def __init__(self, job_id: int, spec: JobSpec, submit_time: float) -> None:
        self.job_id = job_id
        self.spec = spec
        self.state = JobState.PENDING
        self.submit_time = submit_time
        self.start_time: float | None = None
        self.end_time: float | None = None
        self.allocated_nodes: list[str] = []
        self.effective_time_limit: float = spec.time_limit or 0.0
        self.preempt_count = 0
        self.requeue_count = 0
        self.exit_info: str = ""
        self.env: dict[str, str] = dict(spec.env)
        self.result: Any = None

    # -- state machine -----------------------------------------------------

    def transition(self, new_state: JobState, now: float) -> None:
        allowed = _TRANSITIONS[self.state]
        if new_state not in allowed:
            raise InvalidJobTransition(
                f"job {self.job_id}: illegal transition {self.state.value} -> {new_state.value}",
                job_id=self.job_id,
            )
        previous = self.state
        self.state = new_state
        if new_state is JobState.RUNNING:
            self.start_time = now
        elif new_state in TERMINAL_STATES:
            self.end_time = now
        elif new_state is JobState.PREEMPTED:
            self.preempt_count += 1
        elif new_state is JobState.PENDING and previous is JobState.PREEMPTED:
            self.requeue_count += 1
            self.start_time = None

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def is_pending(self) -> bool:
        return self.state is JobState.PENDING

    @property
    def is_running(self) -> bool:
        return self.state is JobState.RUNNING

    def wait_time(self) -> float | None:
        """Queue wait: submit -> (latest) start. None while pending."""
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    def run_time(self, now: float | None = None) -> float | None:
        if self.start_time is None:
            return None
        end = self.end_time if self.end_time is not None else now
        if end is None:
            return None
        return end - self.start_time

    def turnaround(self) -> float | None:
        if self.end_time is None:
            return None
        return self.end_time - self.submit_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Job({self.job_id}, {self.spec.name!r}, {self.state.value})"
