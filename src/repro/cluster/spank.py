"""SPANK-style plugin hooks.

Slurm's SPANK API lets plugins observe and mutate jobs at fixed points
of the lifecycle.  The paper relies on this ("QRMI already supports ...
Slurm Spank plugins", §3.4) to translate the ``--qpu=<resource>``
option into environment variables the runtime reads inside the job.

We reproduce the subset needed: named hooks at submit / start / end /
preempt, each receiving the :class:`~repro.cluster.job.Job` and the
controller, able to veto submission by raising.
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from ..errors import SchedulerError

if TYPE_CHECKING:  # pragma: no cover
    from .job import Job

__all__ = ["SpankHook", "SpankPlugin", "SpankRegistry"]


class SpankHook(enum.Enum):
    """Lifecycle points at which plugins run (subset of real SPANK)."""

    JOB_SUBMIT = "job_submit"   # may validate / mutate / veto
    JOB_START = "job_start"     # environment is set up here
    JOB_END = "job_end"
    JOB_PREEMPT = "job_preempt"


class SpankPlugin:
    """Base plugin: override the hooks you care about.

    Methods receive ``(job, controller)``; raising from ``job_submit``
    vetoes the submission (the controller surfaces the error to the
    submitter).
    """

    name = "spank-plugin"

    def job_submit(self, job: "Job", controller: Any) -> None:  # noqa: B027
        """Called at submission, before queueing."""

    def job_start(self, job: "Job", controller: Any) -> None:  # noqa: B027
        """Called when the job is dispatched, before the payload runs."""

    def job_end(self, job: "Job", controller: Any) -> None:  # noqa: B027
        """Called when the job reaches a terminal state."""

    def job_preempt(self, job: "Job", controller: Any) -> None:  # noqa: B027
        """Called when the job is preempted."""


class SpankRegistry:
    """Ordered plugin chain; also accepts bare callables per hook."""

    def __init__(self) -> None:
        self._plugins: list[SpankPlugin] = []
        self._callables: dict[SpankHook, list[Callable[["Job", Any], None]]] = {
            hook: [] for hook in SpankHook
        }

    def register(self, plugin: SpankPlugin) -> None:
        if any(p.name == plugin.name for p in self._plugins):
            raise SchedulerError(f"SPANK plugin {plugin.name!r} already registered")
        self._plugins.append(plugin)

    def register_callable(self, hook: SpankHook, fn: Callable[["Job", Any], None]) -> None:
        self._callables[hook].append(fn)

    def plugins(self) -> list[SpankPlugin]:
        return list(self._plugins)

    def fire(self, hook: SpankHook, job: "Job", controller: Any) -> None:
        """Run all plugins for ``hook`` in registration order.

        Exceptions propagate (submission veto semantics); callers decide
        how to handle them per hook.
        """
        for plugin in self._plugins:
            getattr(plugin, hook.value)(job, controller)
        for fn in self._callables[hook]:
            fn(job, controller)
