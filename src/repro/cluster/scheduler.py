"""Scheduling algorithms: multifactor priority, placement, EASY backfill,
and partition-tier preemption.

Pure algorithmic layer: these classes read cluster state (nodes, jobs,
licenses) and produce *decisions*; the controller in
:mod:`repro.cluster.slurmctld` applies them.  Keeping the policy pure
makes the Table-1 / ablation experiments easy to run: swap the policy
object, replay the same arrival trace.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from ..scheduling.algorithms import SchedulingAlgorithm, SystemView, cluster_views, get_algorithm
from .job import Job
from .licenses import LicensePool
from .node import Node
from .partition import Partition, PreemptMode

__all__ = [
    "AlgorithmScheduler",
    "PriorityCalculator",
    "Placement",
    "Scheduler",
    "SchedulingDecision",
]


@dataclass(frozen=True)
class Placement:
    """A concrete allocation decision for one job."""

    job_id: int
    node_names: tuple[str, ...]


@dataclass
class SchedulingDecision:
    """Output of one scheduling pass."""

    starts: list[Placement] = field(default_factory=list)
    backfilled: list[int] = field(default_factory=list)  # job ids started via backfill
    preemptions: list[tuple[int, int]] = field(default_factory=list)  # (victim, beneficiary)
    shadow_time: float | None = None  # reservation time for the blocked head job
    head_blocked: int | None = None


class PriorityCalculator:
    """Slurm-like multifactor priority.

    ``priority = tier_weight * partition_tier + prio_weight * job_priority
    + age_weight * min(age, max_age)``; higher is better.  FIFO tiebreak
    by job id (earlier submission wins).
    """

    def __init__(
        self,
        tier_weight: float = 10_000.0,
        prio_weight: float = 100.0,
        age_weight: float = 0.01,
        max_age: float = 86_400.0,
    ) -> None:
        self.tier_weight = tier_weight
        self.prio_weight = prio_weight
        self.age_weight = age_weight
        self.max_age = max_age

    def score(self, job: Job, partition: Partition, now: float) -> float:
        age = min(max(0.0, now - job.submit_time), self.max_age)
        return (
            self.tier_weight * partition.priority_tier
            + self.prio_weight * job.spec.priority
            + self.age_weight * age
        )

    def sort_pending(
        self, jobs: Iterable[Job], partitions: dict[str, Partition], now: float
    ) -> list[Job]:
        """Jobs in scheduling order: score desc, then submit order."""
        return sorted(
            jobs,
            key=lambda j: (-self.score(j, partitions[j.spec.partition], now), j.job_id),
        )


class _VirtualOccupancy:
    """One scheduling pass's virtual ledger: licenses and per-node
    cpu/mem/gres already committed to earlier decisions in the same
    pass, so one plan never double-spends live capacity."""

    def __init__(self, licenses: LicensePool) -> None:
        self.licenses = licenses
        self.taken_licenses: dict[str, int] = {}
        self.taken_nodes: dict[str, tuple[int, int, dict[str, int]]] = {}

    def fits(
        self, job: Job, partition: Partition, exclude: frozenset[str] = frozenset()
    ) -> list[str] | None:
        spec = job.spec
        for lname, lcount in spec.licenses:
            if self.licenses.available(lname) - self.taken_licenses.get(lname, 0) < lcount:
                return None
        chosen: list[str] = []
        for node in partition.schedulable_nodes():
            if node.name in exclude:
                continue
            taken_cpus, taken_mem, taken_gres = self.taken_nodes.get(
                node.name, (0, 0, {})
            )
            if node.cpus_available - taken_cpus < spec.cpus:
                continue
            if node.memory_available - taken_mem < spec.memory_mb:
                continue
            if any(
                g.name not in node.gres
                or node.gres[g.name].available - taken_gres.get(g.name, 0) < g.count
                for g in spec.gres
            ):
                continue
            chosen.append(node.name)
            if len(chosen) == spec.num_nodes:
                return chosen
        return None

    def commit(self, job: Job, node_names: list[str]) -> None:
        for lname, lcount in job.spec.licenses:
            self.taken_licenses[lname] = self.taken_licenses.get(lname, 0) + lcount
        for name in node_names:
            cpus, mem, gres = self.taken_nodes.get(name, (0, 0, {}))
            new_gres = dict(gres)
            for g in job.spec.gres:
                new_gres[g.name] = new_gres.get(g.name, 0) + g.count
            self.taken_nodes[name] = (
                cpus + job.spec.cpus,
                mem + job.spec.memory_mb,
                new_gres,
            )


class Scheduler:
    """Placement + EASY backfill + preemption planning."""

    def __init__(
        self,
        priority: PriorityCalculator | None = None,
        backfill: bool = True,
        preemption: bool = True,
    ) -> None:
        self.priority = priority or PriorityCalculator()
        self.backfill = backfill
        self.preemption = preemption

    # -- placement --------------------------------------------------------

    @staticmethod
    def find_nodes(
        job: Job,
        candidates: Sequence[Node],
        exclude: frozenset[str] = frozenset(),
    ) -> list[Node] | None:
        """First-fit node selection for ``num_nodes`` nodes.

        Each selected node must fit ``cpus``/``memory``/GRES of the job
        (Slurm's per-node semantics for ``--nodes N --cpus-per-task c``).
        Returns None when no placement exists right now.
        """
        spec = job.spec
        chosen: list[Node] = []
        for node in candidates:
            if node.name in exclude:
                continue
            if node.can_fit(spec.cpus, spec.memory_mb, spec.gres):
                chosen.append(node)
                if len(chosen) == spec.num_nodes:
                    return chosen
        return None

    @staticmethod
    def feasible(job: Job, partition: Partition, licenses: LicensePool) -> bool:
        """Could the job *ever* run on an empty partition? Used to fail
        impossible submissions fast instead of queueing them forever."""
        spec = job.spec
        fitting = [
            n
            for n in partition.nodes
            if n.could_ever_fit(spec.cpus, spec.memory_mb, spec.gres)
        ]
        if len(fitting) < spec.num_nodes:
            return False
        for name, count in spec.licenses:
            try:
                if count > licenses.total(name):
                    return False
            except Exception:
                return False
        return True

    def try_start(
        self,
        job: Job,
        partition: Partition,
        licenses: LicensePool,
        exclude: frozenset[str] = frozenset(),
    ) -> list[Node] | None:
        """Nodes for the job if it can start now (licenses included)."""
        if not licenses.can_acquire(dict(job.spec.licenses)):
            return None
        return self.find_nodes(job, partition.schedulable_nodes(), exclude)

    # -- shadow-time computation (EASY backfill) ---------------------------

    def shadow_reservation(
        self,
        head: Job,
        partition: Partition,
        running: Sequence[Job],
        licenses: LicensePool,
        now: float,
    ) -> tuple[float, frozenset[str]]:
        """Earliest time the blocked head job could start, and the nodes
        it would then occupy.

        We replay expected completions (start + effective time limit) in
        order on a virtual copy of node occupancy; the first instant the
        head fits is the shadow time.  Licenses are replayed the same way.
        """
        spec = head.spec
        # Virtual free capacity per node.
        free_cpus = {n.name: n.cpus_available for n in partition.nodes if n.is_schedulable()}
        free_mem = {n.name: n.memory_available for n in partition.nodes if n.is_schedulable()}
        free_gres = {
            n.name: {g: p.available for g, p in n.gres.items()}
            for n in partition.nodes
            if n.is_schedulable()
        }
        lic_free = {name: licenses.available(name) for name in licenses.names()}
        node_by_name = {n.name: n for n in partition.nodes}

        def head_fits() -> frozenset[str] | None:
            chosen: list[str] = []
            for name in free_cpus:
                node = node_by_name[name]
                if free_cpus[name] < spec.cpus or free_mem[name] < spec.memory_mb:
                    continue
                if any(
                    g.name not in node.gres or free_gres[name].get(g.name, 0) < g.count
                    for g in spec.gres
                ):
                    continue
                chosen.append(name)
                if len(chosen) == spec.num_nodes:
                    break
            if len(chosen) < spec.num_nodes:
                return None
            for lname, lcount in spec.licenses:
                if lic_free.get(lname, 0) < lcount:
                    return None
            return frozenset(chosen)

        nodes_now = head_fits()
        if nodes_now is not None:
            return now, nodes_now

        events = sorted(
            (
                (job.start_time or now) + job.effective_time_limit,
                job.job_id,
                job,
            )
            for job in running
        )
        for end_time, _, job in events:
            for node_name in job.allocated_nodes:
                if node_name in free_cpus:
                    free_cpus[node_name] += job.spec.cpus
                    free_mem[node_name] += job.spec.memory_mb
                    for g in job.spec.gres:
                        free_gres[node_name][g.name] = (
                            free_gres[node_name].get(g.name, 0) + g.count
                        )
            for lname, lcount in job.spec.licenses:
                if lname in lic_free:
                    lic_free[lname] += lcount
            nodes_then = head_fits()
            if nodes_then is not None:
                return max(now, end_time), nodes_then
        # Infeasible even when everything drains — report "infinite" shadow.
        return float("inf"), frozenset()

    # -- preemption planning ------------------------------------------------

    def plan_preemption(
        self,
        head: Job,
        partition: Partition,
        partitions: dict[str, Partition],
        running: Sequence[Job],
        licenses: LicensePool,
    ) -> list[Job] | None:
        """Pick victims so that ``head`` could start after their removal.

        Victims must be in strictly lower-tier partitions with a
        preemption mode other than OFF.  Preference: lowest tier first,
        then most recently started (minimizing lost work).  Returns the
        victim list, or None if no sufficient victim set exists.
        """
        head_tier = partition.priority_tier
        candidates = [
            job
            for job in running
            if partitions[job.spec.partition].priority_tier < head_tier
            and partitions[job.spec.partition].preempt_mode is not PreemptMode.OFF
            # Victim must share at least one node with the head's partition
            and any(n in {pn.name for pn in partition.nodes} for n in job.allocated_nodes)
        ]
        if not candidates:
            return None
        candidates.sort(
            key=lambda j: (
                partitions[j.spec.partition].priority_tier,
                -(j.start_time or 0.0),
            )
        )
        # Greedily add victims until the head fits on the freed capacity.
        spec = head.spec
        free_cpus = {n.name: n.cpus_available for n in partition.nodes if n.is_schedulable()}
        free_mem = {n.name: n.memory_available for n in partition.nodes if n.is_schedulable()}
        free_gres = {
            n.name: {g: p.available for g, p in n.gres.items()}
            for n in partition.nodes
            if n.is_schedulable()
        }
        lic_free = {name: licenses.available(name) for name in licenses.names()}
        node_by_name = {n.name: n for n in partition.nodes}

        def fits() -> bool:
            count = 0
            for name in free_cpus:
                node = node_by_name[name]
                if free_cpus[name] < spec.cpus or free_mem[name] < spec.memory_mb:
                    continue
                if any(
                    g.name not in node.gres or free_gres[name].get(g.name, 0) < g.count
                    for g in spec.gres
                ):
                    continue
                count += 1
                if count >= spec.num_nodes:
                    break
            if count < spec.num_nodes:
                return False
            return all(lic_free.get(ln, 0) >= lc for ln, lc in spec.licenses)

        victims: list[Job] = []
        for victim in candidates:
            if fits():
                break
            victims.append(victim)
            for node_name in victim.allocated_nodes:
                if node_name in free_cpus:
                    free_cpus[node_name] += victim.spec.cpus
                    free_mem[node_name] += victim.spec.memory_mb
                    for g in victim.spec.gres:
                        free_gres[node_name][g.name] = (
                            free_gres[node_name].get(g.name, 0) + g.count
                        )
            for lname, lcount in victim.spec.licenses:
                if lname in lic_free:
                    lic_free[lname] += lcount
        return victims if fits() else None

    # -- the full pass ------------------------------------------------------

    def plan(
        self,
        pending: Sequence[Job],
        running: Sequence[Job],
        partitions: dict[str, Partition],
        licenses: LicensePool,
        now: float,
    ) -> SchedulingDecision:
        """One scheduling pass: priority order + EASY backfill.

        Does NOT mutate cluster state; the controller applies the
        decision (and re-invokes planning after preemption completes,
        since victims release resources asynchronously).
        """
        decision = SchedulingDecision()
        ordered = self.priority.sort_pending(pending, partitions, now)
        virtual = _VirtualOccupancy(licenses)
        virtually_fits = virtual.fits
        commit_virtual = virtual.commit

        blocked_head: Job | None = None
        shadow_time: float | None = None
        reserved_nodes: frozenset[str] = frozenset()

        for job in ordered:
            partition = partitions[job.spec.partition]
            if blocked_head is None:
                nodes = virtually_fits(job, partition, frozenset())
                if nodes is not None:
                    decision.starts.append(Placement(job.job_id, tuple(nodes)))
                    commit_virtual(job, nodes)
                    continue
                # This is the head job: reserve for it.
                blocked_head = job
                decision.head_blocked = job.job_id
                if not self.backfill:
                    break
                shadow_time, reserved_nodes = self.shadow_reservation(
                    job, partition, running, licenses, now
                )
                decision.shadow_time = shadow_time
                continue
            if not self.backfill:
                continue
            # Backfill candidates: start only if they cannot delay the head.
            same_partition = partition.name == blocked_head.spec.partition
            exclude = reserved_nodes if same_partition else frozenset()
            nodes = virtually_fits(job, partition, exclude)
            if nodes is not None:
                decision.starts.append(Placement(job.job_id, tuple(nodes)))
                decision.backfilled.append(job.job_id)
                commit_virtual(job, nodes)
                continue
            if same_partition and shadow_time is not None:
                limit = job.effective_time_limit
                if now + limit <= shadow_time:
                    nodes = virtually_fits(job, partition, frozenset())
                    if nodes is not None:
                        decision.starts.append(Placement(job.job_id, tuple(nodes)))
                        decision.backfilled.append(job.job_id)
                        commit_virtual(job, nodes)
        return decision


class AlgorithmScheduler(Scheduler):
    """A :class:`Scheduler` whose planning pass is a pluggable
    :class:`~repro.scheduling.algorithms.base.SchedulingAlgorithm`.

    The default algorithm (``"cluster-legacy"``) delegates to a plain
    :class:`Scheduler`'s :meth:`~Scheduler.plan` and carries the exact
    placements back through decision payloads, so the controller's
    decisions are bit-identical to the pre-refactor path.  Generic
    algorithms (e.g. ``"easy-backfill"``) see node-granular views and
    their start decisions are materialized onto concrete nodes here;
    that view is exact for whole-node workloads and conservative for
    heterogeneous per-cpu packing.  Preemption planning stays native
    (inherited) — it is not part of the ``schedule`` vocabulary.
    """

    def __init__(
        self,
        algorithm: SchedulingAlgorithm | str | None = None,
        priority: PriorityCalculator | None = None,
        backfill: bool = True,
        preemption: bool = True,
    ) -> None:
        super().__init__(priority=priority, backfill=backfill, preemption=preemption)
        #: the delegate engine handed to the legacy adapter through
        #: ``system.native`` — a plain Scheduler sharing our config
        self.engine = Scheduler(
            priority=self.priority, backfill=backfill, preemption=preemption
        )
        self.algorithm = self._resolve(algorithm)

    @staticmethod
    def _resolve(
        algorithm: SchedulingAlgorithm | str | None,
    ) -> SchedulingAlgorithm:
        if algorithm is None:
            return get_algorithm("cluster-legacy")
        if isinstance(algorithm, str):
            return get_algorithm(algorithm)
        return algorithm

    def use_algorithm(self, algorithm: SchedulingAlgorithm | str) -> None:
        self.algorithm = self._resolve(algorithm)

    def plan(
        self,
        pending: Sequence[Job],
        running: Sequence[Job],
        partitions: dict[str, Partition],
        licenses: LicensePool,
        now: float,
    ) -> SchedulingDecision:
        ordered = self.priority.sort_pending(pending, partitions, now)
        views_pending, resources, _ = cluster_views(ordered, running, partitions, now)
        system = SystemView(
            now=now,
            native={
                "engine": self.engine,
                "pending": pending,
                "running": running,
                "partitions": partitions,
                "licenses": licenses,
            },
        )
        raw = self.algorithm.schedule(views_pending, resources, system)
        decision = SchedulingDecision()
        by_id = {job.job_id: job for job in pending}
        virtual = _VirtualOccupancy(licenses)
        for item in raw:
            if item.kind in ("start", "backfill"):
                placement = item.payload.get("placement")
                if placement is None:
                    # generic decision: materialize partition-level units
                    # onto concrete nodes, first-fit on virtual occupancy
                    job = by_id.get(int(item.job_id))
                    if job is None:
                        continue
                    partition = partitions.get(item.resource or job.spec.partition)
                    if partition is None:
                        continue
                    nodes = virtual.fits(job, partition)
                    if nodes is None:
                        continue
                    virtual.commit(job, nodes)
                    placement = Placement(job.job_id, tuple(nodes))
                decision.starts.append(placement)
                if item.kind == "backfill":
                    decision.backfilled.append(placement.job_id)
            elif item.kind == "reserve":
                decision.head_blocked = int(item.job_id)
                shadow = item.payload.get("shadow_time")
                decision.shadow_time = shadow
        return decision
