"""Partitions — named groups of nodes with scheduling policy.

The paper's priority classes map onto partitions (§3.3): "The different
job priorities also correspond to Slurm partitions, which should be
assigned different priorities."  We model:

* ``priority_tier`` — higher tier schedules first and may preempt lower
  tiers (when ``preempt_mode`` allows),
* ``preempt_mode`` — OFF / REQUEUE / CANCEL, the Slurm subset the
  experiments need,
* per-partition default and maximum time limits.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable

from ..errors import PartitionError
from .node import Node

__all__ = ["Partition", "PreemptMode"]


class PreemptMode(enum.Enum):
    OFF = "off"            # never preempt jobs in this partition
    REQUEUE = "requeue"    # preempted jobs go back to PENDING
    CANCEL = "cancel"      # preempted jobs are cancelled


class Partition:
    """A named set of nodes plus scheduling policy knobs."""

    def __init__(
        self,
        name: str,
        nodes: Iterable[Node],
        priority_tier: int = 0,
        preempt_mode: PreemptMode = PreemptMode.OFF,
        default_time_limit: float = 3600.0,
        max_time_limit: float = 86_400.0,
    ) -> None:
        self.name = name
        self.nodes = list(nodes)
        if not self.nodes:
            raise PartitionError(f"partition {name!r} must contain at least one node")
        if default_time_limit <= 0 or max_time_limit <= 0:
            raise PartitionError(f"partition {name!r}: time limits must be positive")
        if default_time_limit > max_time_limit:
            raise PartitionError(
                f"partition {name!r}: default limit exceeds max limit"
            )
        self.priority_tier = priority_tier
        self.preempt_mode = preempt_mode
        self.default_time_limit = default_time_limit
        self.max_time_limit = max_time_limit

    def node_names(self) -> list[str]:
        return [node.name for node in self.nodes]

    def schedulable_nodes(self) -> list[Node]:
        return [node for node in self.nodes if node.is_schedulable()]

    def total_cpus(self) -> int:
        return sum(node.schedulable_cpus for node in self.nodes)

    def clamp_time_limit(self, requested: float | None) -> float:
        """Apply partition default/max to a job's requested time limit."""
        if requested is None:
            return self.default_time_limit
        if requested <= 0:
            raise PartitionError(f"time limit must be positive, got {requested}")
        return min(requested, self.max_time_limit)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Partition({self.name!r}, {len(self.nodes)} nodes, "
            f"tier={self.priority_tier}, preempt={self.preempt_mode.value})"
        )
