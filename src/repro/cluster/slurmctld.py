"""The cluster controller (slurmctld analogue).

Event-driven facade over the scheduling algorithms: owns nodes,
partitions, the license pool, the pending queue and running set, and
drives job lifecycles as simulated processes.  Public methods mirror the
Slurm user tools:

* :meth:`submit` / :meth:`submit_script`  — ``sbatch``
* :meth:`cancel`                          — ``scancel``
* :meth:`squeue` / :meth:`sinfo`          — introspection
* :attr:`accounting`                      — ``sacct``

The controller fires SPANK hooks at submit/start/end/preempt, which is
where the QRMI Slurm plugin (``repro.qrmi.slurm_plugin``) attaches.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable
from dataclasses import dataclass
from typing import Any

from ..errors import (
    JobError,
    PartitionError,
    ResourceUnavailable,
)
from ..simkernel import Interrupt, Simulator, Timeout, TraceRecorder
from .accounting import AccountingDB
from .job import Job, JobSpec, JobState
from .jobscript import JobScript
from .licenses import LicensePool
from .node import Node
from .partition import Partition, PreemptMode
from .scheduler import AlgorithmScheduler, Scheduler
from .spank import SpankHook, SpankRegistry

__all__ = ["JobContext", "SlurmController"]


@dataclass
class JobContext:
    """Execution context handed to a hybrid job's payload generator."""

    sim: Simulator
    job: Job
    controller: "SlurmController"

    @property
    def env(self) -> dict[str, str]:
        return self.job.env

    @property
    def now(self) -> float:
        return self.sim.now


class SlurmController:
    """Discrete-event Slurm-like controller."""

    def __init__(
        self,
        sim: Simulator,
        nodes: Iterable[Node],
        partitions: Iterable[Partition],
        licenses: LicensePool | None = None,
        scheduler: Scheduler | None = None,
        trace: TraceRecorder | None = None,
    ) -> None:
        self.sim = sim
        self.nodes = {node.name: node for node in nodes}
        self.partitions = {p.name: p for p in partitions}
        if not self.partitions:
            raise PartitionError("controller needs at least one partition")
        for partition in self.partitions.values():
            for node in partition.nodes:
                if node.name not in self.nodes:
                    raise PartitionError(
                        f"partition {partition.name!r} references unknown node {node.name!r}"
                    )
        self.licenses = licenses or LicensePool()
        self.scheduler = scheduler or AlgorithmScheduler()
        self.trace = trace if trace is not None else TraceRecorder()
        self.spank = SpankRegistry()
        self.accounting = AccountingDB()
        self.jobs: dict[int, Job] = {}
        self._pending: list[Job] = []
        self._running: dict[int, Job] = {}
        self._job_ids = itertools.count(1)
        self._job_processes: dict[int, Any] = {}
        self._watchdogs: dict[int, Any] = {}
        self._schedule_armed = False

    # -- submission --------------------------------------------------------

    def submit(self, spec: JobSpec) -> int:
        """Submit a job; returns its id.  Raises if the spec can never run."""
        if spec.partition not in self.partitions:
            raise PartitionError(f"unknown partition {spec.partition!r}")
        partition = self.partitions[spec.partition]
        job = Job(next(self._job_ids), spec, submit_time=self.sim.now)
        job.effective_time_limit = partition.clamp_time_limit(spec.time_limit)
        if not Scheduler.feasible(job, partition, self.licenses):
            raise ResourceUnavailable(
                f"job {spec.name!r} can never be satisfied by partition {spec.partition!r}"
            )
        # SPANK submit hooks may veto (raise) or mutate job.env.
        self.spank.fire(SpankHook.JOB_SUBMIT, job, self)
        self.jobs[job.job_id] = job
        self._pending.append(job)
        self.trace.emit(
            self.sim.now,
            "slurm",
            "job_submit",
            job_id=job.job_id,
            name=spec.name,
            user=spec.user,
            partition=spec.partition,
        )
        self._arm_schedule()
        return job.job_id

    def submit_script(self, text: str, user: str = "user", duration: float | None = None) -> int:
        """``sbatch``-style submission from a batch script."""
        return self.submit(JobScript(text).to_spec(user=user, duration=duration))

    def cancel(self, job_id: int) -> None:
        job = self._get_job(job_id)
        if job.is_terminal:
            return
        if job.is_pending or job.state is JobState.PREEMPTED:
            if job in self._pending:
                self._pending.remove(job)
            job.transition(JobState.CANCELLED, self.sim.now)
            self._finalize(job)
        elif job.is_running:
            process = self._job_processes.get(job_id)
            if process is not None and process.alive:
                process.interrupt(cause=("cancelled",))
        self.trace.emit(self.sim.now, "slurm", "job_cancel", job_id=job_id)

    # -- queries -------------------------------------------------------------

    def squeue(self) -> list[dict[str, Any]]:
        rows = []
        for job in sorted(self.jobs.values(), key=lambda j: j.job_id):
            if job.is_terminal:
                continue
            rows.append(
                {
                    "job_id": job.job_id,
                    "name": job.spec.name,
                    "user": job.spec.user,
                    "partition": job.spec.partition,
                    "state": job.state.value,
                    "nodes": list(job.allocated_nodes),
                    "submit_time": job.submit_time,
                }
            )
        return rows

    def sinfo(self) -> list[dict[str, Any]]:
        rows = []
        for partition in self.partitions.values():
            for node in partition.nodes:
                rows.append(
                    {
                        "partition": partition.name,
                        "node": node.name,
                        "state": node.state.value,
                        "cpus": f"{node.cpus_allocated}/{node.schedulable_cpus}",
                        "gres": {g: f"{p.allocated}/{p.total}" for g, p in node.gres.items()},
                    }
                )
        return rows

    def pending_jobs(self) -> list[Job]:
        return list(self._pending)

    def running_jobs(self) -> list[Job]:
        return list(self._running.values())

    def _get_job(self, job_id: int) -> Job:
        if job_id not in self.jobs:
            raise JobError(f"unknown job {job_id}", job_id=job_id)
        return self.jobs[job_id]

    # -- scheduling loop -------------------------------------------------

    def _arm_schedule(self) -> None:
        """Coalesce multiple triggers into one pass at the current time."""
        if self._schedule_armed:
            return
        self._schedule_armed = True
        self.sim.call_in(0.0, self._run_schedule_pass, name="sched-pass")

    def _run_schedule_pass(self) -> None:
        self._schedule_armed = False
        decision = self.scheduler.plan(
            self._pending,
            list(self._running.values()),
            self.partitions,
            self.licenses,
            self.sim.now,
        )
        started_ids = set()
        for placement in decision.starts:
            job = self.jobs[placement.job_id]
            self._start_job(job, list(placement.node_names))
            started_ids.add(job.job_id)
            if placement.job_id in decision.backfilled:
                self.trace.emit(
                    self.sim.now, "slurm", "job_backfilled", job_id=job.job_id
                )
        # Preemption: if the head is still blocked, try to free capacity.
        if (
            self.scheduler.preemption
            and decision.head_blocked is not None
            and decision.head_blocked not in started_ids
        ):
            head = self.jobs[decision.head_blocked]
            if head.is_pending:
                partition = self.partitions[head.spec.partition]
                victims = self.scheduler.plan_preemption(
                    head,
                    partition,
                    self.partitions,
                    list(self._running.values()),
                    self.licenses,
                )
                if victims:
                    for victim in victims:
                        self._preempt_job(victim, beneficiary=head.job_id)
                    # Resources release asynchronously; a new pass is armed
                    # by each victim's teardown.

    def _start_job(self, job: Job, node_names: list[str]) -> None:
        spec = job.spec
        nodes = [self.nodes[name] for name in node_names]
        for node in nodes:
            node.allocate(job.job_id, spec.cpus, spec.memory_mb, spec.gres)
        self.licenses.acquire(job.job_id, dict(spec.licenses))
        job.allocated_nodes = node_names
        self._pending.remove(job)
        job.transition(JobState.RUNNING, self.sim.now)
        self._running[job.job_id] = job
        self.spank.fire(SpankHook.JOB_START, job, self)
        self.trace.emit(
            self.sim.now,
            "slurm",
            "job_start",
            job_id=job.job_id,
            nodes=tuple(node_names),
            partition=spec.partition,
        )
        process = self.sim.spawn(self._job_runner(job), name=f"job-{job.job_id}")
        self._job_processes[job.job_id] = process
        # Wall-clock limit watchdog.
        limit = job.effective_time_limit
        entry = self.sim.call_in(
            limit, lambda: self._fire_watchdog(job.job_id), name=f"watchdog-{job.job_id}"
        )
        self._watchdogs[job.job_id] = entry

    def _fire_watchdog(self, job_id: int) -> None:
        job = self.jobs.get(job_id)
        if job is None or not job.is_running:
            return
        process = self._job_processes.get(job_id)
        if process is not None and process.alive:
            process.interrupt(cause=("timeout",))

    def _job_runner(self, job: Job):
        """The simulated process executing one job."""
        outcome = JobState.COMPLETED
        try:
            if job.spec.payload is not None:
                context = JobContext(sim=self.sim, job=job, controller=self)
                job.result = yield from job.spec.payload(context)
            else:
                yield Timeout(job.spec.duration)
        except Interrupt as intr:
            cause = intr.cause if isinstance(intr.cause, tuple) else (intr.cause,)
            kind = cause[0] if cause else None
            if kind == "timeout":
                outcome = JobState.TIMEOUT
                job.exit_info = "wall-clock limit exceeded"
            elif kind == "cancelled":
                outcome = JobState.CANCELLED
            elif kind == "preempted":
                self._teardown_preempted(job)
                return
            else:
                outcome = JobState.FAILED
                job.exit_info = f"interrupted: {intr.cause!r}"
        except Exception as err:  # payload bug or deliberate failure
            outcome = JobState.FAILED
            job.exit_info = f"{type(err).__name__}: {err}"
        job.transition(outcome, self.sim.now)
        self._release_resources(job)
        self._finalize(job)

    def _preempt_job(self, victim: Job, beneficiary: int) -> None:
        partition = self.partitions[victim.spec.partition]
        self.trace.emit(
            self.sim.now,
            "slurm",
            "job_preempt",
            job_id=victim.job_id,
            beneficiary=beneficiary,
            mode=partition.preempt_mode.value,
        )
        self.spank.fire(SpankHook.JOB_PREEMPT, victim, self)
        process = self._job_processes.get(victim.job_id)
        if process is not None and process.alive:
            process.interrupt(cause=("preempted", beneficiary))

    def _teardown_preempted(self, job: Job) -> None:
        """Finish preemption bookkeeping inside the victim's runner frame."""
        partition = self.partitions[job.spec.partition]
        job.transition(JobState.PREEMPTED, self.sim.now)
        self._release_resources(job)
        requeue = (
            partition.preempt_mode is PreemptMode.REQUEUE and job.spec.requeue_on_preempt
        )
        if requeue:
            job.transition(JobState.PENDING, self.sim.now)
            job.allocated_nodes = []
            self._pending.append(job)
            self.trace.emit(self.sim.now, "slurm", "job_requeue", job_id=job.job_id)
        else:
            job.transition(JobState.CANCELLED, self.sim.now)
            job.exit_info = "preempted (cancel mode)"
            self._finalize(job)
        self._arm_schedule()

    def _release_resources(self, job: Job) -> None:
        for node_name in job.allocated_nodes:
            self.nodes[node_name].release(job.job_id)
        self.licenses.release(job.job_id)
        self._running.pop(job.job_id, None)
        self._job_processes.pop(job.job_id, None)
        watchdog = self._watchdogs.pop(job.job_id, None)
        if watchdog is not None:
            self.sim.events.cancel(watchdog)

    def _finalize(self, job: Job) -> None:
        self.spank.fire(SpankHook.JOB_END, job, self)
        self.accounting.record(job)
        self.trace.emit(
            self.sim.now,
            "slurm",
            "job_end",
            job_id=job.job_id,
            state=job.state.value,
            partition=job.spec.partition,
        )
        self._arm_schedule()

    # -- admin ----------------------------------------------------------------

    def drain_node(self, name: str) -> None:
        self.nodes[name].set_drain()
        self.trace.emit(self.sim.now, "slurm", "node_drain", node=name)

    def resume_node(self, name: str) -> None:
        self.nodes[name].resume()
        self.trace.emit(self.sim.now, "slurm", "node_resume", node=name)
        self._arm_schedule()
