"""Compute nodes.

A node owns CPUs, memory and GRES pools.  Allocation is tracked per job
id with strict conservation: the scheduler can never oversubscribe a
node without raising, which is one of the property-tested invariants
(see ``tests/cluster/test_properties.py``).

Special node kinds used by the paper's architecture (Figure 2):

* classical compute nodes (the default),
* the **quantum access node** — hosts the QPU connection and the
  middleware daemon on *reserved resources* (§3.4); modeled as a node
  with ``reserved_cpus`` carved out from schedulable capacity.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable

from ..errors import GresError, ResourceUnavailable, SchedulerError
from .gres import GresPool, GresRequest

__all__ = ["Node", "NodeState"]


class NodeState(enum.Enum):
    """Slurm-like node states."""

    IDLE = "idle"
    ALLOCATED = "allocated"  # fully busy
    MIXED = "mixed"          # partially busy
    DOWN = "down"
    DRAIN = "drain"          # finishes current work, accepts nothing new


class Node:
    """One compute node with CPUs, memory (MB) and GRES pools."""

    def __init__(
        self,
        name: str,
        cpus: int = 32,
        memory_mb: int = 128_000,
        gres: dict[str, int] | None = None,
        reserved_cpus: int = 0,
        features: Iterable[str] = (),
    ) -> None:
        if cpus < 1:
            raise SchedulerError(f"node {name!r} must have >= 1 CPU")
        if not (0 <= reserved_cpus < cpus):
            raise SchedulerError(
                f"node {name!r}: reserved_cpus={reserved_cpus} must be in [0, cpus)"
            )
        self.name = name
        self.cpus = cpus
        self.memory_mb = memory_mb
        self.reserved_cpus = reserved_cpus
        self.features = frozenset(features)
        self.state = NodeState.IDLE
        self.gres: dict[str, GresPool] = {
            gname: GresPool(gname, total) for gname, total in (gres or {}).items()
        }
        self._cpu_alloc: dict[int, int] = {}
        self._mem_alloc: dict[int, int] = {}

    # -- capacity queries --------------------------------------------------

    @property
    def schedulable_cpus(self) -> int:
        """CPUs usable by the batch scheduler (total minus daemon reservation)."""
        return self.cpus - self.reserved_cpus

    @property
    def cpus_allocated(self) -> int:
        return sum(self._cpu_alloc.values())

    @property
    def cpus_available(self) -> int:
        return self.schedulable_cpus - self.cpus_allocated

    @property
    def memory_available(self) -> int:
        return self.memory_mb - sum(self._mem_alloc.values())

    def is_schedulable(self) -> bool:
        return self.state not in (NodeState.DOWN, NodeState.DRAIN)

    def can_fit(self, cpus: int, memory_mb: int, gres: Iterable[GresRequest] = ()) -> bool:
        """Could this node host an allocation of the given size right now?"""
        if not self.is_schedulable():
            return False
        if cpus > self.cpus_available or memory_mb > self.memory_available:
            return False
        for request in gres:
            pool = self.gres.get(request.name)
            if pool is None or not pool.can_allocate(request.count):
                return False
        return True

    def could_ever_fit(self, cpus: int, memory_mb: int, gres: Iterable[GresRequest] = ()) -> bool:
        """Could this node host the allocation if it were empty? (feasibility)"""
        if cpus > self.schedulable_cpus or memory_mb > self.memory_mb:
            return False
        for request in gres:
            pool = self.gres.get(request.name)
            if pool is None or request.count > pool.total:
                return False
        return True

    # -- allocation ----------------------------------------------------------

    def allocate(self, job_id: int, cpus: int, memory_mb: int, gres: Iterable[GresRequest] = ()) -> None:
        gres = list(gres)
        if not self.can_fit(cpus, memory_mb, gres):
            raise ResourceUnavailable(
                f"node {self.name!r} cannot fit job {job_id}: "
                f"cpus {cpus}/{self.cpus_available}, mem {memory_mb}/{self.memory_available}"
            )
        if job_id in self._cpu_alloc:
            raise SchedulerError(f"job {job_id} already allocated on node {self.name!r}")
        self._cpu_alloc[job_id] = cpus
        self._mem_alloc[job_id] = memory_mb
        granted: list[str] = []
        try:
            for request in gres:
                self.gres[request.name].allocate(job_id, request.count)
                granted.append(request.name)
        except GresError:
            # roll back partial grants to keep conservation
            for gname in granted:
                self.gres[gname].release(job_id)
            del self._cpu_alloc[job_id]
            del self._mem_alloc[job_id]
            raise
        self._update_state()

    def release(self, job_id: int) -> None:
        if job_id not in self._cpu_alloc:
            raise SchedulerError(f"job {job_id} not allocated on node {self.name!r}")
        del self._cpu_alloc[job_id]
        del self._mem_alloc[job_id]
        for pool in self.gres.values():
            if pool.holder_count(job_id):
                pool.release(job_id)
        self._update_state()

    def jobs(self) -> list[int]:
        return list(self._cpu_alloc)

    def _update_state(self) -> None:
        if self.state in (NodeState.DOWN, NodeState.DRAIN):
            return
        if not self._cpu_alloc:
            self.state = NodeState.IDLE
        elif self.cpus_available == 0:
            self.state = NodeState.ALLOCATED
        else:
            self.state = NodeState.MIXED

    # -- admin -----------------------------------------------------------

    def set_down(self) -> None:
        self.state = NodeState.DOWN

    def set_drain(self) -> None:
        self.state = NodeState.DRAIN

    def resume(self) -> None:
        if self.state in (NodeState.DOWN, NodeState.DRAIN):
            self.state = NodeState.IDLE
            self._update_state()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Node({self.name!r}, {self.cpus_allocated}/{self.schedulable_cpus} cpus, "
            f"state={self.state.value})"
        )
