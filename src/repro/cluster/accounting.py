"""Accounting database (sacct-like).

Records one immutable :class:`JobRecord` per terminal job, plus
aggregate queries used by the benchmark harness: per-user/partition
CPU-seconds, wait-time distributions, utilization over a horizon.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SchedulerError
from .job import Job, JobState

__all__ = ["AccountingDB", "JobRecord"]


@dataclass(frozen=True)
class JobRecord:
    """Immutable accounting row written when a job terminates."""

    job_id: int
    name: str
    user: str
    partition: str
    state: str
    submit_time: float
    start_time: float | None
    end_time: float | None
    cpus: int
    num_nodes: int
    preempt_count: int
    requeue_count: int
    exit_info: str

    @property
    def wait_time(self) -> float | None:
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def run_time(self) -> float | None:
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    @property
    def cpu_seconds(self) -> float:
        run = self.run_time
        if run is None:
            return 0.0
        return run * self.cpus * self.num_nodes


class AccountingDB:
    """Append-only store of job records with aggregate queries."""

    def __init__(self) -> None:
        self._records: list[JobRecord] = []

    def record(self, job: Job) -> JobRecord:
        if not job.is_terminal:
            raise SchedulerError(
                f"cannot account non-terminal job {job.job_id} ({job.state.value})"
            )
        rec = JobRecord(
            job_id=job.job_id,
            name=job.spec.name,
            user=job.spec.user,
            partition=job.spec.partition,
            state=job.state.value,
            submit_time=job.submit_time,
            start_time=job.start_time,
            end_time=job.end_time,
            cpus=job.spec.cpus,
            num_nodes=job.spec.num_nodes,
            preempt_count=job.preempt_count,
            requeue_count=job.requeue_count,
            exit_info=job.exit_info,
        )
        self._records.append(rec)
        return rec

    def __len__(self) -> int:
        return len(self._records)

    def all(self) -> list[JobRecord]:
        return list(self._records)

    def by_user(self, user: str) -> list[JobRecord]:
        return [r for r in self._records if r.user == user]

    def by_partition(self, partition: str) -> list[JobRecord]:
        return [r for r in self._records if r.partition == partition]

    def by_state(self, state: JobState | str) -> list[JobRecord]:
        value = state.value if isinstance(state, JobState) else state
        return [r for r in self._records if r.state == value]

    # -- aggregates ---------------------------------------------------------

    def wait_times(self, partition: str | None = None) -> np.ndarray:
        records = self._records if partition is None else self.by_partition(partition)
        waits = [r.wait_time for r in records if r.wait_time is not None]
        return np.asarray(waits, dtype=float)

    def wait_percentiles(
        self, percentiles: tuple[float, ...] = (50.0, 95.0), partition: str | None = None
    ) -> dict[float, float]:
        waits = self.wait_times(partition)
        if waits.size == 0:
            return {p: float("nan") for p in percentiles}
        values = np.percentile(waits, percentiles)
        return dict(zip(percentiles, map(float, values), strict=True))

    def total_cpu_seconds(self, user: str | None = None) -> float:
        records = self._records if user is None else self.by_user(user)
        return float(sum(r.cpu_seconds for r in records))

    def cpu_seconds_by_user(self) -> dict[str, float]:
        """Per-user consumed CPU-seconds (the ``sacct``-style site
        report).  Reporting only: federation billing goes through
        :meth:`~repro.accounting.UsageLedger.ingest_accounting_db`,
        which reads the raw records so re-runs stay idempotent."""
        out: dict[str, float] = {}
        for r in self._records:
            out[r.user] = out.get(r.user, 0.0) + r.cpu_seconds
        return out

    def throughput(self, horizon: float) -> float:
        """Completed jobs per simulated hour over ``[0, horizon]``."""
        if horizon <= 0:
            return 0.0
        completed = sum(
            1
            for r in self._records
            if r.state == JobState.COMPLETED.value
            and r.end_time is not None
            and r.end_time <= horizon
        )
        return completed / (horizon / 3600.0)
