"""Generic resources (GRES) — Slurm's mechanism for non-CPU resources.

The paper (§3.5) proposes assigning *partial QPU resources* via GRES:
"we could ... assign 10 licenses/GRES units, corresponding to timeshares
of the QPU in increments of 10 percentage points".  We therefore model
GRES as named counted pools attached to nodes, with conservation
enforced (a :class:`~repro.errors.GresError` on over-allocation or
double-free), and string syntax compatible with Slurm's
``name:count`` / ``name`` requests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GresError

__all__ = ["GresPool", "GresRequest", "parse_gres"]


@dataclass(frozen=True)
class GresRequest:
    """A job's request for ``count`` units of GRES ``name``."""

    name: str
    count: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise GresError("GRES name must be non-empty")
        if self.count < 1:
            raise GresError(f"GRES count must be >= 1, got {self.count}")

    def __str__(self) -> str:
        return f"{self.name}:{self.count}"


def parse_gres(spec: str) -> list[GresRequest]:
    """Parse a Slurm-style GRES string: ``"qpu:1,qpu_share:3"``.

    A bare name means count 1.  Empty string parses to no requests.
    """
    requests: list[GresRequest] = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if ":" in chunk:
            name, _, count_str = chunk.partition(":")
            try:
                count = int(count_str)
            except ValueError as exc:
                raise GresError(f"bad GRES count in {chunk!r}") from exc
            requests.append(GresRequest(name.strip(), count))
        else:
            requests.append(GresRequest(chunk))
    return requests


class GresPool:
    """Counted pool of one GRES type on one node.

    Tracks which job holds how many units so release is verified against
    the original allocation (catching scheduler bugs early).
    """

    def __init__(self, name: str, total: int) -> None:
        if total < 0:
            raise GresError(f"GRES total must be >= 0, got {total}")
        self.name = name
        self.total = total
        self._allocations: dict[int, int] = {}  # job_id -> units

    @property
    def allocated(self) -> int:
        return sum(self._allocations.values())

    @property
    def available(self) -> int:
        return self.total - self.allocated

    def can_allocate(self, count: int) -> bool:
        return count <= self.available

    def allocate(self, job_id: int, count: int) -> None:
        if count < 1:
            raise GresError(f"cannot allocate {count} units of {self.name}")
        if job_id in self._allocations:
            raise GresError(f"job {job_id} already holds GRES {self.name}")
        if count > self.available:
            raise GresError(
                f"GRES {self.name} exhausted: requested {count}, available {self.available}"
            )
        self._allocations[job_id] = count

    def release(self, job_id: int) -> int:
        if job_id not in self._allocations:
            raise GresError(f"job {job_id} holds no GRES {self.name}")
        return self._allocations.pop(job_id)

    def holder_count(self, job_id: int) -> int:
        return self._allocations.get(job_id, 0)

    def holders(self) -> dict[int, int]:
        return dict(self._allocations)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GresPool({self.name!r}, {self.allocated}/{self.total})"
