"""Batch-script front end: ``#SBATCH`` headers <-> job descriptions.

The paper's user workflow (Figure 1) submits programs "via Slurm"; in
practice that means a batch script whose header carries the resource
request, including the new ``--qpu=<resource>`` switch (§3.2) and
``--hint=<pattern>`` (§3.5).  This module handles both directions of
that dialect:

* :class:`JobScript` parses a script into the cluster-level
  :class:`~repro.cluster.job.JobSpec` (nodes/CPUs/time/GRES), so the
  examples can show realistic submission files,
* :func:`render_jobscript` generates a script *from* the declarative
  submission spec (:class:`repro.spec.JobSpec`) — the cluster face of
  the one-spec surface: the same object that submits to the daemon,
  the federation, and the cloud gateway also renders the batch file.
"""

from __future__ import annotations

import shlex

from ..errors import JobError
from .gres import parse_gres
from .job import JobSpec

__all__ = ["JobScript", "render_jobscript"]

#: priority class -> the partition name whose
#: :meth:`~repro.daemon.queue.PriorityClass.from_partition` mapping
#: round-trips back to the same class
_PARTITION_FOR_CLASS = {
    "production": "prod",
    "test": "test",
    "development": "batch",
}


def render_jobscript(
    spec,
    *,
    partition: str | None = None,
    cpus: int = 1,
    nodes: int = 1,
    time_limit: str = "30:00",
    command: str | None = None,
) -> str:
    """Render the ``#SBATCH`` batch script for one submission spec.

    ``spec`` is a :class:`repro.spec.JobSpec`; its priority class picks
    the partition (unless overridden), its explicit target
    (``pin``/``resource``) becomes the ``--qpu`` switch, and its
    resolved shot count rides along on the run command.  The output
    parses back through :class:`JobScript` — generation and parsing
    cannot drift.
    """
    spec = spec.validate()
    if partition is None:
        partition = _PARTITION_FOR_CLASS.get(spec.priority_class, "batch")
    qpu = spec.pin if spec.pin is not None else spec.resource
    lines = [
        "#!/bin/bash",
        f"#SBATCH --job-name={shlex.quote(spec.program.name)}",
        f"#SBATCH --partition={partition}",
        f"#SBATCH --cpus-per-task={cpus}",
        f"#SBATCH --nodes={nodes}",
        f"#SBATCH --time={time_limit}",
    ]
    if qpu is not None:
        lines.append(f"#SBATCH --qpu={qpu}")
    if command is None:
        command = f"python run_hybrid.py --shots {spec.shots}"
    lines.append(command)
    return "\n".join(lines) + "\n"


_FLAG_ALIASES = {
    "-J": "--job-name",
    "-p": "--partition",
    "-c": "--cpus-per-task",
    "-N": "--nodes",
    "-t": "--time",
}


def _parse_time(value: str) -> float:
    """Parse Slurm time syntax: ``MM``, ``MM:SS``, ``HH:MM:SS``, ``D-HH:MM:SS``."""
    days = 0
    if "-" in value:
        day_str, _, rest = value.partition("-")
        try:
            days = int(day_str)
        except ValueError as exc:
            raise JobError(f"bad time spec {value!r}") from exc
        value = rest
    parts = value.split(":")
    try:
        numbers = [int(p) for p in parts]
    except ValueError as exc:
        raise JobError(f"bad time spec {value!r}") from exc
    if len(numbers) == 1:  # minutes
        seconds = numbers[0] * 60
    elif len(numbers) == 2:  # MM:SS
        seconds = numbers[0] * 60 + numbers[1]
    elif len(numbers) == 3:  # HH:MM:SS
        seconds = numbers[0] * 3600 + numbers[1] * 60 + numbers[2]
    else:
        raise JobError(f"bad time spec {value!r}")
    return float(days * 86_400 + seconds)


class JobScript:
    """A parsed batch script: SBATCH options + body lines."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.options: dict[str, str] = {}
        self.body: list[str] = []
        self._parse(text)

    def _parse(self, text: str) -> None:
        lines = text.splitlines()
        if not lines or not lines[0].startswith("#!"):
            raise JobError("job script must start with a shebang line")
        for line in lines[1:]:
            stripped = line.strip()
            if stripped.startswith("#SBATCH"):
                self._parse_sbatch_line(stripped)
            elif stripped.startswith("#") or not stripped:
                continue
            else:
                self.body.append(stripped)

    def _parse_sbatch_line(self, line: str) -> None:
        tokens = shlex.split(line)[1:]  # drop '#SBATCH'
        i = 0
        while i < len(tokens):
            token = tokens[i]
            if "=" in token and token.startswith("--"):
                flag, _, value = token.partition("=")
            else:
                flag = token
                if flag in _FLAG_ALIASES or flag.startswith("--"):
                    if i + 1 >= len(tokens):
                        raise JobError(f"flag {flag!r} missing value in {line!r}")
                    i += 1
                    value = tokens[i]
                else:
                    raise JobError(f"unrecognized SBATCH token {token!r}")
            flag = _FLAG_ALIASES.get(flag, flag)
            self.options[flag.lstrip("-")] = value
            i += 1

    def to_spec(self, user: str = "user", duration: float | None = None) -> JobSpec:
        """Build a JobSpec from the parsed options.

        ``duration`` is the simulated runtime (scripts do not really
        execute shell commands); defaults to the time limit or 60 s.
        """
        opts = self.options
        licenses: list[tuple[str, int]] = []
        for chunk in opts.get("licenses", "").split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            if ":" in chunk:
                lname, _, lcount = chunk.partition(":")
                licenses.append((lname, int(lcount)))
            else:
                licenses.append((chunk, 1))
        time_limit = _parse_time(opts["time"]) if "time" in opts else None
        if duration is None:
            duration = time_limit if time_limit is not None else 60.0
        return JobSpec(
            name=opts.get("job-name", "script-job"),
            user=user,
            partition=opts.get("partition", "batch"),
            cpus=int(opts.get("cpus-per-task", "1")),
            num_nodes=int(opts.get("nodes", "1")),
            memory_mb=int(opts.get("mem", "1000").removesuffix("M").removesuffix("MB")),
            time_limit=time_limit,
            duration=duration,
            gres=tuple(parse_gres(opts.get("gres", ""))),
            licenses=tuple(licenses),
            hint=opts.get("hint", ""),
            qpu_resource=opts.get("qpu", ""),
        )
