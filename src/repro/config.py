"""Environment-variable driven configuration, QRMI style.

The paper (section 3.4) states: *"Since QRMI is configured through
environment variables, it is natural to rely on configuration files and
environment settings."*  This module implements that convention for the
whole stack:

* every QRMI resource is described by ``QRMI_<NAME>_<FIELD>`` variables,
* the set of resources visible to a runtime is listed in
  ``QRMI_RESOURCES`` (comma separated),
* the daemon reads ``REPRO_DAEMON_*`` variables,
* a :class:`ConfigSource` can wrap ``os.environ``, a plain ``dict`` (for
  tests and simulations), or a layered chain (developer overrides < IDE <
  scheduler-injected), mirroring the paper's "defined at different levels"
  remark.

Nothing in the stack reads ``os.environ`` directly; everything goes
through a :class:`ConfigSource` so that simulated multi-user setups can
hold several independent "environments" in one process.
"""

from __future__ import annotations

import os
from collections.abc import Iterator, Mapping, MutableMapping
from dataclasses import dataclass, field

from .errors import ConfigError

__all__ = [
    "ConfigSource",
    "DictConfig",
    "EnvConfig",
    "LayeredConfig",
    "ResourceConfig",
    "parse_bool",
    "parse_resource_list",
]


def parse_bool(value: str) -> bool:
    """Parse a boolean environment value (``1/true/yes/on`` case-insensitive)."""
    lowered = value.strip().lower()
    if lowered in {"1", "true", "yes", "on"}:
        return True
    if lowered in {"0", "false", "no", "off", ""}:
        return False
    raise ConfigError(f"cannot parse boolean from {value!r}")


class ConfigSource(Mapping[str, str]):
    """Read-only mapping of configuration variables.

    Subclasses provide the storage; the base class provides typed getters
    used across the stack.
    """

    def get_str(self, key: str, default: str | None = None) -> str:
        value = self.get(key)
        if value is None:
            if default is None:
                raise ConfigError(f"missing required configuration variable {key!r}")
            return default
        return value

    def get_int(self, key: str, default: int | None = None) -> int:
        value = self.get(key)
        if value is None:
            if default is None:
                raise ConfigError(f"missing required configuration variable {key!r}")
            return default
        try:
            return int(value)
        except ValueError as exc:
            raise ConfigError(f"{key}={value!r} is not an integer") from exc

    def get_float(self, key: str, default: float | None = None) -> float:
        value = self.get(key)
        if value is None:
            if default is None:
                raise ConfigError(f"missing required configuration variable {key!r}")
            return default
        try:
            return float(value)
        except ValueError as exc:
            raise ConfigError(f"{key}={value!r} is not a number") from exc

    def get_bool(self, key: str, default: bool | None = None) -> bool:
        value = self.get(key)
        if value is None:
            if default is None:
                raise ConfigError(f"missing required configuration variable {key!r}")
            return default
        return parse_bool(value)


class DictConfig(ConfigSource, MutableMapping[str, str]):
    """Mutable in-memory configuration, used heavily by tests and simulations."""

    def __init__(self, values: Mapping[str, str] | None = None) -> None:
        self._values: dict[str, str] = dict(values or {})

    def __getitem__(self, key: str) -> str:
        return self._values[key]

    def __setitem__(self, key: str, value: str) -> None:
        self._values[key] = str(value)

    def __delitem__(self, key: str) -> None:
        del self._values[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def copy(self) -> "DictConfig":
        return DictConfig(self._values)


class EnvConfig(ConfigSource):
    """Configuration backed by the real process environment."""

    def __getitem__(self, key: str) -> str:
        return os.environ[key]

    def __iter__(self) -> Iterator[str]:
        return iter(os.environ)

    def __len__(self) -> int:
        return len(os.environ)


class LayeredConfig(ConfigSource):
    """Chain of sources; later layers override earlier ones.

    Mirrors the paper's configuration levels: site defaults, then IDE /
    developer settings, then values injected by the HPC scheduler at job
    launch (highest precedence).
    """

    def __init__(self, *layers: ConfigSource) -> None:
        if not layers:
            raise ConfigError("LayeredConfig requires at least one layer")
        self._layers = list(layers)

    def __getitem__(self, key: str) -> str:
        for layer in reversed(self._layers):
            if key in layer:
                return layer[key]
        raise KeyError(key)

    def __iter__(self) -> Iterator[str]:
        seen: set[str] = set()
        for layer in self._layers:
            for key in layer:
                if key not in seen:
                    seen.add(key)
                    yield key

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def push_layer(self, layer: ConfigSource) -> None:
        """Add a new highest-precedence layer."""
        self._layers.append(layer)


@dataclass(frozen=True)
class ResourceConfig:
    """Parsed ``QRMI_<NAME>_*`` block describing one quantum resource.

    Fields follow the QRMI convention from the paper (resource *type*
    selects the backend implementation; endpoint/credentials configure the
    transport; extra keys are passed through to the backend).
    """

    name: str
    resource_type: str
    endpoint: str = ""
    credentials: str = ""
    extras: Mapping[str, str] = field(default_factory=dict)

    @staticmethod
    def prefix(name: str) -> str:
        return f"QRMI_{name.upper()}_"

    @classmethod
    def from_config(cls, config: ConfigSource, name: str) -> "ResourceConfig":
        prefix = cls.prefix(name)
        type_key = prefix + "TYPE"
        if type_key not in config:
            raise ConfigError(
                f"resource {name!r} is not configured ({type_key} missing)"
            )
        extras = {
            key[len(prefix) :].lower(): value
            for key, value in config.items()
            if key.startswith(prefix)
            and key not in {type_key, prefix + "ENDPOINT", prefix + "CREDENTIALS"}
        }
        return cls(
            name=name,
            resource_type=config[type_key],
            endpoint=config.get(prefix + "ENDPOINT", ""),
            credentials=config.get(prefix + "CREDENTIALS", ""),
            extras=extras,
        )

    def to_env(self) -> dict[str, str]:
        """Serialize back to ``QRMI_*`` variables (inverse of ``from_config``)."""
        prefix = self.prefix(self.name)
        env = {prefix + "TYPE": self.resource_type}
        if self.endpoint:
            env[prefix + "ENDPOINT"] = self.endpoint
        if self.credentials:
            env[prefix + "CREDENTIALS"] = self.credentials
        for key, value in self.extras.items():
            env[prefix + key.upper()] = value
        return env


def parse_resource_list(config: ConfigSource) -> list[str]:
    """Return the resource names listed in ``QRMI_RESOURCES``.

    An absent variable means "no resources configured" rather than an
    error, matching QRMI behaviour where an empty environment simply
    exposes nothing.
    """
    raw = config.get("QRMI_RESOURCES", "")
    return [item.strip() for item in raw.split(",") if item.strip()]
