"""Workload-pattern taxonomy (the paper's Table 1).

    Pattern                Quantum load  Classical load          Scheduler hint
    A) High-QC / Low-CC    Dominant      Minor pre/post          Sequential QPU queue
    B) Low-QC / High-CC    Sparse        Heavy                   Interleave jobs to kill QPU idle time
    C) Balanced QC-CC      Comparable    Comparable              Fine-grained orchestration

Classification is by the QPU fraction ``q / (q + c)`` of a job's
expected time budget; hints are the ``--hint=...`` strings from §3.5.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import SchedulerError

__all__ = [
    "SchedulerHint",
    "WorkloadPattern",
    "classify_pattern",
    "hint_for_pattern",
    "PATTERN_TABLE",
]


class WorkloadPattern(enum.Enum):
    HIGH_QC_LOW_CC = "A"
    LOW_QC_HIGH_CC = "B"
    BALANCED = "C"

    @property
    def description(self) -> str:
        return {
            WorkloadPattern.HIGH_QC_LOW_CC: "High-QC / Low-CC",
            WorkloadPattern.LOW_QC_HIGH_CC: "Low-QC / High-CC",
            WorkloadPattern.BALANCED: "Balanced QC-CC",
        }[self]


class SchedulerHint(enum.Enum):
    """``--hint=`` values, §3.5: "We could for example enable adding
    --hint=qc-balanced, and others as listed in Table 1"."""

    QC_HEAVY = "qc-heavy"
    CC_HEAVY = "cc-heavy"
    QC_BALANCED = "qc-balanced"

    @classmethod
    def parse(cls, value: str) -> "SchedulerHint":
        for member in cls:
            if member.value == value:
                return member
        raise SchedulerError(
            f"unknown scheduler hint {value!r}; valid: {[m.value for m in cls]}"
        )

    @property
    def pattern(self) -> WorkloadPattern:
        return {
            SchedulerHint.QC_HEAVY: WorkloadPattern.HIGH_QC_LOW_CC,
            SchedulerHint.CC_HEAVY: WorkloadPattern.LOW_QC_HIGH_CC,
            SchedulerHint.QC_BALANCED: WorkloadPattern.BALANCED,
        }[self]


def hint_for_pattern(pattern: WorkloadPattern) -> SchedulerHint:
    return {
        WorkloadPattern.HIGH_QC_LOW_CC: SchedulerHint.QC_HEAVY,
        WorkloadPattern.LOW_QC_HIGH_CC: SchedulerHint.CC_HEAVY,
        WorkloadPattern.BALANCED: SchedulerHint.QC_BALANCED,
    }[pattern]


#: classification thresholds on the QPU fraction q/(q+c)
QC_DOMINANT_THRESHOLD = 0.65
CC_DOMINANT_THRESHOLD = 0.35


def classify_pattern(qpu_seconds: float, classical_seconds: float) -> WorkloadPattern:
    """Classify a job by its expected QPU/classical time split."""
    if qpu_seconds < 0 or classical_seconds < 0:
        raise SchedulerError("time budgets must be non-negative")
    total = qpu_seconds + classical_seconds
    if total == 0:
        raise SchedulerError("job must declare some expected time")
    fraction = qpu_seconds / total
    if fraction >= QC_DOMINANT_THRESHOLD:
        return WorkloadPattern.HIGH_QC_LOW_CC
    if fraction <= CC_DOMINANT_THRESHOLD:
        return WorkloadPattern.LOW_QC_HIGH_CC
    return WorkloadPattern.BALANCED


@dataclass(frozen=True)
class PatternRow:
    """One row of Table 1 (for the regeneration bench)."""

    pattern: WorkloadPattern
    quantum_load: str
    classical_load: str
    scheduler_hint: str


PATTERN_TABLE: tuple[PatternRow, ...] = (
    PatternRow(
        WorkloadPattern.HIGH_QC_LOW_CC,
        "Dominant",
        "Minor pre/post processing",
        "Sequential QPU queue",
    ),
    PatternRow(
        WorkloadPattern.LOW_QC_HIGH_CC,
        "Sparse",
        "Heavy",
        "Interleave jobs to kill QPU idle time",
    ),
    PatternRow(
        WorkloadPattern.BALANCED,
        "Comparable",
        "Comparable",
        "Fine-grained orchestration",
    ),
)
