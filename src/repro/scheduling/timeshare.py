"""Fractional QPU shares (paper §3.5).

"Without requiring changes to Slurm, we could in both cases assign 10
licenses/GRES units, corresponding to timeshares of the QPU in
increments of 10 percentage points."

Two cooperating pieces:

* :class:`TimeshareAllocator` — the bookkeeping of the 10-unit pool:
  tenants hold integer unit counts; maps directly onto Slurm licenses
  (:class:`~repro.cluster.licenses.LicensePool`) or a GRES pool.
* :class:`WeightedFairPolicy` — a deficit-round-robin selection policy
  for the daemon's second-level scheduler: tenants receive QPU time in
  proportion to their held units.  Plugs into
  :class:`~repro.daemon.scheduler.SecondLevelScheduler` via
  ``selection_policy``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import SchedulerError

if TYPE_CHECKING:
    from ..daemon.queue import QueuedTask

#: the one task-state value this policy inspects — matched by string so
#: ``scheduling`` stays below ``daemon`` in the import graph (daemon
#: imports scheduling.algorithms; a module-scope import here closed a
#: package cycle that archlint's layering rule now forbids)
_QUEUED = "queued"

__all__ = ["TimeshareAllocator", "WeightedFairPolicy"]


class TimeshareAllocator:
    """Integer unit pool (default 10 units = 10% increments)."""

    def __init__(self, total_units: int = 10) -> None:
        if total_units < 1:
            raise SchedulerError("total_units must be >= 1")
        self.total_units = total_units
        self._held: dict[str, int] = {}

    def grant(self, tenant: str, units: int) -> None:
        if units < 1:
            raise SchedulerError("must grant >= 1 unit")
        if self.allocated + units > self.total_units:
            raise SchedulerError(
                f"only {self.available} units free, requested {units}"
            )
        self._held[tenant] = self._held.get(tenant, 0) + units

    def revoke(self, tenant: str) -> int:
        return self._held.pop(tenant, 0)

    @property
    def allocated(self) -> int:
        return sum(self._held.values())

    @property
    def available(self) -> int:
        return self.total_units - self.allocated

    def share(self, tenant: str) -> float:
        """Tenant's fraction of the QPU (0 if none held)."""
        return self._held.get(tenant, 0) / self.total_units

    def holdings(self) -> dict[str, int]:
        return dict(self._held)

    def as_slurm_licenses(self, name: str = "qpu_share") -> dict[str, int]:
        """License-pool definition for the cluster config (§3.5)."""
        return {name: self.total_units}


class WeightedFairPolicy:
    """Deficit-weighted task selection over tenants (users).

    Each tenant accrues credit proportional to its share; selecting a
    tenant's task spends credit equal to the task's estimated QPU
    seconds.  The eligible tenant with the largest credit balance goes
    next, so long-run QPU time converges to the granted shares — the
    fairness property tested in ``tests/scheduling`` and measured by
    the C5 bench.
    """

    def __init__(
        self,
        allocator: TimeshareAllocator,
        estimate_seconds=None,
    ) -> None:
        self.allocator = allocator
        self.estimate_seconds = estimate_seconds or (lambda task: float(task.program.shots))
        self._credit: dict[str, float] = {}
        self._last_time: float | None = None
        self.served_seconds: dict[str, float] = {}

    def _accrue(self, now: float) -> None:
        if self._last_time is None:
            self._last_time = now
            return
        elapsed = now - self._last_time
        self._last_time = now
        if elapsed <= 0:
            return
        for tenant in self.allocator.holdings():
            self._credit[tenant] = (
                self._credit.get(tenant, 0.0) + elapsed * self.allocator.share(tenant)
            )

    def __call__(self, eligible: list[QueuedTask], now: float) -> QueuedTask | None:
        """Selection-policy signature for SecondLevelScheduler."""
        self._accrue(now)
        eligible = [t for t in eligible if t.state.value == _QUEUED]
        if not eligible:
            return None
        by_tenant: dict[str, list[QueuedTask]] = {}
        for task in eligible:
            by_tenant.setdefault(task.user, []).append(task)
        # only tenants holding shares compete on credit; others are
        # best-effort and go last (zero credit).
        def credit_of(tenant: str) -> float:
            return self._credit.get(tenant, 0.0) + 1e-9 * self.allocator.share(tenant)

        tenant = max(sorted(by_tenant), key=credit_of)
        task = min(by_tenant[tenant], key=lambda t: t.enqueued_at)
        cost = self.estimate_seconds(task)
        self._credit[tenant] = self._credit.get(tenant, 0.0) - cost
        self.served_seconds[tenant] = self.served_seconds.get(tenant, 0.0) + cost
        return task

    def observed_shares(self) -> dict[str, float]:
        total = sum(self.served_seconds.values())
        if total == 0:
            return {}
        return {tenant: s / total for tenant, s in self.served_seconds.items()}
