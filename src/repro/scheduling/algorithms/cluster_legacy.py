"""The cluster controller's legacy planning pass, as an algorithm.

Delegates wholesale to :meth:`repro.cluster.scheduler.Scheduler.plan`
— multifactor priority order, first-fit placement, EASY backfill with
node-exact shadow reservation — and converts the resulting
``SchedulingDecision`` losslessly into the common vocabulary.  The
concrete node lists ride in each decision's payload, so the adapter
scheduler reconstructs placements verbatim: decisions are bit-identical
to calling ``plan`` directly.

The planning engine (a plain ``Scheduler``) and the native cluster
state arrive through ``system.native``; this module never imports the
cluster package, keeping the algorithm suite import-light.
"""

from __future__ import annotations

from .base import Decision, PendingJob, ResourceView, SchedulingAlgorithm, SystemView, register

__all__ = ["ClusterBackfillLegacy"]


@register
class ClusterBackfillLegacy(SchedulingAlgorithm):

    name = "cluster-legacy"
    handles_placement = False

    def schedule(
        self,
        pending: tuple[PendingJob, ...],
        resources: tuple[ResourceView, ...],
        system: SystemView,
    ) -> list[Decision]:
        native = system.native or {}
        engine = native["engine"]
        decision = engine.plan(
            native["pending"],
            native["running"],
            native["partitions"],
            native["licenses"],
            system.now,
        )
        backfilled = set(decision.backfilled)
        out: list[Decision] = []
        for placement in decision.starts:
            out.append(
                Decision(
                    kind="backfill" if placement.job_id in backfilled else "start",
                    job_id=str(placement.job_id),
                    units=len(placement.node_names),
                    payload={"placement": placement},
                )
            )
        if decision.head_blocked is not None:
            out.append(
                Decision(
                    kind="reserve",
                    job_id=str(decision.head_blocked),
                    payload={"shadow_time": decision.shadow_time},
                )
            )
        return out
