"""The federation broker's legacy placement, as an algorithm.

Wraps any federation routing policy (round-robin / least-queue /
calibration-aware / sticky — anything with ``choose(job, candidates,
now)``) so the broker's placement step goes through the common
:class:`~repro.scheduling.algorithms.base.SchedulingAlgorithm` surface.
The policy is called exactly once per pending job with the *native*
job and candidate snapshots, so stateful policies (the round-robin
cursor, sticky affinity tables) advance exactly as they did when the
broker called them directly — bit-identical routing.

Without a wrapped policy it falls back to least-loaded routing over
the generic view, which keeps the algorithm usable from the sweep
simulator where no federation objects exist.
"""

from __future__ import annotations

from typing import Any

from .base import Decision, PendingJob, ResourceView, SchedulingAlgorithm, SystemView, register

__all__ = ["PolicyRouting"]


@register
class PolicyRouting(SchedulingAlgorithm):

    name = "policy-routing"

    def __init__(
        self, policy: Any = None, convert_when_saturated: bool = False
    ) -> None:
        self.policy = policy
        self.convert_when_saturated = convert_when_saturated

    def schedule(
        self,
        pending: tuple[PendingJob, ...],
        resources: tuple[ResourceView, ...],
        system: SystemView,
    ) -> list[Decision]:
        decisions: list[Decision] = []
        natives = [r.native for r in resources if r.native is not None]
        for job in pending:
            if self.policy is not None and job.native is not None and natives:
                choice = self.policy.choose(job.native, natives, system.now)
                target = choice.name
            else:
                target = min(
                    resources,
                    key=lambda r: (r.total_units - r.free_units, r.name),
                ).name
            decisions.append(Decision(kind="place", job_id=job.job_id, resource=target))
        return decisions
