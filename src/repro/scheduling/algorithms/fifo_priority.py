"""FIFO-within-priority-class: the daemon queue's legacy discipline.

Reproduces :meth:`repro.daemon.queue.MiddlewareQueue.pop` exactly: the
next job is the queued one with the lowest ``(priority, submit_seq)``
key — priority classes strictly ordered, FIFO inside a class, and a
requeued (preempted) task goes to the *back* of its class because the
queue assigns it a fresh heap sequence number on requeue.

Generalized to many resources for the sweep simulator: strict
non-skipping FCFS — fill resources in order until the first job that
fits nowhere, then stop (no backfilling; that is EASY's job).
"""

from __future__ import annotations

from .base import Decision, PendingJob, ResourceView, SchedulingAlgorithm, SystemView, register

__all__ = ["FifoPriority"]


@register
class FifoPriority(SchedulingAlgorithm):

    name = "fifo-priority"

    def schedule(
        self,
        pending: tuple[PendingJob, ...],
        resources: tuple[ResourceView, ...],
        system: SystemView,
    ) -> list[Decision]:
        free = {r.name: r.free_units for r in resources}
        decisions: list[Decision] = []
        for job in sorted(pending, key=lambda j: (j.priority, j.submit_seq)):
            placed = False
            for resource in resources:
                if free[resource.name] >= job.units:
                    free[resource.name] -= job.units
                    decisions.append(
                        Decision(kind="start", job_id=job.job_id, resource=resource.name, units=job.units)
                    )
                    placed = True
                    break
            if not placed:
                # strict FIFO: the head blocks everything behind it
                break
        return decisions
