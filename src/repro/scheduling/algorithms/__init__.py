"""One scheduling interface: the pluggable algorithm suite.

Every scheduling loop in the stack (daemon worker, cluster controller,
federation broker, malleable arbitration, and the sweep bench) drives a
:class:`~repro.scheduling.algorithms.base.SchedulingAlgorithm` through
the same ``schedule(pending, resources, system) -> [Decision]`` call.
Algorithms are one file each and selectable by name — through
``JobSpec.algorithm``, ``SecondLevelScheduler.use_algorithm``,
``FederationBroker.use_algorithm``, or the bench sweep.

Module map
==========

``base``
    The vocabulary (``PendingJob`` / ``RunningUnit`` / ``ResourceView``
    / ``SystemView`` / ``Decision``), the ``SchedulingAlgorithm``
    protocol, and the name-keyed registry
    (``register`` / ``get_algorithm`` / ``available``).
``views``
    Duck-typed adapters that express daemon queue state, cluster
    node/partition state, and federation site snapshots in the common
    vocabulary.  Nothing here imports the adapted packages.
``fifo_priority``
    ``"fifo-priority"`` — the daemon queue's legacy (class, FIFO)
    discipline; bit-identical to ``MiddlewareQueue.pop``.
``cluster_legacy``
    ``"cluster-legacy"`` — wraps ``cluster.Scheduler.plan`` (priority
    + first-fit + node-exact EASY backfill); bit-identical decisions.
``policy_routing``
    ``"policy-routing"`` — wraps any federation routing policy's
    ``choose``; bit-identical broker placements.
``easy_backfill``
    ``"easy-backfill"`` — generic unit-count EASY backfilling with
    shadow reservation, usable by all three loops.
``agreement_elastic``
    ``"agreement-elastic"`` — contending malleable jobs negotiate
    pairwise unit steals toward the (decayed) fair-share target.
``simulate``
    The Wagomu-style sweep driver: replay one trace through every
    registered algorithm and compare makespan/utilization/wait.

Adding an algorithm
===================

Write one module that imports only ``base`` (and stdlib), subclass
``SchedulingAlgorithm``, set a unique ``name``, decorate with
``@register``, implement ``schedule``, and import the module here so
registration happens on package import.
"""

from .agreement_elastic import AgreementElastic
from .base import (
    Decision,
    PendingJob,
    ResourceView,
    RunningUnit,
    SchedulingAlgorithm,
    SystemView,
    available,
    get_algorithm,
    register,
)
from .cluster_legacy import ClusterBackfillLegacy
from .easy_backfill import EasyBackfill
from .fifo_priority import FifoPriority
from .policy_routing import PolicyRouting
from .simulate import SimJob, SimReport, simulate
from .views import cluster_views, daemon_views, federation_views

__all__ = [
    "AgreementElastic",
    "ClusterBackfillLegacy",
    "Decision",
    "EasyBackfill",
    "FifoPriority",
    "PendingJob",
    "PolicyRouting",
    "ResourceView",
    "RunningUnit",
    "SchedulingAlgorithm",
    "SimJob",
    "SimReport",
    "SystemView",
    "available",
    "cluster_views",
    "daemon_views",
    "federation_views",
    "get_algorithm",
    "register",
    "simulate",
]
