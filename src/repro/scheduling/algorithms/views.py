"""Adapter views: each scheduling loop's state in the common vocabulary.

Three builders, one per loop.  All of them duck-type their inputs —
this module imports nothing from ``daemon``/``cluster``/``federation``,
so the algorithms package stays import-light and cycle-free:

* :func:`daemon_views` — queued ``QueuedTask``s in front of the single
  second-level worker slot,
* :func:`cluster_views` — priority-ordered cluster ``Job``s over
  node-granular partition views (exact for whole-node workloads;
  heterogeneous per-cpu packing stays with the legacy adapter, which
  carries native state instead),
* :func:`federation_views` — one ``FederatedJob`` over candidate
  ``SiteSnapshot``s, with each site's backlog synthesized as one
  running unit that drains in ``queue_depth`` time units (so shadow
  reservations rank sites by how soon their backlog clears).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any

from .base import PendingJob, ResourceView, RunningUnit, SystemView

__all__ = ["cluster_views", "daemon_views", "federation_views"]

DAEMON_WORKER = "qpu-worker"


def daemon_views(
    tasks: Sequence[Any], now: float
) -> tuple[tuple[PendingJob, ...], tuple[ResourceView, ...], SystemView]:
    """Queued daemon tasks in front of one free worker slot.

    ``submit_seq`` is the queue's heap sequence number, so FIFO order —
    including requeued preempted tasks going to the back of their
    class — matches :meth:`MiddlewareQueue.pop` exactly.
    """
    pending = tuple(
        PendingJob(
            job_id=task.task_id,
            priority=int(task.priority),
            submit_seq=task._heap_seq,
            units=1,
            tenant=task.user,
            native=task,
        )
        for task in tasks
    )
    resources = (ResourceView(name=DAEMON_WORKER, total_units=1, free_units=1),)
    return pending, resources, SystemView(now=now)


def cluster_views(
    ordered_jobs: Sequence[Any],
    running: Sequence[Any],
    partitions: Mapping[str, Any],
    now: float,
) -> tuple[tuple[PendingJob, ...], tuple[ResourceView, ...], SystemView]:
    """Cluster state at node granularity for generic algorithms.

    ``ordered_jobs`` must already be in multifactor-priority order (the
    caller owns the :class:`PriorityCalculator`); the position becomes
    ``submit_seq`` so generic ``(priority, submit_seq)`` sorts preserve
    it.  A partition's free units are its fully-idle schedulable nodes.
    """
    pending = tuple(
        PendingJob(
            job_id=str(job.job_id),
            submit_seq=seq,
            units=job.spec.num_nodes,
            estimated_runtime=job.effective_time_limit,
            native=job,
        )
        for seq, job in enumerate(ordered_jobs)
    )
    by_partition: dict[str, list[RunningUnit]] = {name: [] for name in partitions}
    for job in running:
        by_partition.setdefault(job.spec.partition, []).append(
            RunningUnit(
                job_id=str(job.job_id),
                units=job.spec.num_nodes,
                expected_end=(job.start_time or now) + job.effective_time_limit,
            )
        )
    resources = []
    for name in sorted(partitions):
        partition = partitions[name]
        nodes = partition.schedulable_nodes()
        resources.append(
            ResourceView(
                name=name,
                total_units=len(nodes),
                free_units=sum(1 for n in nodes if n.cpus_allocated == 0),
                running=tuple(by_partition.get(name, ())),
                native=partition,
            )
        )
    return pending, tuple(resources), SystemView(now=now)


def federation_views(
    job: Any, candidates: Iterable[Any], now: float
) -> tuple[tuple[PendingJob, ...], tuple[ResourceView, ...], SystemView]:
    """One federated job over its candidate site snapshots."""
    spec = getattr(job, "spec", None)
    pending = (
        PendingJob(
            job_id=job.job_id,
            units=1,
            tenant=getattr(job, "owner", ""),
            malleable=bool(getattr(spec, "malleable", False)),
            min_units=getattr(spec, "min_units", None),
            max_units=getattr(spec, "max_units", None),
            native=job,
        ),
    )
    resources = tuple(
        ResourceView(
            name=snap.name,
            total_units=snap.max_queue_depth,
            free_units=snap.headroom,
            running=(
                (RunningUnit("backlog", snap.queue_depth, now + snap.queue_depth),)
                if snap.queue_depth
                else ()
            ),
            native=snap,
        )
        for snap in candidates
    )
    return pending, resources, SystemView(now=now)
