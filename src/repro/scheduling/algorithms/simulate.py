"""A minimal workload simulator for sweeping scheduling algorithms.

The Wagomu suite evaluates every algorithm by replaying one workload
file through one driver (``runSimulations.sh``); this module is that
driver for the common vocabulary.  It is intentionally *not* the full
repro stack — no daemons, brokers, or QRMI resources — just arrivals,
integer-unit resources, and an algorithm making start / backfill /
resize calls, so a sweep over N algorithms costs milliseconds and the
bench harness can gate relative wins (EASY vs FIFO, elastic vs rigid)
deterministically.

Rigid jobs occupy ``units`` for ``runtime``.  Malleable jobs carry
``units * runtime`` total work and process it at their current width,
which elastic algorithms renegotiate at every event via ``resize``
decisions (the running-malleable roster rides in
``system.options["elastic"]``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .base import PendingJob, ResourceView, RunningUnit, SchedulingAlgorithm, SystemView

__all__ = ["SimJob", "SimReport", "simulate"]


@dataclass(frozen=True)
class SimJob:
    job_id: str
    arrival: float
    units: int
    runtime: float
    priority: int = 0
    tenant: str = "t0"
    malleable: bool = False
    min_units: int | None = None
    max_units: int | None = None

    @property
    def total_work(self) -> float:
        return self.units * self.runtime


@dataclass
class SimReport:
    makespan: float
    utilization: float
    mean_wait: float
    completed: int
    backfills: int
    agreements: int
    start_times: dict[str, float] = field(default_factory=dict)
    finish_times: dict[str, float] = field(default_factory=dict)


@dataclass
class _Running:
    job: SimJob
    resource: str
    width: int
    work_left: float  # rigid jobs: remaining seconds * units

    def expected_end(self, now: float) -> float:
        if self.width <= 0:
            return math.inf
        return now + self.work_left / self.width


def simulate(
    algorithm: SchedulingAlgorithm,
    jobs: list[SimJob],
    resources: dict[str, int],
    fair_weight=None,
    horizon: float = 1e9,
) -> SimReport:
    # tiebreak same-instant arrivals by submission (input) order — a
    # lexicographic job_id tiebreak would rank "j10" ahead of "j2" and
    # hand FIFO-order algorithms the wrong head
    arrivals = sorted(jobs, key=lambda j: j.arrival)
    submit_seq = {job.job_id: seq for seq, job in enumerate(arrivals)}
    by_id = {job.job_id: job for job in jobs}
    pending: list[SimJob] = []
    running: dict[str, _Running] = {}
    starts: dict[str, float] = {}
    finishes: dict[str, float] = {}
    capacity = dict(resources)
    total_capacity = sum(capacity.values())
    now = 0.0
    busy_integral = 0.0
    backfills = 0
    agreements = 0
    arrival_idx = 0

    def free_units() -> dict[str, int]:
        free = dict(capacity)
        for run in running.values():
            free[run.resource] -= run.width
        return free

    def build_views():
        free = free_units()
        pend = tuple(
            PendingJob(
                job_id=j.job_id,
                priority=j.priority,
                submit_seq=submit_seq[j.job_id],
                units=j.units,
                estimated_runtime=j.runtime,
                malleable=j.malleable,
                min_units=j.min_units,
                max_units=j.max_units,
                tenant=j.tenant,
            )
            for j in sorted(pending, key=lambda j: (j.priority, submit_seq[j.job_id]))
        )
        views = tuple(
            ResourceView(
                name=name,
                total_units=capacity[name],
                free_units=free[name],
                running=tuple(
                    RunningUnit(run.job.job_id, run.width, run.expected_end(now))
                    for run in running.values()
                    if run.resource == name
                ),
            )
            for name in sorted(capacity)
        )
        elastic = tuple(
            {
                "job_id": run.job.job_id,
                "tenant": run.job.tenant,
                "resource": run.resource,
                "width": run.width,
                "min_units": run.job.min_units,
                "max_units": run.job.max_units,
            }
            for run in running.values()
            if run.job.malleable
        )
        system = SystemView(now=now, fair_weight=fair_weight, options={"elastic": elastic})
        return pend, views, system

    while (pending or running or arrival_idx < len(arrivals)) and now <= horizon:
        # admit arrivals due now
        while arrival_idx < len(arrivals) and arrivals[arrival_idx].arrival <= now:
            pending.append(arrivals[arrival_idx])
            arrival_idx += 1

        pend, views, system = build_views()
        free = free_units()
        for decision in algorithm.schedule(pend, views, system):
            # "place" is a router's start: in the mini-DES a routed job
            # begins running immediately (capacity permitting)
            if decision.kind in ("start", "backfill", "place"):
                job = by_id.get(decision.job_id)
                if job is None or job.job_id in starts or job not in pending:
                    continue
                # rigid jobs always run at their declared width; only
                # malleable ones honor the decision's width
                width = job.units if not job.malleable else max(1, decision.units)
                target = decision.resource
                if target not in free or free[target] < width:
                    continue
                free[target] -= width
                pending.remove(job)
                starts[job.job_id] = now
                running[job.job_id] = _Running(
                    job=job,
                    resource=target,
                    width=width,
                    work_left=job.total_work if job.malleable else job.runtime * job.units,
                )
                if decision.kind == "backfill":
                    backfills += 1
            elif decision.kind == "resize":
                run = running.get(decision.job_id)
                if run is None or not run.job.malleable:
                    continue
                new = max(1, decision.units)
                grow = new - run.width
                if grow > free.get(run.resource, 0):
                    new = run.width + free.get(run.resource, 0)
                    grow = new - run.width
                if new != run.width:
                    free[run.resource] -= grow
                    run.width = new
                    agreements += 1

        # advance to the next event: arrival or earliest completion
        next_times = []
        if arrival_idx < len(arrivals):
            next_times.append(arrivals[arrival_idx].arrival)
        for run in running.values():
            next_times.append(run.expected_end(now))
        if not next_times:
            break
        nxt = min(next_times)
        if nxt <= now:
            nxt = now  # same-instant completions (zero-work edge)
        dt = nxt - now
        busy = sum(run.width for run in running.values())
        busy_integral += busy * dt
        for run in running.values():
            run.work_left -= run.width * dt
        now = nxt
        for job_id in [jid for jid, run in running.items() if run.work_left <= 1e-9]:
            finishes[job_id] = now
            del running[job_id]
        if dt == 0.0 and not any(run.work_left <= 1e-9 for run in running.values()):
            # nothing progressed and nothing will: algorithm declined to
            # schedule anything runnable — avoid spinning forever
            if arrival_idx >= len(arrivals) and not running:
                break

    makespan = max(finishes.values(), default=0.0)
    waits = [starts[j] - by_id[j].arrival for j in starts]
    return SimReport(
        makespan=makespan,
        utilization=(busy_integral / (total_capacity * makespan)) if makespan > 0 else 0.0,
        mean_wait=sum(waits) / len(waits) if waits else 0.0,
        completed=len(finishes),
        backfills=backfills,
        agreements=agreements,
        start_times=starts,
        finish_times=finishes,
    )
