"""The common scheduling-algorithm vocabulary, protocol, and registry.

Every scheduling loop in the stack — the daemon's second-level worker,
the cluster controller's planning pass, the federation broker's
placement step, and the malleable manager's slot arbitration — speaks
the same narrow language defined here:

* :class:`PendingJob` / :class:`RunningUnit` / :class:`ResourceView` /
  :class:`SystemView` — the state an algorithm may read,
* :class:`Decision` — the only thing an algorithm may emit,
* :class:`SchedulingAlgorithm` — the protocol (``schedule(pending,
  resources, system) -> list[Decision]``) plus capability flags,
* :func:`register` / :func:`get_algorithm` / :func:`available` — the
  name-keyed registry that makes algorithms selectable through
  ``JobSpec.algorithm`` and sweepable by the bench harness.

Algorithm modules must stay import-light: they may import this module
and the standard library only.  Anything caller-specific (a cluster
``Job``, a federation ``SiteSnapshot``, a daemon ``QueuedTask``) rides
in the ``native`` slots and in ``Decision.payload``, so an algorithm
file never needs to know which of the three loops is driving it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar

from ...errors import AlgorithmError

__all__ = [
    "Decision",
    "PendingJob",
    "ResourceView",
    "RunningUnit",
    "SchedulingAlgorithm",
    "SystemView",
    "available",
    "get_algorithm",
    "register",
]


# -- the vocabulary ----------------------------------------------------------


@dataclass(frozen=True)
class PendingJob:
    """One schedulable unit of work, whatever layer it came from.

    ``units`` is the layer's natural integer grain: nodes for cluster
    jobs, queue slots for federation placements, always 1 for daemon
    tasks.  ``estimated_runtime <= 0`` means "unknown" — backfillers
    must treat such jobs as potentially infinite.
    """

    job_id: str
    priority: int = 0           # lower = more urgent (daemon convention)
    submit_seq: int = 0         # FIFO tiebreak within a priority level
    units: int = 1
    estimated_runtime: float = 0.0
    malleable: bool = False
    min_units: int | None = None
    max_units: int | None = None
    tenant: str = ""
    native: Any = field(default=None, compare=False)


@dataclass(frozen=True)
class RunningUnit:
    """Occupancy on one resource: ``units`` busy until ``expected_end``."""

    job_id: str
    units: int
    expected_end: float


@dataclass(frozen=True)
class ResourceView:
    """One place work can run: a worker slot, a partition, a site."""

    name: str
    total_units: int
    free_units: int
    running: tuple[RunningUnit, ...] = ()
    native: Any = field(default=None, compare=False)


@dataclass(frozen=True)
class SystemView:
    """Cross-resource context for one scheduling pass."""

    now: float
    fair_weight: Any = None     # callable tenant -> effective share weight
    options: dict[str, Any] = field(default_factory=dict)
    native: Any = field(default=None, compare=False)


@dataclass(frozen=True)
class Decision:
    """One algorithm verdict.  Kinds in use across the three loops:

    * ``"start"``     — run ``job_id`` on ``resource`` now,
    * ``"backfill"``  — a start that jumped the blocked queue head,
    * ``"reserve"``   — shadow reservation for a blocked head
      (``payload["shadow_time"]``; brokers treat it as a spillover
      placement hint),
    * ``"place"``     — route a federated job to ``resource``,
    * ``"resize"``    — set a malleable job's width to ``units``,
    * ``"convert"``   — turn a fixed job into ``units`` malleable units.
    """

    kind: str
    job_id: str
    resource: str | None = None
    units: int = 1
    reason: str = ""
    payload: dict[str, Any] = field(default_factory=dict)


# -- the protocol ------------------------------------------------------------


class SchedulingAlgorithm:
    """Base class every registered algorithm extends.

    Subclasses set ``name`` and implement :meth:`schedule`.  The two
    capability flags let callers route around algorithms that only
    cover part of the vocabulary:

    * ``handles_placement`` — usable for single-job routing decisions
      (the broker's per-job placement step),
    * ``convert_when_saturated`` — the fixed→malleable knob: when the
      algorithm owns a placement and every candidate is saturated, the
      broker may convert a convertible fixed spec into malleable units.
    """

    name: ClassVar[str] = ""
    handles_placement: ClassVar[bool] = True
    convert_when_saturated: bool = False

    def schedule(
        self,
        pending: tuple[PendingJob, ...],
        resources: tuple[ResourceView, ...],
        system: SystemView,
    ) -> list[Decision]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<{type(self).__name__} {self.name!r}>"


# -- the registry ------------------------------------------------------------

_REGISTRY: dict[str, type[SchedulingAlgorithm]] = {}


def register(cls: type[SchedulingAlgorithm]) -> type[SchedulingAlgorithm]:
    """Class decorator: make ``cls`` constructible by name."""
    if not cls.name:
        raise AlgorithmError(f"{cls.__name__} must set a non-empty name")
    existing = _REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise AlgorithmError(f"algorithm name {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def get_algorithm(name: str, **kwargs: Any) -> SchedulingAlgorithm:
    """Instantiate a registered algorithm by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise AlgorithmError(
            f"unknown scheduling algorithm {name!r}; available: {available()}"
        ) from None
    return cls(**kwargs)


def available() -> list[str]:
    """Sorted names of every registered algorithm."""
    return sorted(_REGISTRY)
