"""EASY backfilling over the generic vocabulary.

The cluster scheduler has always had shadow-reservation backfill
(:meth:`repro.cluster.scheduler.Scheduler.shadow_reservation`); this is
the same discipline generalized to integer units so the daemon queue
and the federation broker get it too:

1. walk pending work in ``(priority, submit_seq)`` order, greedily
   starting jobs while they fit,
2. the first job that fits nowhere becomes the **head**: compute its
   shadow time by replaying expected completions on a virtual copy of
   occupancy, and reserve the earliest-draining resource for it,
3. jobs behind the head may start ("backfill") only if they provably
   cannot delay it: they run on a different resource, or finish before
   the shadow time, or leave at least ``head.units`` free at the shadow
   time — the unit-count form of Wagomu's ``delays_head`` check.

Jobs with unknown runtime (``estimated_runtime <= 0``) are treated as
infinite and can only backfill through the leaves-enough-units rule.
"""

from __future__ import annotations

import math

from .base import Decision, PendingJob, ResourceView, SchedulingAlgorithm, SystemView, register

__all__ = ["EasyBackfill"]


@register
class EasyBackfill(SchedulingAlgorithm):

    name = "easy-backfill"

    def __init__(
        self, backfill: bool = True, convert_when_saturated: bool = False
    ) -> None:
        self.backfill = backfill
        self.convert_when_saturated = convert_when_saturated

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _pick(
        resources: tuple[ResourceView, ...], free: dict[str, int], units: int
    ) -> str | None:
        """Most-headroom resource that fits ``units`` now (tie: name)."""
        best: str | None = None
        best_free = -1
        for resource in resources:
            room = free[resource.name]
            if room >= units and room > best_free:
                best, best_free = resource.name, room
        return best

    @staticmethod
    def _shadow(
        head: PendingJob,
        resources: tuple[ResourceView, ...],
        free: dict[str, int],
        started: dict[str, list[tuple[float, int]]],
        now: float,
    ) -> tuple[float, str | None, int]:
        """Earliest instant ``head`` fits on any resource.

        Returns ``(shadow_time, resource_name, free_units_at_shadow)``;
        ``(inf, None, 0)`` when the head can never fit.  Replays both
        pre-existing occupancy (the view's running units) and the jobs
        this very pass already started.
        """
        best_time, best_name, best_free = math.inf, None, 0
        for resource in resources:
            if resource.total_units < head.units:
                continue
            room = free[resource.name]
            events = sorted(
                [(u.expected_end, u.units) for u in resource.running]
                + started[resource.name]
            )
            when: float | None = now if room >= head.units else None
            for end, units in events:
                if when is not None:
                    break
                room += units
                if room >= head.units:
                    when = max(now, end)
            if when is not None and (when, resource.name) < (best_time, best_name or ""):
                best_time, best_name, best_free = when, resource.name, room
        return best_time, best_name, best_free

    # -- the pass ------------------------------------------------------------

    def schedule(
        self,
        pending: tuple[PendingJob, ...],
        resources: tuple[ResourceView, ...],
        system: SystemView,
    ) -> list[Decision]:
        now = system.now
        free = {r.name: r.free_units for r in resources}
        started: dict[str, list[tuple[float, int]]] = {r.name: [] for r in resources}
        decisions: list[Decision] = []
        head: PendingJob | None = None
        shadow_time: float = math.inf
        shadow_resource: str | None = None
        free_at_shadow = 0

        def commit(job: PendingJob, target: str) -> None:
            free[target] -= job.units
            end = now + job.estimated_runtime if job.estimated_runtime > 0 else math.inf
            started[target].append((end, job.units))

        for job in sorted(pending, key=lambda j: (j.priority, j.submit_seq)):
            if head is None:
                target = self._pick(resources, free, job.units)
                if target is not None:
                    commit(job, target)
                    decisions.append(
                        Decision(kind="start", job_id=job.job_id, resource=target, units=job.units)
                    )
                    continue
                head = job
                if not self.backfill:
                    break
                shadow_time, shadow_resource, free_at_shadow = self._shadow(
                    job, resources, free, started, now
                )
                decisions.append(
                    Decision(
                        kind="reserve",
                        job_id=job.job_id,
                        resource=shadow_resource,
                        units=job.units,
                        payload={"shadow_time": shadow_time},
                    )
                )
                continue
            target = self._backfill_target(
                job, resources, free, now, head, shadow_time, shadow_resource, free_at_shadow
            )
            if target is not None:
                commit(job, target)
                if target == shadow_resource and not self._ends_by(job, now, shadow_time):
                    free_at_shadow -= job.units
                decisions.append(
                    Decision(kind="backfill", job_id=job.job_id, resource=target, units=job.units)
                )
        return decisions

    @staticmethod
    def _ends_by(job: PendingJob, now: float, deadline: float) -> bool:
        return job.estimated_runtime > 0 and now + job.estimated_runtime <= deadline

    def _backfill_target(
        self,
        job: PendingJob,
        resources: tuple[ResourceView, ...],
        free: dict[str, int],
        now: float,
        head: PendingJob,
        shadow_time: float,
        shadow_resource: str | None,
        free_at_shadow: int,
    ) -> str | None:
        """A resource ``job`` may backfill onto without delaying ``head``."""
        best: str | None = None
        best_free = -1
        for resource in resources:
            room = free[resource.name]
            if room < job.units or room <= best_free:
                continue
            if resource.name == shadow_resource:
                # on the reserved resource the job must either drain
                # before the head needs it, or demonstrably leave the
                # head's units untouched at the shadow instant
                safe = self._ends_by(job, now, shadow_time) or (
                    free_at_shadow - job.units >= head.units
                )
                if not safe:
                    continue
            best, best_free = resource.name, room
        return best
