"""Agreement-based elastic scheduling: jobs negotiate unit steals.

The central alternative — :meth:`FairShareArbiter.allocate
<repro.accounting.arbiter.FairShareArbiter.allocate>` — recomputes the
whole allocation from zero every pass and jobs are simply told their
width.  Here, in the style of Wagomu's ``average_steal_agreement``,
contending malleable jobs start from what they *currently hold* and
trade units pairwise: each round the most over-served job (by
``allocation / weight``) and the most under-served one settle on the
integer average of what the taker asks and what the donor offers at
their weighted-parity point.  Rounds repeat until no ≥1-unit steal
remains, so allocations converge toward the same weighted fair-share
target while every step is a local two-party agreement — the shape a
sharded broker can run without a global allocator.

The negotiation is work-conserving (idle capacity is granted from the
pool before any stealing) and demand-capped, matching the arbiter's
guarantees; what differs is the *path*: incumbents shed units
gradually instead of being reassigned wholesale.
"""

from __future__ import annotations

from collections.abc import Mapping

from .base import Decision, PendingJob, ResourceView, SchedulingAlgorithm, SystemView, register

__all__ = ["AgreementElastic"]

_POOL = "<pool>"


@register
class AgreementElastic(SchedulingAlgorithm):

    name = "agreement-elastic"
    handles_placement = False

    def __init__(self, max_rounds: int = 10_000) -> None:
        self.max_rounds = max_rounds
        #: transfer log of the most recent pass: dicts with
        #: ``from``/``to``/``units`` (+ ``resource`` when scheduling)
        self.last_agreements: list[dict] = []

    # -- the negotiation core ------------------------------------------------

    def negotiate(
        self,
        capacity: int,
        demands: Mapping[str, int],
        weights: Mapping[str, float] | None = None,
        current: Mapping[str, int] | None = None,
    ) -> tuple[dict[str, int], list[dict]]:
        """Divide ``capacity`` units by pairwise steal agreements.

        Starts from ``current`` holdings (clipped to demand), grants
        idle capacity from the pool, then lets the most over-served
        donor and most under-served taker trade the integer average of
        ask and offer at their weighted-parity split, until no whole
        unit moves.  Returns ``(allocation, transfers)``.
        """
        w = {
            k: (weights[k] if weights is not None and k in weights else 1.0)
            for k in demands
        }
        alloc = {
            k: min(max(0, (current or {}).get(k, 0)), demands[k]) for k in demands
        }
        transfers: list[dict] = []
        # shed overflow (capacity shrank under the incumbents)
        while sum(alloc.values()) > capacity:
            donor = max(
                (k for k in alloc if alloc[k] > 0),
                key=lambda k: (alloc[k] / w[k], w[k], k),
            )
            alloc[donor] -= 1
        # work conservation: idle capacity is free — grant it from the
        # pool exactly the way the central arbiter would
        while sum(alloc.values()) < capacity:
            hungry = [k for k in alloc if alloc[k] < demands[k]]
            if not hungry:
                break
            taker = min(hungry, key=lambda k: (alloc[k] / w[k], -w[k], k))
            alloc[taker] += 1
            transfers.append({"from": _POOL, "to": taker, "units": 1})
        # pairwise agreements toward weighted parity
        for _ in range(self.max_rounds):
            rich = [k for k in alloc if alloc[k] > 0]
            poor = [k for k in alloc if alloc[k] < demands[k]]
            if not rich or not poor:
                break
            donor = max(rich, key=lambda k: (alloc[k] / w[k], w[k], k))
            taker = min(poor, key=lambda k: (alloc[k] / w[k], -w[k], k))
            if donor == taker:
                break
            # parity point: the split of their combined holdings where
            # both sit at equal allocation/weight
            parity = (alloc[donor] + alloc[taker]) / (w[donor] + w[taker])
            ask = min(parity * w[taker] - alloc[taker], demands[taker] - alloc[taker])
            offer = alloc[donor] - parity * w[donor]
            steal = int(min((ask + offer) / 2.0, alloc[donor]))
            if steal < 1:
                break
            alloc[donor] -= steal
            alloc[taker] += steal
            transfers.append({"from": donor, "to": taker, "units": steal})
        return alloc, transfers

    # -- the generic pass (sweep simulator) ----------------------------------

    def schedule(
        self,
        pending: tuple[PendingJob, ...],
        resources: tuple[ResourceView, ...],
        system: SystemView,
    ) -> list[Decision]:
        """FCFS starts (malleable jobs enter at minimum width), then one
        negotiation per resource over its running malleable jobs —
        resize decisions grow/shrink widths toward the fair target."""
        self.last_agreements = []
        free = {r.name: r.free_units for r in resources}
        decisions: list[Decision] = []
        for job in sorted(pending, key=lambda j: (j.priority, j.submit_seq)):
            width = max(1, job.min_units or 1) if job.malleable else job.units
            placed = False
            for resource in resources:
                if free[resource.name] >= width:
                    free[resource.name] -= width
                    decisions.append(
                        Decision(kind="start", job_id=job.job_id, resource=resource.name, units=width)
                    )
                    placed = True
                    break
            if not placed and not job.malleable:
                break  # rigid head blocks rigid FCFS; elastic resizes continue
        elastic = system.options.get("elastic", ())
        weigh = system.fair_weight or (lambda tenant: 1.0)
        by_resource: dict[str, list[dict]] = {}
        for entry in elastic:
            by_resource.setdefault(entry["resource"], []).append(entry)
        for rname, entries in by_resource.items():
            capacity = free[rname] + sum(e["width"] for e in entries)
            demands = {
                e["job_id"]: min(capacity, e.get("max_units") or capacity)
                for e in entries
            }
            weights = {e["job_id"]: float(weigh(e.get("tenant", ""))) for e in entries}
            current = {e["job_id"]: e["width"] for e in entries}
            floors = {
                e["job_id"]: max(1, e.get("min_units") or 1) for e in entries
            }
            alloc, transfers = self.negotiate(capacity, demands, weights, current)
            for entry in entries:
                new = max(alloc[entry["job_id"]], floors[entry["job_id"]])
                if new != entry["width"]:
                    decisions.append(
                        Decision(
                            kind="resize",
                            job_id=entry["job_id"],
                            resource=rname,
                            units=new,
                            reason="agreement",
                        )
                    )
            for t in transfers:
                self.last_agreements.append({**t, "resource": rname})
        return decisions
