"""Utilization / wait / makespan extraction from simulation traces.

All Table-1 and Figure-2 numbers flow through here, computed from the
raw :class:`~repro.simkernel.trace.TraceRecorder` streams rather than
ad-hoc counters, so every benchmark reports metrics with identical
definitions:

* **QPU utilization** — fraction of the horizon covered by qpu
  busy_start/busy_end intervals,
* **QPU idle time** — the complement, in seconds,
* **classical utilization** — allocated-cpu-seconds over capacity,
* **wait statistics** — per priority class from daemon task events,
* **makespan** — last task_end minus first task_enqueued.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..simkernel import TraceRecorder

__all__ = ["SchedulingMetrics", "qpu_busy_fraction"]


def qpu_busy_fraction(trace: TraceRecorder, horizon: float) -> float:
    """Fraction of [0, horizon] the QPU spent executing tasks."""
    pairs = trace.pairs("busy_start", "busy_end", key="task_id", component="qpu")
    return TraceRecorder.busy_fraction(pairs, horizon)


@dataclass
class SchedulingMetrics:
    """One experiment run's scheduling outcomes."""

    horizon: float
    qpu_utilization: float
    qpu_idle_seconds: float
    makespan: float
    tasks_completed: int
    wait_by_class: dict[str, dict[str, float]] = field(default_factory=dict)
    classical_utilization: float | None = None

    @classmethod
    def from_traces(
        cls,
        qpu_trace: TraceRecorder,
        daemon_trace: TraceRecorder,
        horizon: float | None = None,
        classical_utilization: float | None = None,
    ) -> "SchedulingMetrics":
        ends = daemon_trace.records(component="daemon", event="task_end")
        enqueues = daemon_trace.records(component="daemon", event="task_enqueued")
        if horizon is None:
            horizon = max((r.time for r in ends), default=0.0)
        makespan = 0.0
        if ends and enqueues:
            makespan = max(r.time for r in ends) - min(r.time for r in enqueues)
        util = qpu_busy_fraction(qpu_trace, horizon) if horizon > 0 else 0.0

        wait_by_class: dict[str, list[float]] = {}
        for record in daemon_trace.records(component="daemon", event="task_start"):
            cls_name = record.fields.get("priority", "unknown")
            wait = record.fields.get("wait")
            if wait is not None:
                wait_by_class.setdefault(cls_name, []).append(wait)
        wait_stats = {}
        for cls_name, waits in wait_by_class.items():
            arr = np.asarray(waits)
            wait_stats[cls_name] = {
                "count": int(arr.size),
                "mean": float(arr.mean()),
                "p50": float(np.percentile(arr, 50)),
                "p95": float(np.percentile(arr, 95)),
                "max": float(arr.max()),
            }
        completed = sum(
            1 for r in ends if r.fields.get("state") == "completed"
        )
        return cls(
            horizon=horizon,
            qpu_utilization=util,
            qpu_idle_seconds=horizon * (1.0 - util),
            makespan=makespan,
            tasks_completed=completed,
            wait_by_class=wait_stats,
            classical_utilization=classical_utilization,
        )

    def row(self, label: str) -> dict:
        """Flat dict for table rendering."""
        out = {
            "scenario": label,
            "qpu_util_%": round(100 * self.qpu_utilization, 1),
            "qpu_idle_s": round(self.qpu_idle_seconds, 1),
            "makespan_s": round(self.makespan, 1),
            "tasks": self.tasks_completed,
        }
        if self.classical_utilization is not None:
            out["classical_util_%"] = round(100 * self.classical_utilization, 1)
        for cls_name, stats in sorted(self.wait_by_class.items()):
            out[f"wait_p50_{cls_name}"] = round(stats["p50"], 1)
        return out
