"""Multi-level scheduling policies.

The paper's Table 1 taxonomy and the mechanisms built around it:

* :mod:`patterns`   — the three workload patterns (High-QC/Low-CC,
  Low-QC/High-CC, Balanced) + ``--hint=...`` parsing,
* :mod:`interleave` — pattern-aware co-scheduling that "interleaves
  jobs to kill QPU idle time" (Table 1, pattern B hint),
* :mod:`malleable`  — grow/shrink classical allocations (§2.4, ref [25])
  plus the site-aware :class:`~repro.scheduling.malleable.ShareLedger`
  behind cross-site malleable placements,
* :mod:`timeshare`  — fractional QPU shares in 10% increments via
  licenses/GRES (§3.5) with a deficit-weighted fair queue,
* :mod:`metrics`    — utilization/wait/makespan extraction from traces.
"""

from .interleave import InterleavePlan, PatternAwarePlanner, SequentialPlanner
from .malleable import MalleablePool, MalleableTask, ShareLedger, SiteShare
from .metrics import SchedulingMetrics, qpu_busy_fraction
from .patterns import SchedulerHint, WorkloadPattern, classify_pattern, hint_for_pattern
from .timeshare import TimeshareAllocator, WeightedFairPolicy

__all__ = [
    "InterleavePlan",
    "MalleablePool",
    "MalleableTask",
    "PatternAwarePlanner",
    "SchedulerHint",
    "SchedulingMetrics",
    "SequentialPlanner",
    "ShareLedger",
    "SiteShare",
    "TimeshareAllocator",
    "WeightedFairPolicy",
    "WorkloadPattern",
    "classify_pattern",
    "hint_for_pattern",
    "qpu_busy_fraction",
]
