"""Malleable classical jobs (paper §2.4, following ref [25]).

"Recent work shows that substantial improvements to resource
utilization is possible by allowing the application to dynamically grow
or shrink at run time, so-called malleable jobs."

Model: a classical post-processing task with ``work`` CPU-seconds and
an Amdahl serial fraction.  Its instantaneous speed depends on the CPUs
currently granted; a :class:`MalleablePool` re-divides a fixed CPU pool
equally among live tasks whenever membership changes (grow on
departure, shrink on arrival).  The C4 experiment compares this against
static allocation on SQD-style pattern-B workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SchedulerError

__all__ = ["MalleablePool", "MalleableTask"]


@dataclass
class MalleableTask:
    """One resizable classical task."""

    name: str
    work_cpu_seconds: float
    serial_fraction: float = 0.05
    min_cpus: int = 1
    max_cpus: int = 64
    cpus: int = 0
    remaining_work: float = field(init=False)
    finished_at: float | None = None

    def __post_init__(self) -> None:
        if self.work_cpu_seconds <= 0:
            raise SchedulerError("work must be positive")
        if not (0.0 <= self.serial_fraction <= 1.0):
            raise SchedulerError("serial fraction must be in [0,1]")
        if self.min_cpus < 1 or self.max_cpus < self.min_cpus:
            raise SchedulerError("bad cpu bounds")
        self.remaining_work = self.work_cpu_seconds

    def speedup(self, cpus: int) -> float:
        """Amdahl speedup at ``cpus`` relative to 1 CPU."""
        if cpus < 1:
            return 0.0
        s = self.serial_fraction
        return 1.0 / (s + (1.0 - s) / cpus)

    def rate(self) -> float:
        """Work units consumed per wall-clock second at current width."""
        return self.speedup(self.cpus)

    def time_to_finish(self) -> float:
        rate = self.rate()
        return float("inf") if rate <= 0 else self.remaining_work / rate


class MalleablePool:
    """Fixed CPU pool dividing capacity equally among live tasks.

    Event-driven analytic simulation: :meth:`run` advances from one
    task-completion to the next, resizing at each boundary.  Returns
    per-task finish times; deterministic and exact, so policy deltas in
    the benchmarks are not noise.
    """

    def __init__(self, total_cpus: int, malleable: bool = True) -> None:
        if total_cpus < 1:
            raise SchedulerError("pool needs >= 1 cpu")
        self.total_cpus = total_cpus
        self.malleable = malleable

    def _assign(self, tasks: list[MalleableTask]) -> None:
        live = [t for t in tasks if t.remaining_work > 1e-12]
        if not live:
            return
        share = max(1, self.total_cpus // len(live))
        for task in live:
            task.cpus = int(min(task.max_cpus, max(task.min_cpus, share)))

    def run(
        self,
        tasks: list[MalleableTask],
        static_cpus: int | None = None,
        start_time: float = 0.0,
    ) -> dict[str, float]:
        """Run all tasks to completion; returns {name: finish_time}.

        With ``malleable=False`` every task is pinned to ``static_cpus``
        (default: equal split of the pool at t=0) for its whole life —
        the rigid baseline.
        """
        tasks = list(tasks)
        if not tasks:
            return {}
        if self.malleable:
            self._assign(tasks)
        else:
            width = static_cpus or max(1, self.total_cpus // len(tasks))
            for task in tasks:
                task.cpus = int(min(task.max_cpus, max(task.min_cpus, width)))

        now = start_time
        finish: dict[str, float] = {}
        live = [t for t in tasks if t.remaining_work > 1e-12]
        guard = 0
        while live:
            guard += 1
            if guard > 10 * len(tasks) + 100:
                raise SchedulerError("malleable pool failed to converge")
            # rigid mode must respect the pool size: only the first
            # pool/width tasks run concurrently, the rest wait.
            if self.malleable:
                running = live
            else:
                width = live[0].cpus
                concurrent = max(1, self.total_cpus // max(1, width))
                running = live[:concurrent]
            dt = min(t.time_to_finish() for t in running)
            for task in running:
                task.remaining_work -= task.rate() * dt
            now += dt
            done = [t for t in live if t.remaining_work <= 1e-9]
            for task in done:
                task.remaining_work = 0.0
                task.finished_at = now
                finish[task.name] = now
            live = [t for t in live if t.remaining_work > 1e-9]
            if self.malleable:
                self._assign(live)
        return finish

    def makespan(self, tasks: list[MalleableTask], **kwargs) -> float:
        finish = self.run(tasks, **kwargs)
        return max(finish.values()) if finish else 0.0
