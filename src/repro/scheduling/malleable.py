"""Malleable classical jobs (paper §2.4, following ref [25]).

"Recent work shows that substantial improvements to resource
utilization is possible by allowing the application to dynamically grow
or shrink at run time, so-called malleable jobs."

Model: a classical post-processing task with ``work`` CPU-seconds and
an Amdahl serial fraction.  Its instantaneous speed depends on the CPUs
currently granted; a :class:`MalleablePool` re-divides a fixed CPU pool
equally among live tasks whenever membership changes (grow on
departure, shrink on arrival).  The C4 experiment compares this against
static allocation on SQD-style pattern-B workloads.

Two levels of malleability live here:

* **nodes within a site** — :class:`MalleablePool` / :class:`MalleableTask`
  resize CPU grants at task boundaries,
* **sites within a federation** — :class:`ShareLedger` /
  :class:`SiteShare` divide the *units* (iteration bursts) of one
  iterative hybrid job across sites, with preemption-safe checkpoints
  at unit boundaries: completed units are never redone, an abandoned
  in-flight unit returns to the pool intact, and grow/shrink only
  changes who runs the units that have not started yet.  The
  federation broker's resize loop drives this ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SchedulerError

__all__ = ["MalleablePool", "MalleableTask", "ShareLedger", "SiteShare"]


@dataclass
class MalleableTask:
    """One resizable classical task."""

    name: str
    work_cpu_seconds: float
    serial_fraction: float = 0.05
    min_cpus: int = 1
    max_cpus: int = 64
    cpus: int = 0
    remaining_work: float = field(init=False)
    finished_at: float | None = None

    def __post_init__(self) -> None:
        if self.work_cpu_seconds <= 0:
            raise SchedulerError("work must be positive")
        if not (0.0 <= self.serial_fraction <= 1.0):
            raise SchedulerError("serial fraction must be in [0,1]")
        if self.min_cpus < 1 or self.max_cpus < self.min_cpus:
            raise SchedulerError("bad cpu bounds")
        self.remaining_work = self.work_cpu_seconds

    def speedup(self, cpus: int) -> float:
        """Amdahl speedup at ``cpus`` relative to 1 CPU."""
        if cpus < 1:
            return 0.0
        s = self.serial_fraction
        return 1.0 / (s + (1.0 - s) / cpus)

    def rate(self) -> float:
        """Work units consumed per wall-clock second at current width."""
        return self.speedup(self.cpus)

    def time_to_finish(self) -> float:
        rate = self.rate()
        return float("inf") if rate <= 0 else self.remaining_work / rate


class MalleablePool:
    """Fixed CPU pool dividing capacity equally among live tasks.

    Event-driven analytic simulation: :meth:`run` advances from one
    task-completion to the next, resizing at each boundary.  Returns
    per-task finish times; deterministic and exact, so policy deltas in
    the benchmarks are not noise.
    """

    def __init__(self, total_cpus: int, malleable: bool = True) -> None:
        if total_cpus < 1:
            raise SchedulerError("pool needs >= 1 cpu")
        self.total_cpus = total_cpus
        self.malleable = malleable

    def _assign(self, tasks: list[MalleableTask]) -> None:
        live = [t for t in tasks if t.remaining_work > 1e-12]
        if not live:
            return
        share = max(1, self.total_cpus // len(live))
        grants = [
            int(min(t.max_cpus, max(t.min_cpus, share))) for t in live
        ]
        if sum(grants) > self.total_cpus:
            # oversubscribed (too many tasks, or min_cpus floors exceed
            # the equal share): fall back to bare min_cpus grants and
            # give the overflow zero CPUs — those tasks wait for the
            # next resize boundary instead of running on invented
            # capacity.  A task whose min_cpus alone exceeds the pool
            # surfaces as a loud convergence error, never silent magic.
            budget = self.total_cpus
            for task in live:
                if budget >= task.min_cpus:
                    task.cpus = task.min_cpus
                    budget -= task.min_cpus
                else:
                    task.cpus = 0
            # top up leftover budget round-robin over the admitted
            # tasks (a huge min_cpus floor skipping the queue must not
            # strand the CPUs it could not claim)
            admitted = [t for t in live if t.cpus > 0]
            while budget > 0:
                grew = False
                for task in admitted:
                    if budget > 0 and task.cpus < task.max_cpus:
                        task.cpus += 1
                        budget -= 1
                        grew = True
                if not grew:
                    break
            return
        for task, grant in zip(live, grants, strict=True):
            task.cpus = grant

    def run(
        self,
        tasks: list[MalleableTask],
        static_cpus: int | None = None,
        start_time: float = 0.0,
    ) -> dict[str, float]:
        """Run all tasks to completion; returns {name: finish_time}.

        With ``malleable=False`` every task is pinned to ``static_cpus``
        (default: equal split of the pool at t=0) for its whole life —
        the rigid baseline.
        """
        tasks = list(tasks)
        if not tasks:
            return {}
        if self.malleable:
            self._assign(tasks)
        else:
            width = static_cpus or max(1, self.total_cpus // len(tasks))
            for task in tasks:
                task.cpus = int(min(task.max_cpus, max(task.min_cpus, width)))

        now = start_time
        finish: dict[str, float] = {}
        live = [t for t in tasks if t.remaining_work > 1e-12]
        guard = 0
        while live:
            guard += 1
            if guard > 10 * len(tasks) + 100:
                raise SchedulerError("malleable pool failed to converge")
            # rigid mode must respect the pool size: only the first
            # pool/width tasks run concurrently, the rest wait.
            if self.malleable:
                running = [t for t in live if t.cpus >= 1]
                if not running:
                    raise SchedulerError("no task holds a CPU grant")
            else:
                width = live[0].cpus
                concurrent = max(1, self.total_cpus // max(1, width))
                running = live[:concurrent]
            dt = min(t.time_to_finish() for t in running)
            for task in running:
                task.remaining_work -= task.rate() * dt
            now += dt
            done = [t for t in live if t.remaining_work <= 1e-9]
            for task in done:
                task.remaining_work = 0.0
                task.finished_at = now
                finish[task.name] = now
            live = [t for t in live if t.remaining_work > 1e-9]
            if self.malleable:
                self._assign(live)
        return finish

    def makespan(self, tasks: list[MalleableTask], **kwargs) -> float:
        finish = self.run(tasks, **kwargs)
        return max(finish.values()) if finish else 0.0


# ---------------------------------------------------------------------------
# Site-aware shares (cross-site malleability)
# ---------------------------------------------------------------------------


@dataclass
class SiteShare:
    """One site's slice of an iterative malleable job."""

    site: str
    weight: float = 1.0
    completed_units: int = 0
    retired: bool = False

    @property
    def active(self) -> bool:
        return not self.retired and self.weight > 0.0


class ShareLedger:
    """Divide the work units of one iterative job across sites.

    A *unit* is one iteration burst — the natural preemption boundary of
    an iterative hybrid job.  The ledger is the bookkeeping half of
    cross-site malleability; a controller (the federation broker's
    resize loop) owns the policy half and calls:

    * :meth:`set_weight` / :meth:`retire` — grow, shrink, or evict a
      site's share.  Only *future* units move; nothing in flight is
      preempted mid-unit,
    * :meth:`claim` — hand a site its next unit when the current
      proportional allocation grants it one,
    * :meth:`checkpoint` — durably record a finished unit (never
      redone, even if the site later dies),
    * :meth:`abandon` — return an in-flight unit to the pending pool
      intact, counting one attempt against it.

    ``freeze()`` switches the ledger to rigid mode: pending units are
    pre-assigned round-robin and never rebalanced — the no-malleability
    baseline the ablation benchmark compares against.
    """

    def __init__(self, total_units: int, max_attempts: int = 3) -> None:
        if total_units < 1:
            raise SchedulerError("a malleable job needs >= 1 unit")
        if max_attempts < 1:
            raise SchedulerError("max_attempts must be >= 1")
        self.total_units = total_units
        self.max_attempts = max_attempts
        self.shares: dict[str, SiteShare] = {}
        self._pending: list[int] = list(range(total_units))
        self._in_flight: dict[int, str] = {}
        self._completed: dict[int, str] = {}
        self._attempts: dict[int, int] = {}
        self._frozen: dict[int, str] | None = None

    # -- membership / weights ------------------------------------------------

    def add_site(self, site: str, weight: float = 1.0) -> SiteShare:
        if site in self.shares:
            raise SchedulerError(f"site {site!r} already holds a share")
        if weight < 0:
            raise SchedulerError("share weight must be >= 0")
        share = SiteShare(site=site, weight=weight)
        self.shares[site] = share
        return share

    def set_weight(self, site: str, weight: float) -> None:
        if weight < 0:
            raise SchedulerError("share weight must be >= 0")
        share = self._share(site)
        if share.retired:
            raise SchedulerError(f"site {site!r} share is retired")
        if self._frozen is not None:
            raise SchedulerError("frozen ledgers cannot be rebalanced")
        share.weight = weight

    def retire(self, site: str) -> list[int]:
        """Evict a site: its in-flight units return to the pool and its
        pending (frozen-mode) units are reassigned.  Returns the
        reclaimed in-flight unit indices so the controller can cancel
        the matching site tasks."""
        share = self._share(site)
        share.retired = True
        share.weight = 0.0
        reclaimed = [u for u, s in self._in_flight.items() if s == site]
        for unit in reclaimed:
            self.abandon(unit)
        if self._frozen is not None:
            survivors = [s.site for s in self.shares.values() if s.active]
            orphans = [u for u in self._pending if self._frozen.get(u) == site]
            if survivors:
                for i, unit in enumerate(orphans):
                    self._frozen[unit] = survivors[i % len(survivors)]
        return reclaimed

    def revive(self, site: str, weight: float = 1.0) -> None:
        """Re-activate a retired share (a recovered site rejoining).
        Allowed even on frozen ledgers — failover is not rebalancing."""
        if weight < 0:
            raise SchedulerError("share weight must be >= 0")
        share = self._share(site)
        if not share.retired:
            raise SchedulerError(f"site {site!r} share is not retired")
        share.retired = False
        share.weight = weight

    def weight(self, site: str) -> float:
        return self._share(site).weight

    def active_sites(self) -> list[str]:
        return sorted(s.site for s in self.shares.values() if s.active)

    def _share(self, site: str) -> SiteShare:
        if site not in self.shares:
            raise SchedulerError(f"site {site!r} holds no share")
        return self.shares[site]

    # -- rigid baseline -------------------------------------------------------

    def freeze(self) -> None:
        """Pin every pending unit to a site round-robin; disables
        rebalancing (the rigid baseline)."""
        sites = self.active_sites()
        if not sites:
            raise SchedulerError("cannot freeze a ledger with no active site")
        self._frozen = {
            unit: sites[i % len(sites)] for i, unit in enumerate(self._pending)
        }

    @property
    def frozen(self) -> bool:
        return self._frozen is not None

    def assign_orphans(self) -> None:
        """Frozen mode: re-pin pending units whose assigned site is no
        longer active onto the current active set, round-robin.  Covers
        the case where *every* shareholder died before replacements
        joined — :meth:`retire` can only reassign to survivors that
        exist at retire time."""
        if self._frozen is None:
            return
        active = self.active_sites()
        if not active:
            return
        orphans = [
            unit
            for unit in self._pending
            if self._frozen.get(unit) not in active
        ]
        for i, unit in enumerate(orphans):
            self._frozen[unit] = active[i % len(active)]

    # -- dispatch cycle --------------------------------------------------------

    def allocation(self) -> dict[str, int]:
        """Largest-remainder split of outstanding (pending + in-flight)
        units over active share weights — the target concurrent load per
        site the controller dispatches toward."""
        active = [s for s in self.shares.values() if s.active]
        outstanding = len(self._pending) + len(self._in_flight)
        alloc = {s.site: 0 for s in active}
        if not active or outstanding == 0:
            return alloc
        if self._frozen is not None:
            for unit in self._pending:
                site = self._frozen[unit]
                if site in alloc:
                    alloc[site] += 1
            for unit, site in self._in_flight.items():
                if site in alloc:
                    alloc[site] += 1
            return alloc
        total_weight = sum(s.weight for s in active)
        quota = {s.site: outstanding * s.weight / total_weight for s in active}
        for site, q in quota.items():
            alloc[site] = int(q)
        leftover = outstanding - sum(alloc.values())
        by_remainder = sorted(
            quota, key=lambda site: (-(quota[site] - alloc[site]), site)
        )
        for site in by_remainder[:leftover]:
            alloc[site] += 1
        return alloc

    def in_flight_at(self, site: str) -> list[int]:
        return sorted(u for u, s in self._in_flight.items() if s == site)

    def capacity(self, site: str) -> int:
        """How many more units the current allocation lets ``site`` start."""
        share = self.shares.get(site)
        if share is None or not share.active:
            return 0
        alloc = self.allocation().get(site, 0)
        return max(0, alloc - len(self.in_flight_at(site)))

    def claim(self, site: str) -> int | None:
        """Hand ``site`` its next unit, or None if its share is spent."""
        if self.capacity(site) <= 0 or not self._pending:
            return None
        if self._frozen is not None:
            mine = [u for u in self._pending if self._frozen[u] == site]
            if not mine:
                return None
            unit = mine[0]
        else:
            unit = self._pending[0]
        self._pending.remove(unit)
        self._in_flight[unit] = site
        return unit

    def checkpoint(self, unit: int) -> None:
        """Durably record ``unit`` as done (preemption-safe boundary)."""
        site = self._in_flight.pop(unit, None)
        if site is None:
            raise SchedulerError(f"unit {unit} is not in flight")
        self._completed[unit] = site
        self.shares[site].completed_units += 1

    def abandon(self, unit: int) -> int:
        """Return an in-flight unit to the pool; returns its attempt
        count so the controller can enforce bounded retries."""
        if self._in_flight.pop(unit, None) is None:
            raise SchedulerError(f"unit {unit} is not in flight")
        self._attempts[unit] = self._attempts.get(unit, 0) + 1
        self._pending.append(unit)
        self._pending.sort()
        return self._attempts[unit]

    def reclaim(self, unit: int) -> None:
        """Voluntarily pull back a unit that never started executing
        (resize-driven redistribution): no work is lost, so no attempt
        is charged against the unit's retry budget."""
        if self._in_flight.pop(unit, None) is None:
            raise SchedulerError(f"unit {unit} is not in flight")
        self._pending.append(unit)
        self._pending.sort()

    def attempts(self, unit: int) -> int:
        return self._attempts.get(unit, 0)

    def exhausted(self, unit: int) -> bool:
        return self.attempts(unit) >= self.max_attempts

    # -- progress ---------------------------------------------------------------

    @property
    def completed_units(self) -> int:
        return len(self._completed)

    @property
    def pending_units(self) -> int:
        return len(self._pending)

    @property
    def in_flight_units(self) -> int:
        return len(self._in_flight)

    @property
    def done(self) -> bool:
        return len(self._completed) == self.total_units

    def completions_by_site(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for site in self._completed.values():
            out[site] = out.get(site, 0) + 1
        return out
