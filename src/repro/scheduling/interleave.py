"""Pattern-aware interleaving: Table 1's "kill QPU idle time".

A hybrid job alternates QPU bursts with classical compute.  Running
such jobs strictly one-at-a-time leaves the QPU idle during every
classical phase; running too many concurrently overloads the QPU queue
without helping (the QPU is serial).  The planner therefore co-schedules
jobs so the *sum of expected QPU demand fractions* stays near 1:

    fraction(job) = expected_qpu_seconds / (expected_qpu + expected_classical)

* :class:`SequentialPlanner` — the pattern-blind baseline (one job at a
  time, Table 1's hint only for pure pattern-A streams),
* :class:`PatternAwarePlanner` — greedy bin-packing of QPU fractions,
  using the ``--hint`` (or declared time budgets) of each job.

Planners emit an :class:`InterleavePlan`: an ordered sequence of
*waves*; all jobs in a wave run concurrently, waves run back-to-back.
The Table-1 benchmark executes both plans on the same job set and
reports QPU utilization, idle time, classical utilization and makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SchedulerError
from .patterns import WorkloadPattern, classify_pattern

__all__ = ["HybridJobEstimate", "InterleavePlan", "PatternAwarePlanner", "SequentialPlanner"]


@dataclass(frozen=True)
class HybridJobEstimate:
    """What the planner knows about one hybrid job (from hints/budgets)."""

    job_name: str
    qpu_seconds: float
    classical_seconds: float

    @property
    def qpu_fraction(self) -> float:
        total = self.qpu_seconds + self.classical_seconds
        return self.qpu_seconds / total if total > 0 else 0.0

    @property
    def pattern(self) -> WorkloadPattern:
        return classify_pattern(self.qpu_seconds, self.classical_seconds)

    @property
    def duration_alone(self) -> float:
        return self.qpu_seconds + self.classical_seconds


@dataclass
class InterleavePlan:
    """Ordered waves of concurrently-running jobs."""

    waves: list[list[HybridJobEstimate]] = field(default_factory=list)

    @property
    def num_waves(self) -> int:
        return len(self.waves)

    def jobs(self) -> list[HybridJobEstimate]:
        return [job for wave in self.waves for job in wave]

    def predicted_makespan(self) -> float:
        """Lower-bound makespan: each wave lasts as long as its longest
        member (QPU contention may stretch it; the bench measures truth)."""
        total = 0.0
        for wave in self.waves:
            qpu_in_wave = sum(j.qpu_seconds for j in wave)
            longest = max((j.duration_alone for j in wave), default=0.0)
            total += max(longest, qpu_in_wave)
        return total

    def predicted_qpu_utilization(self) -> float:
        makespan = self.predicted_makespan()
        if makespan == 0:
            return 0.0
        return sum(j.qpu_seconds for j in self.jobs()) / makespan


class SequentialPlanner:
    """Baseline: strict one-job-at-a-time (Table 1 pattern-A hint,
    misapplied to every pattern — which is what makes it a baseline)."""

    name = "sequential"

    def plan(self, jobs: list[HybridJobEstimate]) -> InterleavePlan:
        return InterleavePlan(waves=[[job] for job in jobs])


class PatternAwarePlanner:
    """Greedy QPU-fraction bin packing.

    Jobs are sorted by descending QPU fraction; each wave is filled
    until adding the next job would push the wave's summed fraction
    over ``target_load``.  CC-heavy jobs (tiny fractions) therefore
    slot in beside QC-heavy ones — the interleaving Table 1 prescribes —
    while pure QC-heavy streams degenerate to near-sequential waves,
    matching the pattern-A hint.
    """

    name = "pattern-aware"

    def __init__(self, target_load: float = 1.0, max_concurrency: int = 8) -> None:
        if target_load <= 0:
            raise SchedulerError("target_load must be positive")
        if max_concurrency < 1:
            raise SchedulerError("max_concurrency must be >= 1")
        self.target_load = target_load
        self.max_concurrency = max_concurrency

    def plan(self, jobs: list[HybridJobEstimate]) -> InterleavePlan:
        remaining = sorted(jobs, key=lambda j: (-j.qpu_fraction, j.job_name))
        waves: list[list[HybridJobEstimate]] = []
        while remaining:
            wave: list[HybridJobEstimate] = []
            load = 0.0
            still: list[HybridJobEstimate] = []
            for job in remaining:
                if (
                    len(wave) < self.max_concurrency
                    and (not wave or load + job.qpu_fraction <= self.target_load + 1e-9)
                ):
                    wave.append(job)
                    load += job.qpu_fraction
                else:
                    still.append(job)
            waves.append(wave)
            remaining = still
        return InterleavePlan(waves=waves)
