"""Federated accounting: per-tenant metering, budgets, and fair share.

The single-site stack already accounts for itself —
:class:`~repro.cluster.accounting.AccountingDB` records cluster jobs,
:class:`~repro.daemon.cloud.CloudTenant` caps one gateway's shots.  The
federation layer (``repro.federation``) routes and resizes jobs
*across* sites, so a tenant spilling over three sites used to get three
disconnected ledgers and unlimited effective quota.  This package is
the cross-site accounting plane that closes that hole:

* :mod:`rates`   — :class:`SiteRateCard` / :class:`RateBook`: each site
  prices CPU-seconds, QPU shots, and retries independently,
* :mod:`ledger`  — :class:`UsageLedger`: one append-only, priced event
  stream for the whole federation; one :class:`Invoice` per tenant,
* :mod:`budget`  — :class:`TenantBudget` / :class:`BudgetBook`:
  federation-wide spending caps with reject-or-hold admission,
* :mod:`arbiter` — :class:`FairShareArbiter`: weighted max-min division
  of scarce slots across contending malleable jobs,
* :mod:`service` — :class:`FederationAccounting`: the facade the
  broker wires in.
"""

from .arbiter import FairShareArbiter
from .budget import AdmissionDecision, BudgetAction, BudgetBook, TenantBudget
from .ledger import Invoice, InvoiceLine, UsageEvent, UsageLedger
from .rates import RateBook, SiteRateCard, UsageKind
from .service import FederationAccounting

__all__ = [
    "AdmissionDecision",
    "BudgetAction",
    "BudgetBook",
    "FairShareArbiter",
    "FederationAccounting",
    "Invoice",
    "InvoiceLine",
    "RateBook",
    "SiteRateCard",
    "TenantBudget",
    "UsageEvent",
    "UsageKind",
    "UsageLedger",
]
