"""Tenant budgets and federation-level admission control.

A :class:`TenantBudget` caps what one tenant may spend across the whole
federation (the per-site quota models — cloud-gateway shot quotas,
cluster allocations — stay in force underneath; this is the cross-site
cap they cannot provide).  The :class:`BudgetBook` owns every tenant's
budget, computes remaining headroom against the shared
:class:`~repro.accounting.ledger.UsageLedger`, and answers the broker's
admission question: admit, hold, or reject.

Enforcement uses an encumbrance model: when the broker places a job it
**reserves** the job's priced shot cost against the tenant's budget,
and on completion the reservation is released as the actual usage is
metered.  ``remaining = limit - metered spend - live reservations``, so
admission sees in-flight work immediately instead of waiting for the
completion sweep — a queue full of uncompleted jobs cannot blow past
the cap.  Only the classical seconds (unknown until a job finishes)
land post-paid, so overshoot is bounded by one job's metering lag.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import AccountingError
from .ledger import UsageLedger

__all__ = ["AdmissionDecision", "BudgetAction", "BudgetBook", "TenantBudget"]


class BudgetAction(enum.Enum):
    """What an exhausted budget does to new submissions."""

    REJECT = "reject"   # refuse loudly (BudgetExceededError at the broker)
    HOLD = "hold"       # park the job; it places when the budget is topped up


class AdmissionDecision(enum.Enum):
    ADMIT = "admit"
    HOLD = "hold"
    REJECT = "reject"


@dataclass
class TenantBudget:
    """One tenant's federation-wide spending cap."""

    tenant: str
    limit: float
    action: BudgetAction = BudgetAction.REJECT

    def __post_init__(self) -> None:
        if self.limit < 0:
            raise AccountingError("budget limit must be >= 0")


class BudgetBook:
    """All tenant budgets of one federation, backed by one ledger."""

    def __init__(self, ledger: UsageLedger) -> None:
        self.ledger = ledger
        self._budgets: dict[str, TenantBudget] = {}
        self._reservations: dict[str, tuple[str, float]] = {}  # key -> (tenant, cost)
        # running per-tenant totals so remaining()/admission() — called
        # per submit, per candidate site in cost-aware scoring, and per
        # reconcile gauge refresh — never scan the reservation table
        self._reserved_total: dict[str, float] = {}

    def set_budget(
        self,
        tenant: str,
        limit: float,
        action: BudgetAction = BudgetAction.REJECT,
    ) -> TenantBudget:
        budget = TenantBudget(tenant=tenant, limit=limit, action=action)
        self._budgets[tenant] = budget
        return budget

    def grant(self, tenant: str, extra: float) -> TenantBudget:
        """Top up a tenant's limit (the release path for held jobs)."""
        if extra < 0:
            raise AccountingError("budget grant must be >= 0")
        budget = self.budget(tenant)
        if budget is None:
            raise AccountingError(f"tenant {tenant!r} has no budget to top up")
        budget.limit += extra
        return budget

    def budget(self, tenant: str) -> TenantBudget | None:
        return self._budgets.get(tenant)

    def budgets(self) -> dict[str, TenantBudget]:
        return dict(self._budgets)

    # -- reservations (encumbrance) ------------------------------------------

    def reserve(self, tenant: str, key: str, cost: float) -> None:
        """Encumber ``cost`` against ``tenant`` for in-flight work
        ``key`` (a job or unit id); replaces any prior reservation under
        the same key (a re-placement re-prices at the new site)."""
        if cost < 0:
            raise AccountingError("reserved cost must be >= 0")
        prior = self._reservations.get(key)
        if prior is not None:
            self._reserved_total[prior[0]] -= prior[1]
        self._reservations[key] = (tenant, cost)
        self._reserved_total[tenant] = self._reserved_total.get(tenant, 0.0) + cost

    def release(self, key: str) -> None:
        """Drop the reservation for ``key`` (completed, abandoned, or
        failed work); unknown keys are a no-op so every terminal path
        can release unconditionally."""
        entry = self._reservations.pop(key, None)
        if entry is not None:
            self._reserved_total[entry[0]] -= entry[1]

    def reserved(self, tenant: str) -> float:
        # floored at zero: repeated add/subtract of floats may drift a
        # hair below it once every reservation is released
        return max(0.0, self._reserved_total.get(tenant, 0.0))

    # -- headroom ------------------------------------------------------------

    def remaining(self, tenant: str) -> float:
        """Headroom before exhaustion (metered spend plus live
        reservations); +inf for unbudgeted tenants."""
        budget = self._budgets.get(tenant)
        if budget is None:
            return float("inf")
        return budget.limit - self.ledger.spend(tenant) - self.reserved(tenant)

    def exhausted(self, tenant: str) -> bool:
        return self.remaining(tenant) <= 0.0

    def admission(self, tenant: str) -> AdmissionDecision:
        """The broker's intake question for one new submission."""
        budget = self._budgets.get(tenant)
        if budget is None or not self.exhausted(tenant):
            return AdmissionDecision.ADMIT
        if budget.action is BudgetAction.HOLD:
            return AdmissionDecision.HOLD
        return AdmissionDecision.REJECT
