"""Per-site pricing: rate cards and the federation's rate book.

Each site of a federation prices its resources independently — a
national HPC center charging nominal core-hours, a commercial cloud QPU
charging per shot.  A :class:`SiteRateCard` fixes the unit prices one
site charges; the :class:`RateBook` is the broker's lookup table from
site name to card, with a default card for sites that never published
one (every metered event is priced, even from late-joining sites).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import AccountingError

__all__ = ["RateBook", "SiteRateCard", "UsageKind"]


class UsageKind(enum.Enum):
    """The three metered quantities of the federation."""

    CPU_SECONDS = "cpu_seconds"   # classical runtime on site resources
    QPU_SHOTS = "qpu_shots"       # quantum shots executed
    RETRIES = "retries"           # abandoned placements / malleable-unit retries


@dataclass(frozen=True)
class SiteRateCard:
    """One site's published unit prices (in federation credits)."""

    site: str
    cpu_second_price: float = 0.001
    qpu_shot_price: float = 0.01
    #: flat surcharge per abandoned placement or malleable-unit retry —
    #: sites that crash mid-run still bill the rework they caused, so
    #: the invoice explains *why* a flaky federation costs more
    retry_surcharge: float = 0.0
    currency: str = "credits"

    def __post_init__(self) -> None:
        for field_name in ("cpu_second_price", "qpu_shot_price", "retry_surcharge"):
            if getattr(self, field_name) < 0:
                raise AccountingError(f"{field_name} must be >= 0")

    def unit_price(self, kind: UsageKind) -> float:
        if kind is UsageKind.CPU_SECONDS:
            return self.cpu_second_price
        if kind is UsageKind.QPU_SHOTS:
            return self.qpu_shot_price
        return self.retry_surcharge

    def price(self, kind: UsageKind, quantity: float) -> float:
        if quantity < 0:
            raise AccountingError("metered quantity must be >= 0")
        return self.unit_price(kind) * quantity


class RateBook:
    """site name -> :class:`SiteRateCard`, with a default for the rest."""

    def __init__(self, default: SiteRateCard | None = None) -> None:
        self.default = default or SiteRateCard(site="*")
        self._cards: dict[str, SiteRateCard] = {}

    def publish(self, card: SiteRateCard) -> None:
        """Install (or replace) one site's card."""
        self._cards[card.site] = card

    def card_for(self, site: str) -> SiteRateCard:
        return self._cards.get(site, self.default)

    def sites(self) -> list[str]:
        return sorted(self._cards)
