"""The federation-wide usage ledger and per-tenant invoices.

One :class:`UsageLedger` serves a whole federation: every site's
consumption lands here as immutable, priced :class:`UsageEvent` rows,
so a tenant spilling over three sites still has exactly one ledger —
and gets exactly one :class:`Invoice` whose per-site lines are priced
at each site's own :class:`~repro.accounting.rates.SiteRateCard`.

Feeds:

* the federation broker meters fixed-size job completions (shots +
  classical seconds) and failover retries,
* the malleable resize loop meters per-unit completions and
  unit retries,
* a site's local :class:`~repro.cluster.accounting.AccountingDB` can be
  bulk-ingested (:meth:`UsageLedger.ingest_accounting_db`) so batch
  cluster jobs bill to the same federation principal as brokered ones.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..errors import AccountingError
from .rates import RateBook, UsageKind

__all__ = ["Invoice", "InvoiceLine", "UsageEvent", "UsageLedger"]


@dataclass(frozen=True)
class UsageEvent:
    """One immutable metered-consumption row."""

    tenant: str
    site: str
    kind: UsageKind
    quantity: float
    unit_price: float
    cost: float
    time: float
    job_id: str = ""


@dataclass(frozen=True)
class InvoiceLine:
    """One (site, kind) aggregate on an invoice."""

    site: str
    kind: UsageKind
    quantity: float
    unit_price: float
    cost: float


@dataclass(frozen=True)
class Invoice:
    """The single cross-site bill of one tenant."""

    tenant: str
    issued_at: float
    currency: str
    lines: tuple[InvoiceLine, ...]

    @property
    def total(self) -> float:
        return sum(line.cost for line in self.lines)

    def site_subtotal(self, site: str) -> float:
        return sum(line.cost for line in self.lines if line.site == site)

    def sites(self) -> list[str]:
        return sorted({line.site for line in self.lines})


class UsageLedger:
    """Append-only, priced usage metering for one federation."""

    def __init__(self, rates: RateBook | None = None) -> None:
        self.rates = rates or RateBook()
        self._events: list[UsageEvent] = []
        #: (site, job_id) pairs already pulled from a site AccountingDB,
        #: so repeated ingestion sweeps never double-bill
        self._ingested: set[tuple[str, int]] = set()
        # running aggregates so the hot callers (budget admission on
        # every submit, cost-aware scoring per candidate site, the
        # reconcile gauges) never re-scan the full event history
        self._spend: dict[str, float] = {}
        self._spend_site: dict[tuple[str, str], float] = {}
        self._quantity: dict[tuple[str, UsageKind], float] = {}
        #: terminal job records spilled from broker memory by
        #: evict_terminal — the durable archive behind the hot tables
        self._archived: list[dict] = []

    # -- metering -----------------------------------------------------------

    def meter(
        self,
        tenant: str,
        site: str,
        kind: UsageKind,
        quantity: float,
        time: float,
        job_id: str = "",
    ) -> UsageEvent:
        """Record (and price) one consumption event."""
        if not tenant:
            raise AccountingError("metered usage needs a tenant")
        if quantity < 0:
            raise AccountingError("metered quantity must be >= 0")
        card = self.rates.card_for(site)
        event = UsageEvent(
            tenant=tenant,
            site=site,
            kind=kind,
            quantity=float(quantity),
            unit_price=card.unit_price(kind),
            cost=card.price(kind, quantity),
            time=time,
            job_id=job_id,
        )
        self._events.append(event)
        self._spend[tenant] = self._spend.get(tenant, 0.0) + event.cost
        self._spend_site[(tenant, site)] = (
            self._spend_site.get((tenant, site), 0.0) + event.cost
        )
        self._quantity[(tenant, kind)] = (
            self._quantity.get((tenant, kind), 0.0) + event.quantity
        )
        return event

    def ingest_accounting_db(
        self,
        site: str,
        db,
        now: float = 0.0,
        tenant_of: Callable[[str], str] | None = None,
    ) -> int:
        """Pull a site-local :class:`~repro.cluster.accounting.AccountingDB`
        into the federation ledger as CPU-second events.

        ``tenant_of`` maps the site-local user name onto the federation
        principal; the default strips the ``fed:`` session prefix the
        broker's intake path stamps, so brokered and batch work by the
        same tenant land on one invoice.  Idempotent per (site, job_id):
        re-running the sweep never double-bills.  Returns the number of
        newly ingested records.
        """
        mapper = tenant_of or (lambda user: user.removeprefix("fed:"))
        ingested = 0
        for record in db.all():
            key = (site, record.job_id)
            if key in self._ingested:
                continue
            self._ingested.add(key)
            if record.cpu_seconds <= 0:
                continue  # never started (cancelled in queue): nothing consumed
            self.meter(
                mapper(record.user),
                site,
                UsageKind.CPU_SECONDS,
                record.cpu_seconds,
                now if record.end_time is None else record.end_time,
                job_id=f"{site}:{record.job_id}",
            )
            ingested += 1
        return ingested

    # -- terminal-job archive ------------------------------------------------

    def archive(self, record: dict) -> None:
        """Store one evicted terminal job record (broker spill path)."""
        self._archived.append(dict(record))

    def archived_jobs(self, tenant: str | None = None) -> list[dict]:
        if tenant is None:
            return [dict(r) for r in self._archived]
        return [dict(r) for r in self._archived if r.get("tenant") == tenant]

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def events(self, tenant: str | None = None) -> list[UsageEvent]:
        if tenant is None:
            return list(self._events)
        return [e for e in self._events if e.tenant == tenant]

    def tenants(self) -> list[str]:
        return sorted(self._spend)

    def spend(self, tenant: str) -> float:
        """Cumulative metered cost of one tenant across every site (O(1))."""
        return self._spend.get(tenant, 0.0)

    def spend_by_site(self, tenant: str) -> dict[str, float]:
        return {
            site: cost
            for (t, site), cost in self._spend_site.items()
            if t == tenant
        }

    def quantity(self, tenant: str, kind: UsageKind) -> float:
        return self._quantity.get((tenant, kind), 0.0)

    # -- invoicing ----------------------------------------------------------

    def invoice(self, tenant: str, now: float = 0.0) -> Invoice:
        """The tenant's single cross-site invoice: one line per
        (site, kind), priced at that site's card.  The invoice total
        equals the sum of the tenant's metered event costs exactly —
        lines aggregate costs, they are never re-priced."""
        groups: dict[tuple[str, UsageKind], list[UsageEvent]] = {}
        for event in self._events:
            if event.tenant != tenant:
                continue
            groups.setdefault((event.site, event.kind), []).append(event)
        lines = tuple(
            InvoiceLine(
                site=site,
                kind=kind,
                quantity=sum(e.quantity for e in events),
                unit_price=events[-1].unit_price,  # current published price
                cost=sum(e.cost for e in events),
            )
            for (site, kind), events in sorted(
                groups.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
            )
        )
        return Invoice(
            tenant=tenant,
            issued_at=now,
            currency=self.rates.default.currency,
            lines=lines,
        )
