"""FederationAccounting: the one object the broker wires in.

Bundles the four accounting concerns — metering
(:class:`~repro.accounting.ledger.UsageLedger`), pricing
(:class:`~repro.accounting.rates.RateBook`), enforcement
(:class:`~repro.accounting.budget.BudgetBook`), and cross-job fairness
(:class:`~repro.accounting.arbiter.FairShareArbiter`) — behind the
narrow surface the federation calls:

* ``admission(tenant)``        — may this submission enter right now?
* ``meter_completion(...)``    — a job/unit finished somewhere: bill it,
* ``meter_retry(...)``         — a placement was abandoned: bill the rework,
* ``invoice(tenant)``          — the tenant's single cross-site bill.

Construct one per federation and pass it to
:class:`~repro.federation.broker.FederationBroker`; a ``None``
accounting (the default) keeps the whole subsystem inert.
"""

from __future__ import annotations

from .arbiter import FairShareArbiter
from .budget import AdmissionDecision, BudgetAction, BudgetBook, TenantBudget
from .ledger import Invoice, UsageLedger
from .rates import RateBook, SiteRateCard, UsageKind

__all__ = ["FederationAccounting"]


class FederationAccounting:
    """The accounting plane of one federation."""

    def __init__(
        self,
        rates: RateBook | None = None,
        arbiter: FairShareArbiter | None = None,
    ) -> None:
        self.rates = rates or RateBook()
        self.ledger = UsageLedger(self.rates)
        self.budgets = BudgetBook(self.ledger)
        self.arbiter = arbiter or FairShareArbiter()

    # -- configuration (site/tenant onboarding) ------------------------------

    def publish_rate_card(self, card: SiteRateCard) -> None:
        self.rates.publish(card)

    def set_budget(
        self,
        tenant: str,
        limit: float,
        action: BudgetAction = BudgetAction.REJECT,
    ) -> TenantBudget:
        return self.budgets.set_budget(tenant, limit, action=action)

    def set_share_weight(self, tenant: str, weight: float) -> None:
        self.arbiter.set_weight(tenant, weight)

    # -- the broker's surface ------------------------------------------------

    def admission(self, tenant: str) -> AdmissionDecision:
        return self.budgets.admission(tenant)

    def can_afford(self, tenant: str, cost: float) -> bool:
        """Would a job *declaring* ``cost`` (a spec ``budget_hint``) fit
        in the tenant's remaining headroom?  Unbudgeted tenants always
        afford everything."""
        return self.budgets.remaining(tenant) >= cost

    def archive_job(self, record: dict) -> None:
        """Accept one terminal job record spilled from broker memory
        (see :meth:`FederationBroker.evict_terminal
        <repro.federation.broker.FederationBroker.evict_terminal>`)."""
        self.ledger.archive(record)

    def archived_jobs(self, tenant: str | None = None) -> list[dict]:
        return self.ledger.archived_jobs(tenant)

    def reserve_placement(
        self, tenant: str, site: str, *, shots: int, key: str
    ) -> None:
        """Encumber a placement's priced shot cost against the tenant's
        budget until the matching completion/abandonment releases it —
        admission sees in-flight work, not just the completion sweep."""
        cost = self.rates.card_for(site).price(UsageKind.QPU_SHOTS, shots)
        self.budgets.reserve(tenant, key, cost)

    def release_placement(self, key: str) -> None:
        self.budgets.release(key)

    def meter_completion(
        self,
        tenant: str,
        site: str,
        *,
        shots: int = 0,
        cpu_seconds: float = 0.0,
        now: float = 0.0,
        job_id: str = "",
    ) -> None:
        """Bill one finished job (or malleable unit) at ``site``.

        Every priced cost also feeds the arbiter's decayed-usage track
        (a no-op unless the arbiter has a half-life configured), so
        fair-share weights can discount recent heavy spenders.
        """
        if shots > 0:
            event = self.ledger.meter(
                tenant, site, UsageKind.QPU_SHOTS, shots, now, job_id=job_id
            )
            self.arbiter.observe_usage(tenant, event.cost, now)
        if cpu_seconds > 0:
            event = self.ledger.meter(
                tenant, site, UsageKind.CPU_SECONDS, cpu_seconds, now, job_id=job_id
            )
            self.arbiter.observe_usage(tenant, event.cost, now)

    def meter_retry(
        self, tenant: str, site: str, now: float = 0.0, job_id: str = ""
    ) -> None:
        """Bill one abandoned placement / malleable-unit retry."""
        event = self.ledger.meter(
            tenant, site, UsageKind.RETRIES, 1, now, job_id=job_id
        )
        self.arbiter.observe_usage(tenant, event.cost, now)

    # -- reporting -----------------------------------------------------------

    def invoice(self, tenant: str, now: float = 0.0) -> Invoice:
        return self.ledger.invoice(tenant, now=now)

    def spend(self, tenant: str) -> float:
        return self.ledger.spend(tenant)

    def remaining(self, tenant: str) -> float:
        return self.budgets.remaining(tenant)
