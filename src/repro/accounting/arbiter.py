"""Weighted max-min fair-share arbitration across federated jobs.

Two malleable jobs on one federation each run their own
:class:`~repro.scheduling.malleable.ShareLedger` resize loop — without
coupling, both would claim the full per-site outstanding-unit budget
and fairness between *jobs* would be whatever the site queues happen to
serve.  The :class:`FairShareArbiter` closes that gap: it divides a
scarce integer capacity (a site's concurrent-unit slots) among the
contending jobs by **weighted max-min** — progressive filling, the
classic water-filling discipline:

* every job is capped by its own demand (no slot is parked on a job
  with nothing left to run — the arbiter is work-conserving),
* surplus freed by small jobs flows to the still-hungry ones,
* among the hungry, slots land so that ``allocation / weight`` stays
  as even as possible — under saturation, allocations converge to the
  configured tenant weight ratio.

Weights attach to *tenants* (the federation principal), so every job a
tenant runs draws from one fair-share identity.

With ``half_life_s`` set, the arbiter also tracks **decayed usage** per
tenant (classic Slurm-style fair-share): every metered cost ages out
exponentially with the configured half-life, and
:meth:`FairShareArbiter.effective_weight` discounts the configured
weight by ``0.5 ** (decayed_usage / usage_scale)`` — a tenant that just
burned a lot of budget temporarily weighs less, recovering as its
usage decays.  With the default ``half_life_s=None`` the decay
machinery is inert and ``effective_weight`` equals ``weight`` exactly.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..errors import AccountingError

__all__ = ["FairShareArbiter"]


class FairShareArbiter:
    """Integer weighted max-min allocator with per-tenant weights."""

    def __init__(
        self,
        default_weight: float = 1.0,
        half_life_s: float | None = None,
        usage_scale: float = 100.0,
    ) -> None:
        if default_weight <= 0:
            raise AccountingError("default share weight must be > 0")
        if half_life_s is not None and half_life_s <= 0:
            raise AccountingError("usage half-life must be > 0")
        if usage_scale <= 0:
            raise AccountingError("usage_scale must be > 0")
        self.default_weight = default_weight
        #: decay half-life for observed usage (simulated seconds);
        #: ``None`` disables usage-based weight discounting entirely
        self.half_life_s = half_life_s
        #: usage units per halving of effective weight — the knee of
        #: the discount curve
        self.usage_scale = usage_scale
        self._weights: dict[str, float] = {}
        #: per-tenant ``(decayed_usage, as_of)`` pairs; usage is always
        #: decayed forward to the read/write time lazily
        self._usage: dict[str, tuple[float, float]] = {}
        #: bumped on every weight change — callers that cache an
        #: allocation (the resize loop's dirty-flag arbitration) key
        #: on this instead of comparing whole weight tables
        self.version = 0

    # -- weights ------------------------------------------------------------

    def set_weight(self, tenant: str, weight: float) -> None:
        if weight <= 0:
            raise AccountingError("share weight must be > 0")
        self._weights[tenant] = weight
        self.version += 1

    def weight(self, tenant: str) -> float:
        return self._weights.get(tenant, self.default_weight)

    def weights(self) -> dict[str, float]:
        return dict(self._weights)

    # -- decayed usage -------------------------------------------------------

    def observe_usage(self, tenant: str, cost: float, now: float) -> None:
        """Charge ``cost`` usage units to ``tenant`` at time ``now``.
        A no-op unless a half-life is configured, so wiring this into
        the metering path costs nothing in the default configuration."""
        if self.half_life_s is None or cost <= 0:
            return
        self._usage[tenant] = (self.decayed_usage(tenant, now) + cost, now)
        self.version += 1

    def decayed_usage(self, tenant: str, now: float) -> float:
        """The tenant's usage, aged to ``now`` by the half-life."""
        if self.half_life_s is None:
            return 0.0
        usage, as_of = self._usage.get(tenant, (0.0, now))
        if usage <= 0.0:
            return 0.0
        elapsed = max(0.0, now - as_of)
        return usage * 0.5 ** (elapsed / self.half_life_s)

    def effective_weight(self, tenant: str, now: float) -> float:
        """The configured weight, discounted by decayed usage — equal
        to :meth:`weight` when no half-life is configured."""
        base = self.weight(tenant)
        if self.half_life_s is None:
            return base
        return base * 0.5 ** (self.decayed_usage(tenant, now) / self.usage_scale)

    # -- allocation ----------------------------------------------------------

    def allocate(
        self,
        capacity: int,
        demands: Mapping[str, int],
        weights: Mapping[str, float] | None = None,
    ) -> dict[str, int]:
        """Divide ``capacity`` integer slots over ``demands`` by
        weighted max-min progressive filling.

        Guarantees: ``alloc[k] <= demands[k]`` for every claimant, and
        ``sum(alloc) == min(capacity, sum(demands))`` — capacity is
        never wasted while anyone still has demand, and never invented.
        Ties break toward the heavier weight, then lexicographically,
        so allocation is deterministic.
        """
        if capacity < 0:
            raise AccountingError("capacity must be >= 0")
        alloc = {k: 0 for k in demands}
        for k, demand in demands.items():
            if demand < 0:
                raise AccountingError(f"demand for {k!r} must be >= 0")
        w = {
            k: (weights[k] if weights is not None and k in weights else self.default_weight)
            for k in demands
        }
        for k, weight in w.items():
            if weight <= 0:
                raise AccountingError(f"weight for {k!r} must be > 0")
        remaining = capacity
        while remaining > 0:
            hungry = [k for k in alloc if alloc[k] < demands[k]]
            if not hungry:
                break
            # progressive filling: the next slot goes to the claimant
            # whose normalized allocation is lowest right now
            choice = min(hungry, key=lambda k: (alloc[k] / w[k], -w[k], k))
            alloc[choice] += 1
            remaining -= 1
        return alloc
