"""Weighted max-min fair-share arbitration across federated jobs.

Two malleable jobs on one federation each run their own
:class:`~repro.scheduling.malleable.ShareLedger` resize loop — without
coupling, both would claim the full per-site outstanding-unit budget
and fairness between *jobs* would be whatever the site queues happen to
serve.  The :class:`FairShareArbiter` closes that gap: it divides a
scarce integer capacity (a site's concurrent-unit slots) among the
contending jobs by **weighted max-min** — progressive filling, the
classic water-filling discipline:

* every job is capped by its own demand (no slot is parked on a job
  with nothing left to run — the arbiter is work-conserving),
* surplus freed by small jobs flows to the still-hungry ones,
* among the hungry, slots land so that ``allocation / weight`` stays
  as even as possible — under saturation, allocations converge to the
  configured tenant weight ratio.

Weights attach to *tenants* (the federation principal), so every job a
tenant runs draws from one fair-share identity.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..errors import AccountingError

__all__ = ["FairShareArbiter"]


class FairShareArbiter:
    """Integer weighted max-min allocator with per-tenant weights."""

    def __init__(self, default_weight: float = 1.0) -> None:
        if default_weight <= 0:
            raise AccountingError("default share weight must be > 0")
        self.default_weight = default_weight
        self._weights: dict[str, float] = {}
        #: bumped on every weight change — callers that cache an
        #: allocation (the resize loop's dirty-flag arbitration) key
        #: on this instead of comparing whole weight tables
        self.version = 0

    # -- weights ------------------------------------------------------------

    def set_weight(self, tenant: str, weight: float) -> None:
        if weight <= 0:
            raise AccountingError("share weight must be > 0")
        self._weights[tenant] = weight
        self.version += 1

    def weight(self, tenant: str) -> float:
        return self._weights.get(tenant, self.default_weight)

    def weights(self) -> dict[str, float]:
        return dict(self._weights)

    # -- allocation ----------------------------------------------------------

    def allocate(
        self,
        capacity: int,
        demands: Mapping[str, int],
        weights: Mapping[str, float] | None = None,
    ) -> dict[str, int]:
        """Divide ``capacity`` integer slots over ``demands`` by
        weighted max-min progressive filling.

        Guarantees: ``alloc[k] <= demands[k]`` for every claimant, and
        ``sum(alloc) == min(capacity, sum(demands))`` — capacity is
        never wasted while anyone still has demand, and never invented.
        Ties break toward the heavier weight, then lexicographically,
        so allocation is deterministic.
        """
        if capacity < 0:
            raise AccountingError("capacity must be >= 0")
        alloc = {k: 0 for k in demands}
        for k, demand in demands.items():
            if demand < 0:
                raise AccountingError(f"demand for {k!r} must be >= 0")
        w = {
            k: (weights[k] if weights is not None and k in weights else self.default_weight)
            for k in demands
        }
        for k, weight in w.items():
            if weight <= 0:
                raise AccountingError(f"weight for {k!r} must be > 0")
        remaining = capacity
        while remaining > 0:
            hungry = [k for k in alloc if alloc[k] < demands[k]]
            if not hungry:
                break
            # progressive filling: the next slot goes to the claimant
            # whose normalized allocation is lowest right now
            choice = min(hungry, key=lambda k: (alloc[k] / w[k], -w[k], k))
            alloc[choice] += 1
            remaining -= 1
        return alloc
