"""Device specification documents.

The paper makes point-of-execution validation a core requirement
(§2.1): "Ensuring program validity at the point of execution thus
becomes a key requirement", with specs fetched fresh because analog
devices drift.  A :class:`DeviceSpecs` document is what the runtime
fetches (from the daemon or QRMI) and validates programs against; it is
serializable so the daemon can serve it over REST.
"""

from __future__ import annotations

import copy
from dataclasses import asdict, dataclass, field, replace

from ..errors import ValidationError
from .geometry import Register
from .hamiltonian import DEFAULT_C6
from .pulses import DriveSegment

__all__ = ["DeviceSpecs"]


@dataclass(frozen=True)
class DeviceSpecs:
    """Capabilities + constraints of one device (QPU or emulator).

    Units: um, rad/us, us.
    """

    name: str = "fresnel-sim"
    max_qubits: int = 100
    min_atom_distance: float = 4.0
    max_radius: float = 50.0
    max_rabi: float = 12.57          # ~2pi * 2 MHz in rad/us
    min_detuning: float = -125.0
    max_detuning: float = 125.0
    max_sequence_duration: float = 6.0   # us
    max_shots_per_task: int = 2000
    shot_rate_hz: float = 1.0            # paper §2.2.1: ~1 Hz today
    c6_coefficient: float = DEFAULT_C6
    is_hardware: bool = True
    revision: int = 0
    extra: dict = field(default_factory=dict)

    # -- validation -----------------------------------------------------------

    def validate_register(self, register: Register) -> list[str]:
        """Violation messages for a register (empty list = valid)."""
        violations: list[str] = []
        if register.num_atoms > self.max_qubits:
            violations.append(
                f"register has {register.num_atoms} atoms, device supports {self.max_qubits}"
            )
        min_dist = register.min_distance()
        if min_dist < self.min_atom_distance - 1e-9:
            violations.append(
                f"minimum atom distance {min_dist:.2f}um below device limit "
                f"{self.min_atom_distance}um"
            )
        radius = register.max_radius()
        if radius > self.max_radius + 1e-9:
            violations.append(
                f"register radius {radius:.2f}um exceeds field of view {self.max_radius}um"
            )
        return violations

    def validate_schedule(self, segments: list[DriveSegment]) -> list[str]:
        violations: list[str] = []
        total = sum(seg.duration for seg in segments)
        if total > self.max_sequence_duration + 1e-9:
            violations.append(
                f"sequence duration {total:.2f}us exceeds limit "
                f"{self.max_sequence_duration}us"
            )
        for idx, seg in enumerate(segments):
            omega_max = seg.omega.max_abs()
            if omega_max > self.max_rabi + 1e-9:
                violations.append(
                    f"segment {idx}: Rabi amplitude {omega_max:.2f} exceeds "
                    f"max {self.max_rabi} rad/us"
                )
            # sample the detuning envelope for range checks
            dt = max(seg.duration / 100.0, 1e-6)
            delta = seg.delta.samples(dt)
            if delta.max() > self.max_detuning + 1e-9 or delta.min() < self.min_detuning - 1e-9:
                violations.append(
                    f"segment {idx}: detuning outside "
                    f"[{self.min_detuning}, {self.max_detuning}] rad/us"
                )
        return violations

    def validate_shots(self, shots: int) -> list[str]:
        if shots < 1:
            return [f"shots must be >= 1, got {shots}"]
        if shots > self.max_shots_per_task:
            return [
                f"shots {shots} exceeds per-task limit {self.max_shots_per_task}"
            ]
        return []

    def check(self, register: Register, segments: list[DriveSegment], shots: int) -> None:
        """Raise :class:`ValidationError` listing every violation."""
        violations = (
            self.validate_register(register)
            + self.validate_schedule(segments)
            + self.validate_shots(shots)
        )
        if violations:
            raise ValidationError(
                f"program invalid for device {self.name!r} "
                f"(revision {self.revision}): {len(violations)} violation(s)",
                violations=violations,
            )

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> dict:
        # The dataclass is frozen, so the asdict recursion is paid once;
        # callers get a fresh top-level dict (and a deep copy of the
        # mutable ``extra``) each call, as before.
        cached = getattr(self, "_dict_cache", None)
        if cached is None:
            cached = asdict(self)
            object.__setattr__(self, "_dict_cache", cached)
        out = dict(cached)
        out["extra"] = copy.deepcopy(cached["extra"])
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "DeviceSpecs":
        return cls(**data)

    def bumped(self, **changes) -> "DeviceSpecs":
        """Copy with changes and an incremented revision (spec drift)."""
        return replace(self, revision=self.revision + 1, **changes)
