"""Neutral-atom QPU device model.

Models the observable surfaces of an analog neutral-atom QPU of the
kind the paper integrates (Pasqal Fresnel-class devices at CEA/GENCI
and JSC):

* :mod:`geometry`    — atom register layouts and validation,
* :mod:`pulses`      — waveforms and global drive segments,
* :mod:`hamiltonian` — the Rydberg Hamiltonian built from register+drive,
* :mod:`specs`       — device specification documents (fetched by the
  runtime for point-of-execution validation, paper §2.1/§3.2),
* :mod:`calibration` — calibration state + Ornstein-Uhlenbeck drift
  processes (the paper's "calibration drift over time", §2.1),
* :mod:`shots`       — the ~1 Hz shot clock and batching model (§2.2.1),
* :mod:`telemetry`   — metric snapshots for the observability stack,
* :mod:`qa`          — quality-assurance reference jobs (§3.4),
* :mod:`device`      — the QPU itself: executes analog programs through
  an internal emulator, applying calibration-dependent noise.
"""

from .calibration import CalibrationState, DriftEnsemble, DriftModel, DriftProcess
from .device import QPUDevice
from .geometry import Register
from .hamiltonian import RydbergHamiltonian, interaction_matrix
from .pulses import (
    BlackmanWaveform,
    CompositeWaveform,
    ConstantWaveform,
    DriveSegment,
    InterpolatedWaveform,
    RampWaveform,
    Waveform,
)
from .qa import QAJob, QAResult
from .shots import ShotClock
from .specs import DeviceSpecs
from .telemetry import TelemetrySnapshot

__all__ = [
    "BlackmanWaveform",
    "CalibrationState",
    "CompositeWaveform",
    "ConstantWaveform",
    "DeviceSpecs",
    "DriftEnsemble",
    "DriftModel",
    "DriftProcess",
    "DriveSegment",
    "InterpolatedWaveform",
    "QAJob",
    "QAResult",
    "QPUDevice",
    "RampWaveform",
    "Register",
    "RydbergHamiltonian",
    "ShotClock",
    "TelemetrySnapshot",
    "Waveform",
    "interaction_matrix",
]
