"""The QPU device: executes analog programs with calibration-dependent
noise and a realistic shot clock.

The device is the "hardware" end of the paper's portability story.  It
shares the emulator engines with the software backends (a digital
twin), but differs in exactly the ways real hardware differs:

* execution takes wall-clock time (the ~1 Hz shot clock, §2.2.1) — in
  a simulation this is simulated time via :meth:`execute_process`,
* results carry noise derived from the *current* calibration state,
  which drifts (§2.1),
* programs are validated against the device's :class:`DeviceSpecs`
  at the point of execution,
* every execution is recorded in telemetry counters.
"""

from __future__ import annotations

import numpy as np

from ..errors import DeviceError
from ..emulators.base import EmulationResult
from ..emulators.mps import MPSEmulator
from ..emulators.statevector import StateVectorEmulator
from ..simkernel import Simulator, Timeout, TraceRecorder
from .calibration import CalibrationState
from .geometry import Register
from .hamiltonian import RydbergHamiltonian
from .pulses import DriveSegment
from .shots import ShotClock
from .specs import DeviceSpecs
from .telemetry import TelemetrySnapshot

__all__ = ["QPUDevice"]

#: fidelity proxy below which the device self-reports as degraded
DEGRADED_THRESHOLD = 0.85


class QPUDevice:
    """Analog neutral-atom QPU model."""

    def __init__(
        self,
        specs: DeviceSpecs | None = None,
        calibration: CalibrationState | None = None,
        clock: ShotClock | None = None,
        rng: np.random.Generator | None = None,
        trace: TraceRecorder | None = None,
        dt: float = 0.01,
        sv_cutoff_qubits: int = 12,
        twin_bond_dim: int = 16,
    ) -> None:
        self.specs = specs or DeviceSpecs()
        self.calibration = calibration or CalibrationState()
        self.clock = clock or ShotClock(shot_rate_hz=self.specs.shot_rate_hz)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.trace = trace if trace is not None else TraceRecorder()
        self.dt = dt
        self._sv = StateVectorEmulator(max_qubits=sv_cutoff_qubits)
        self._mps = MPSEmulator(max_bond_dim=twin_bond_dim, max_qubits=self.specs.max_qubits)
        self._maintenance = False
        # Hot-path caches: schedulers execute the same program object
        # thousands of times, and the Hamiltonian's grid sampling +
        # interaction matrix are pure functions of (register, segments,
        # dt, c6).  Keyed by object identity with strong references
        # held, so ids cannot be recycled while a key is live.
        self._ham_cache: dict[tuple, RydbergHamiltonian] = {}
        self._ham_cache_refs: list[tuple] = []
        self._noise_cache: tuple[int, object] | None = None
        # telemetry counters
        self.shots_served = 0
        self.tasks_completed = 0
        self.busy_seconds = 0.0
        self.created_at = 0.0
        self.current_task: str | None = None
        self.queue_length = 0

    # -- status ------------------------------------------------------------

    @property
    def status(self) -> str:
        if self._maintenance:
            return "maintenance"
        if self.calibration.fidelity_proxy() < DEGRADED_THRESHOLD:
            return "degraded"
        return "online"

    def start_maintenance(self) -> None:
        self._maintenance = True

    def finish_maintenance(self, now: float) -> None:
        """Maintenance ends with a fresh calibration."""
        self.calibration.recalibrate(now)
        self._maintenance = False

    def fetch_specs(self) -> DeviceSpecs:
        """What a runtime gets when it asks for current specs."""
        return self.specs

    # -- execution --------------------------------------------------------

    def _engine(self, num_qubits: int):
        return self._sv if num_qubits <= self._sv.max_qubits else self._mps

    def _hamiltonian(self, register: Register, segments: list[DriveSegment]) -> RydbergHamiltonian:
        key = (id(register), tuple(map(id, segments)))
        ham = self._ham_cache.get(key)
        if ham is None:
            ham = RydbergHamiltonian(
                register, segments, dt=self.dt, c6=self.specs.c6_coefficient
            )
            if len(self._ham_cache) >= 64:
                self._ham_cache.clear()
                self._ham_cache_refs.clear()
            self._ham_cache[key] = ham
            self._ham_cache_refs.append((register, tuple(segments)))
        return ham

    def _noise_model(self):
        version = self.calibration.version
        cached = self._noise_cache
        if cached is None or cached[0] != version:
            cached = (version, self.calibration.to_noise_model())
            self._noise_cache = cached
        return cached[1]

    def _compute_counts(
        self, register: Register, segments: list[DriveSegment], shots: int
    ) -> EmulationResult:
        ham = self._hamiltonian(register, segments)
        noise = self._noise_model()
        engine = self._engine(register.num_atoms)
        return engine.run(ham, shots, self.rng, noise=noise)

    def estimate_execution_time(
        self, segments: list[DriveSegment], shots: int, batched: bool = True
    ) -> float:
        duration_us = sum(seg.duration for seg in segments)
        return self.clock.execution_time(shots, duration_us, batched=batched)

    def run_now(
        self,
        register: Register,
        segments: list[DriveSegment],
        shots: int,
        batched: bool = True,
        task_id: str = "",
    ) -> EmulationResult:
        """Execute immediately (no simulated waiting); still validates,
        applies calibration noise and updates telemetry counters."""
        if self._maintenance:
            raise DeviceError(f"device {self.specs.name!r} is under maintenance")
        self.specs.check(register, segments, shots)
        result = self._compute_counts(register, segments, shots)
        elapsed = self.estimate_execution_time(segments, shots, batched)
        self._account(result, elapsed, task_id)
        return result

    def execute_process(
        self,
        sim: Simulator,
        register: Register,
        segments: list[DriveSegment],
        shots: int,
        batched: bool = True,
        task_id: str = "",
    ):
        """Generator for DES integration: occupies the QPU for the
        modeled execution time, then returns the result.

        The caller (daemon scheduler) is responsible for serializing
        access; the device only tracks who is executing.
        """
        if self._maintenance:
            raise DeviceError(f"device {self.specs.name!r} is under maintenance")
        self.specs.check(register, segments, shots)
        elapsed = self.estimate_execution_time(segments, shots, batched)
        self.current_task = task_id or "anonymous"
        self.trace.emit(
            sim.now, "qpu", "busy_start", task_id=self.current_task, shots=shots
        )
        try:
            yield Timeout(elapsed)
        finally:
            self.trace.emit(sim.now, "qpu", "busy_end", task_id=self.current_task)
            self.current_task = None
        result = self._compute_counts(register, segments, shots)
        self._account(result, elapsed, task_id, emit_trace=False)
        return result

    def _account(
        self, result: EmulationResult, elapsed: float, task_id: str, emit_trace: bool = True
    ) -> None:
        self.shots_served += result.shots
        self.tasks_completed += 1
        self.busy_seconds += elapsed
        result.metadata["device"] = self.specs.name
        result.metadata["calibration"] = self.calibration.snapshot()
        result.metadata["execution_seconds"] = elapsed
        result.metadata["engine"] = self._engine_name(result)

    @staticmethod
    def _engine_name(result: EmulationResult) -> str:
        return result.backend

    # -- telemetry ----------------------------------------------------------

    def telemetry(self, now: float) -> TelemetrySnapshot:
        return TelemetrySnapshot(
            time=now,
            device=self.specs.name,
            status=self.status,
            fidelity_proxy=self.calibration.fidelity_proxy(),
            calibration=self.calibration.snapshot(),
            queue_length=self.queue_length,
            shots_served_total=self.shots_served,
            tasks_completed_total=self.tasks_completed,
            busy_seconds_total=self.busy_seconds,
            uptime_seconds=max(0.0, now - self.created_at),
            current_task=self.current_task,
        )
