"""Waveforms and drive segments for analog sequences.

Units follow the neutral-atom convention: time in microseconds (us),
angular frequencies (Rabi ``omega`` and detuning ``delta``) in rad/us.
Waveforms are sampled on a uniform grid for numerical evolution;
sampling is vectorized (one ``np.ndarray`` per waveform, no Python
loops in the inner path, per the hpc-parallel guide).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PulseError

__all__ = [
    "BlackmanWaveform",
    "CompositeWaveform",
    "ConstantWaveform",
    "DriveSegment",
    "InterpolatedWaveform",
    "RampWaveform",
    "Waveform",
]


class Waveform:
    """Base waveform: a real function on ``[0, duration]`` us."""

    duration: float

    def samples(self, dt: float) -> np.ndarray:
        """Values on the grid ``t_k = (k + 1/2) * dt`` (midpoint rule)."""
        raise NotImplementedError

    def _grid(self, dt: float) -> np.ndarray:
        if dt <= 0:
            raise PulseError(f"dt must be positive, got {dt}")
        n = max(1, int(round(self.duration / dt)))
        return (np.arange(n) + 0.5) * (self.duration / n)

    def integral(self) -> float:
        """Area under the waveform (rad); default via fine sampling."""
        dt = self.duration / 1000.0 if self.duration > 0 else 1.0
        return float(self.samples(dt).sum() * dt)

    def max_abs(self) -> float:
        dt = self.duration / 1000.0 if self.duration > 0 else 1.0
        return float(np.abs(self.samples(dt)).max())

    def to_dict(self) -> dict:
        raise NotImplementedError

    @staticmethod
    def from_dict(data: dict) -> "Waveform":
        kinds = {
            "constant": ConstantWaveform,
            "ramp": RampWaveform,
            "blackman": BlackmanWaveform,
            "interpolated": InterpolatedWaveform,
            "composite": CompositeWaveform,
        }
        kind = data.get("kind")
        if kind not in kinds:
            raise PulseError(f"unknown waveform kind {kind!r}")
        return kinds[kind]._from_dict(data)


def _check_duration(duration: float) -> float:
    if duration <= 0:
        raise PulseError(f"waveform duration must be positive, got {duration}")
    return float(duration)


class ConstantWaveform(Waveform):
    """Constant value for ``duration`` us."""

    def __init__(self, duration: float, value: float) -> None:
        self.duration = _check_duration(duration)
        self.value = float(value)

    def samples(self, dt: float) -> np.ndarray:
        return np.full_like(self._grid(dt), self.value)

    def integral(self) -> float:
        return self.value * self.duration

    def max_abs(self) -> float:
        return abs(self.value)

    def to_dict(self) -> dict:
        return {"kind": "constant", "duration": self.duration, "value": self.value}

    @classmethod
    def _from_dict(cls, data: dict) -> "ConstantWaveform":
        return cls(data["duration"], data["value"])


class RampWaveform(Waveform):
    """Linear ramp from ``start`` to ``stop``."""

    def __init__(self, duration: float, start: float, stop: float) -> None:
        self.duration = _check_duration(duration)
        self.start = float(start)
        self.stop = float(stop)

    def samples(self, dt: float) -> np.ndarray:
        t = self._grid(dt)
        return self.start + (self.stop - self.start) * (t / self.duration)

    def integral(self) -> float:
        return 0.5 * (self.start + self.stop) * self.duration

    def max_abs(self) -> float:
        return max(abs(self.start), abs(self.stop))

    def to_dict(self) -> dict:
        return {
            "kind": "ramp",
            "duration": self.duration,
            "start": self.start,
            "stop": self.stop,
        }

    @classmethod
    def _from_dict(cls, data: dict) -> "RampWaveform":
        return cls(data["duration"], data["start"], data["stop"])


class BlackmanWaveform(Waveform):
    """Blackman-window pulse with a target area (rad).

    The go-to adiabatic pulse shape in neutral-atom experiments: smooth
    turn-on/turn-off minimizes spectral leakage.
    """

    def __init__(self, duration: float, area: float) -> None:
        self.duration = _check_duration(duration)
        self.area = float(area)

    def _window(self, t: np.ndarray) -> np.ndarray:
        x = t / self.duration
        return 0.42 - 0.5 * np.cos(2 * np.pi * x) + 0.08 * np.cos(4 * np.pi * x)

    def samples(self, dt: float) -> np.ndarray:
        t = self._grid(dt)
        w = self._window(t)
        # normalize so the discrete integral equals `area`
        step = self.duration / len(t)
        total = w.sum() * step
        if total == 0:
            return np.zeros_like(t)
        return w * (self.area / total)

    def integral(self) -> float:
        return self.area

    def to_dict(self) -> dict:
        return {"kind": "blackman", "duration": self.duration, "area": self.area}

    @classmethod
    def _from_dict(cls, data: dict) -> "BlackmanWaveform":
        return cls(data["duration"], data["area"])


class InterpolatedWaveform(Waveform):
    """Piecewise-linear interpolation through given (time, value) knots."""

    def __init__(self, duration: float, values: list[float], times: list[float] | None = None) -> None:
        self.duration = _check_duration(duration)
        self.values = np.asarray(values, dtype=float)
        if self.values.ndim != 1 or self.values.size < 2:
            raise PulseError("interpolated waveform needs >= 2 values")
        if times is None:
            self.times = np.linspace(0.0, self.duration, self.values.size)
        else:
            self.times = np.asarray(times, dtype=float)
            if self.times.shape != self.values.shape:
                raise PulseError("times and values must have the same length")
            if not np.all(np.diff(self.times) > 0):
                raise PulseError("times must be strictly increasing")
            if self.times[0] < 0 or self.times[-1] > self.duration:
                raise PulseError("times must lie within [0, duration]")

    def samples(self, dt: float) -> np.ndarray:
        return np.interp(self._grid(dt), self.times, self.values)

    def to_dict(self) -> dict:
        return {
            "kind": "interpolated",
            "duration": self.duration,
            "values": self.values.tolist(),
            "times": self.times.tolist(),
        }

    @classmethod
    def _from_dict(cls, data: dict) -> "InterpolatedWaveform":
        return cls(data["duration"], data["values"], data.get("times"))


class CompositeWaveform(Waveform):
    """Concatenation of waveforms in time."""

    def __init__(self, *parts: Waveform) -> None:
        if not parts:
            raise PulseError("composite waveform needs at least one part")
        self.parts = list(parts)
        self.duration = sum(p.duration for p in parts)

    def samples(self, dt: float) -> np.ndarray:
        # Sample each part on its own aligned sub-grid, then concatenate.
        chunks = []
        for part in self.parts:
            n = max(1, int(round(part.duration / dt)))
            chunks.append(part.samples(part.duration / n))
        return np.concatenate(chunks)

    def integral(self) -> float:
        return sum(p.integral() for p in self.parts)

    def max_abs(self) -> float:
        return max(p.max_abs() for p in self.parts)

    def to_dict(self) -> dict:
        return {"kind": "composite", "parts": [p.to_dict() for p in self.parts]}

    @classmethod
    def _from_dict(cls, data: dict) -> "CompositeWaveform":
        return cls(*[Waveform.from_dict(p) for p in data["parts"]])


@dataclass(frozen=True)
class DriveSegment:
    """One segment of the global Rydberg drive.

    ``omega`` — Rabi amplitude waveform (rad/us, >= 0),
    ``delta`` — detuning waveform (rad/us),
    ``phase`` — drive phase (rad), constant per segment.

    Both waveforms must share the segment duration.
    """

    omega: Waveform
    delta: Waveform
    phase: float = 0.0

    def __post_init__(self) -> None:
        if abs(self.omega.duration - self.delta.duration) > 1e-9:
            raise PulseError(
                f"omega duration {self.omega.duration} != delta duration {self.delta.duration}"
            )
        if self.omega.max_abs() > 0 and (
            isinstance(self.omega, ConstantWaveform) and self.omega.value < 0
        ):
            raise PulseError("Rabi amplitude must be non-negative")

    @property
    def duration(self) -> float:
        return self.omega.duration

    def to_dict(self) -> dict:
        return {
            "omega": self.omega.to_dict(),
            "delta": self.delta.to_dict(),
            "phase": self.phase,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DriveSegment":
        return cls(
            omega=Waveform.from_dict(data["omega"]),
            delta=Waveform.from_dict(data["delta"]),
            phase=float(data.get("phase", 0.0)),
        )
