"""QPU telemetry snapshots.

The raw material of the observability stack (paper §3.6): a device can
be asked at any time for a :class:`TelemetrySnapshot` of health and
load metrics.  The observability scraper polls these into the TSDB;
the daemon exposes them to admins; per-job metadata embeds the snapshot
taken at execution time ("per-job metadata on qubit performance can
assist in interpreting noisy results").
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TelemetrySnapshot"]


@dataclass(frozen=True)
class TelemetrySnapshot:
    """One point-in-time reading of device health + load."""

    time: float
    device: str
    status: str                      # "online" | "degraded" | "maintenance" | "offline"
    fidelity_proxy: float
    calibration: dict[str, float] = field(default_factory=dict)
    queue_length: int = 0
    shots_served_total: int = 0
    tasks_completed_total: int = 0
    busy_seconds_total: float = 0.0
    uptime_seconds: float = 0.0
    current_task: str | None = None

    def to_metrics(self) -> dict[str, float]:
        """Flatten into Prometheus-style gauge values."""
        metrics = {
            "qpu_fidelity_proxy": self.fidelity_proxy,
            "qpu_queue_length": float(self.queue_length),
            "qpu_shots_served_total": float(self.shots_served_total),
            "qpu_tasks_completed_total": float(self.tasks_completed_total),
            "qpu_busy_seconds_total": self.busy_seconds_total,
            "qpu_uptime_seconds": self.uptime_seconds,
            "qpu_online": 1.0 if self.status == "online" else 0.0,
        }
        for name, value in self.calibration.items():
            metrics[f"qpu_calibration_{name}"] = float(value)
        return metrics
