"""Shot clock: the execution-time model of the QPU.

Paper §2.2.1: "For current neutral-atom devices, the shot rate is on
the order of 1 Hz, with roadmaps projecting increases to around 100 Hz
in the coming years."  The shot clock turns (shots, sequence duration)
into wall-clock QPU occupancy, which drives every utilization number in
the Table-1 experiments:

    task_time = setup_overhead
              + shots * (1/rate + sequence_duration)
              + batches * batch_overhead

Batching models the hardware's preference for amortizing register
loading across shots (the paper configures non-production jobs
"without batched submission").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import DeviceError

__all__ = ["ShotClock"]


@dataclass(frozen=True)
class ShotClock:
    """Execution-time model, all times in seconds."""

    shot_rate_hz: float = 1.0
    setup_overhead_s: float = 2.0
    batch_size: int = 100
    batch_overhead_s: float = 0.5

    def __post_init__(self) -> None:
        if self.shot_rate_hz <= 0:
            raise DeviceError(f"shot rate must be positive, got {self.shot_rate_hz}")
        if self.batch_size < 1:
            raise DeviceError(f"batch size must be >= 1, got {self.batch_size}")
        if self.setup_overhead_s < 0 or self.batch_overhead_s < 0:
            raise DeviceError("overheads must be non-negative")

    def shot_period(self, sequence_duration_us: float = 0.0) -> float:
        """Seconds per shot: rearm period plus the sequence itself."""
        return 1.0 / self.shot_rate_hz + sequence_duration_us * 1e-6

    def execution_time(
        self, shots: int, sequence_duration_us: float = 0.0, batched: bool = True
    ) -> float:
        """Wall-clock seconds the QPU is busy with this task."""
        if shots < 0:
            raise DeviceError(f"shots must be >= 0, got {shots}")
        if shots == 0:
            return self.setup_overhead_s
        if batched:
            batches = math.ceil(shots / self.batch_size)
        else:
            batches = shots  # unbatched: per-shot overhead
        return (
            self.setup_overhead_s
            + shots * self.shot_period(sequence_duration_us)
            + batches * self.batch_overhead_s
        )

    def throughput_shots_per_hour(self, sequence_duration_us: float = 0.0) -> float:
        return 3600.0 / self.shot_period(sequence_duration_us)

    def with_rate(self, shot_rate_hz: float) -> "ShotClock":
        """Roadmap variant (e.g. the projected 100 Hz device)."""
        from dataclasses import replace

        return replace(self, shot_rate_hz=shot_rate_hz)
