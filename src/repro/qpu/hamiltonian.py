"""The Rydberg (Ising-type) Hamiltonian of an analog neutral-atom QPU.

    H(t)/hbar = (Omega(t)/2) * sum_i (cos(phi) X_i - sin(phi) Y_i)
              - delta(t) * sum_i n_i
              + sum_{i<j} (C6 / r_ij^6) n_i n_j

with ``n_i = (1 + Z_i)/2`` the Rydberg-state projector.  Everything is
expressed in rad/us and micrometres; ``C6`` defaults to the Pasqal
Fresnel-like value of 5.42e6 rad/us * um^6.

The module exposes:

* :func:`interaction_matrix` — the pairwise U_ij = C6/r^6 couplings,
* :class:`RydbergHamiltonian` — grid-sampled coefficients + helper
  arrays consumed by both emulators (dense diagonal for the state
  vector backend, per-bond couplings for the MPS backend).

Note the structure exploited by the emulators: the interaction +
detuning part is *diagonal* in the computational basis, while the drive
part is a sum of identical single-qubit rotations — so a second-order
Trotter step needs only elementwise phases and one 2x2 rotation applied
to every qubit axis (fully vectorized).
"""

from __future__ import annotations

import numpy as np

from ..errors import PulseError, RegisterError
from .geometry import Register
from .pulses import DriveSegment

__all__ = ["DEFAULT_C6", "RydbergHamiltonian", "interaction_matrix", "rydberg_blockade_radius"]

#: Default C6 coefficient, rad/us * um^6 (Rb 60S-like).
DEFAULT_C6 = 5.42e6


def interaction_matrix(register: Register, c6: float = DEFAULT_C6) -> np.ndarray:
    """Symmetric U_ij = C6 / r_ij^6 matrix (zero diagonal), vectorized."""
    d = register.distances()
    n = register.num_atoms
    with np.errstate(divide="ignore"):
        u = c6 / d**6
    u[np.arange(n), np.arange(n)] = 0.0
    return u


def rydberg_blockade_radius(omega_max: float, c6: float = DEFAULT_C6) -> float:
    """Blockade radius: distance where U = Omega ( (C6/Omega)^(1/6) )."""
    if omega_max <= 0:
        raise PulseError("omega_max must be positive")
    return float((c6 / omega_max) ** (1.0 / 6.0))


class RydbergHamiltonian:
    """Grid-sampled Hamiltonian coefficients for a drive schedule.

    Parameters
    ----------
    register:
        Atom geometry.
    segments:
        The drive schedule (one global channel, as on current hardware).
    dt:
        Time step in us; each segment is sampled on its own aligned grid.
    c6:
        Interaction coefficient.
    """

    def __init__(
        self,
        register: Register,
        segments: list[DriveSegment],
        dt: float = 0.01,
        c6: float = DEFAULT_C6,
    ) -> None:
        if not segments:
            raise PulseError("schedule must contain at least one drive segment")
        if dt <= 0:
            raise PulseError(f"dt must be positive, got {dt}")
        self.register = register
        self.segments = list(segments)
        self.dt = dt
        self.c6 = c6
        self.interactions = interaction_matrix(register, c6)

        omega_chunks: list[np.ndarray] = []
        delta_chunks: list[np.ndarray] = []
        phase_chunks: list[np.ndarray] = []
        step_chunks: list[np.ndarray] = []
        for segment in self.segments:
            n_steps = max(1, int(round(segment.duration / dt)))
            step = segment.duration / n_steps
            omega_chunks.append(segment.omega.samples(step))
            delta_chunks.append(segment.delta.samples(step))
            phase_chunks.append(np.full(n_steps, segment.phase))
            step_chunks.append(np.full(n_steps, step))
        #: Per-step arrays over the whole schedule.
        self.omega = np.concatenate(omega_chunks)
        self.delta = np.concatenate(delta_chunks)
        self.phase = np.concatenate(phase_chunks)
        self.steps = np.concatenate(step_chunks)
        if np.any(self.omega < -1e-12):
            raise PulseError("Rabi amplitude samples must be non-negative")
        # lazy dense-backend helper caches (the coefficients above are
        # fixed at construction, so these never need invalidation)
        self._diag_cache: np.ndarray | None = None
        self._occ_cache: np.ndarray | None = None

    @property
    def num_qubits(self) -> int:
        return self.register.num_atoms

    @property
    def total_duration(self) -> float:
        return float(self.steps.sum())

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    # -- helpers for the dense (state-vector) backend -----------------------

    def diagonal_energies(self) -> np.ndarray:
        """Energy of every computational basis state under interactions
        ONLY (length 2^n); detuning is time-dependent and added per step.

        Vectorized over all 2^n basis states: occupation bit table is
        built once as an (2^n, n) uint8 array.
        """
        if self._diag_cache is not None:
            return self._diag_cache
        n = self.num_qubits
        if n > 26:  # 2^26 doubles = 0.5 GB; refuse beyond
            raise RegisterError(f"dense diagonal intractable for n={n}")
        bits = self.occupation_table()
        # E_int[s] = sum_{i<j} U_ij b_i b_j  ==  0.5 * (b U b^T) diagonal.
        energy = 0.5 * np.einsum("si,ij,sj->s", bits, self.interactions, bits)
        self._diag_cache = energy
        return energy

    def occupation_table(self) -> np.ndarray:
        """(2^n, n) float array of basis-state occupations (qubit 0 = MSB)."""
        n = self.num_qubits
        dim = 1 << n
        states = np.arange(dim, dtype=np.uint64)
        shifts = np.arange(n - 1, -1, -1, dtype=np.uint64)
        return ((states[:, None] >> shifts[None, :]) & 1).astype(np.float64)

    def occupation_counts(self) -> np.ndarray:
        """popcount per basis state (length 2^n), cached — the detuning
        term's coefficient in the dense backend's diagonal phases."""
        if self._occ_cache is None:
            self._occ_cache = self.occupation_table().sum(axis=1)
        return self._occ_cache

    # -- helpers for the MPS backend ---------------------------------------

    def bond_couplings(self, cutoff_radius: float | None = None) -> list[tuple[int, int, float]]:
        """Pairs (i, j, U_ij) kept by the MPS emulator.

        By default keeps pairs within one blockade radius of the maximum
        drive (longer-range tails are truncated — the documented source
        of MPS inaccuracy alongside finite bond dimension).
        """
        if cutoff_radius is None:
            omega_max = float(self.omega.max()) if self.omega.size else 0.0
            if omega_max <= 0:
                cutoff_radius = float("inf")
            else:
                cutoff_radius = 1.5 * rydberg_blockade_radius(omega_max, self.c6)
        pairs = self.register.neighbor_pairs(cutoff_radius)
        return [(i, j, float(self.interactions[i, j])) for i, j in pairs]
