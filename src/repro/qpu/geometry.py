"""Atom register geometry.

A register is a set of atom positions in the plane (micrometres).
Neutral-atom devices impose geometric constraints the runtime must
validate *against current device specs* before execution (paper §2.1:
"device parameters significantly affect program semantics"):

* minimum pairwise distance (optical tweezer separation),
* maximum distance from the register centre (field of view),
* maximum atom count.

Factory layouts cover the standard experiment geometries: chain, ring,
square and triangular lattices.
"""

from __future__ import annotations

import numpy as np

from ..errors import RegisterError

__all__ = ["Register"]


class Register:
    """Immutable set of named atom positions (um)."""

    def __init__(self, positions: np.ndarray, labels: list[str] | None = None) -> None:
        positions = np.asarray(positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise RegisterError(f"positions must be (N, 2), got {positions.shape}")
        if positions.shape[0] == 0:
            raise RegisterError("register must contain at least one atom")
        self._positions = positions.copy()
        self._positions.setflags(write=False)
        if labels is None:
            labels = [f"q{i}" for i in range(len(positions))]
        if len(labels) != len(positions):
            raise RegisterError(
                f"{len(labels)} labels for {len(positions)} atoms"
            )
        if len(set(labels)) != len(labels):
            raise RegisterError("atom labels must be unique")
        self.labels = list(labels)

    # -- constructors -----------------------------------------------------

    @classmethod
    def chain(cls, n: int, spacing: float = 6.0) -> "Register":
        """Linear chain of ``n`` atoms, ``spacing`` um apart, centred at 0."""
        if n < 1:
            raise RegisterError("chain needs n >= 1")
        xs = (np.arange(n) - (n - 1) / 2.0) * spacing
        return cls(np.column_stack([xs, np.zeros(n)]))

    @classmethod
    def ring(cls, n: int, spacing: float = 6.0) -> "Register":
        """Ring of ``n`` atoms with nearest-neighbour arc ``spacing`` um."""
        if n < 2:
            raise RegisterError("ring needs n >= 2")
        radius = spacing / (2.0 * np.sin(np.pi / n))
        angles = 2.0 * np.pi * np.arange(n) / n
        return cls(np.column_stack([radius * np.cos(angles), radius * np.sin(angles)]))

    @classmethod
    def square_lattice(cls, rows: int, cols: int, spacing: float = 6.0) -> "Register":
        if rows < 1 or cols < 1:
            raise RegisterError("lattice needs rows, cols >= 1")
        ys, xs = np.mgrid[0:rows, 0:cols]
        pos = np.column_stack([xs.ravel() * spacing, ys.ravel() * spacing]).astype(float)
        pos -= pos.mean(axis=0)
        return cls(pos)

    @classmethod
    def triangular_lattice(cls, rows: int, cols: int, spacing: float = 6.0) -> "Register":
        if rows < 1 or cols < 1:
            raise RegisterError("lattice needs rows, cols >= 1")
        points = []
        for r in range(rows):
            for c in range(cols):
                x = c * spacing + (r % 2) * spacing / 2.0
                y = r * spacing * np.sqrt(3.0) / 2.0
                points.append((x, y))
        pos = np.asarray(points)
        pos -= pos.mean(axis=0)
        return cls(pos)

    @classmethod
    def from_coordinates(cls, coords: list[tuple[float, float]], labels: list[str] | None = None) -> "Register":
        return cls(np.asarray(coords, dtype=float), labels)

    # -- queries ---------------------------------------------------------

    @property
    def positions(self) -> np.ndarray:
        return self._positions

    @property
    def num_atoms(self) -> int:
        return self._positions.shape[0]

    def __len__(self) -> int:
        return self.num_atoms

    def distances(self) -> np.ndarray:
        """Pairwise distance matrix (um), vectorized."""
        diff = self._positions[:, None, :] - self._positions[None, :, :]
        return np.sqrt((diff**2).sum(axis=-1))

    def min_distance(self) -> float:
        if self.num_atoms < 2:
            return float("inf")
        d = self.distances()
        return float(d[np.triu_indices(self.num_atoms, k=1)].min())

    def max_radius(self) -> float:
        """Largest distance of any atom from the register centroid."""
        centred = self._positions - self._positions.mean(axis=0)
        return float(np.sqrt((centred**2).sum(axis=1)).max())

    def neighbor_pairs(self, cutoff: float) -> list[tuple[int, int]]:
        """Index pairs closer than ``cutoff`` um (used by the MPS emulator
        to decide which interactions to keep)."""
        d = self.distances()
        i_idx, j_idx = np.triu_indices(self.num_atoms, k=1)
        mask = d[i_idx, j_idx] <= cutoff
        return list(zip(i_idx[mask].tolist(), j_idx[mask].tolist(), strict=True))

    def to_dict(self) -> dict:
        return {
            "positions": self._positions.tolist(),
            "labels": list(self.labels),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Register":
        return cls(np.asarray(data["positions"], dtype=float), list(data["labels"]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Register):
            return NotImplemented
        return (
            self.labels == other.labels
            and self._positions.shape == other._positions.shape
            and bool(np.allclose(self._positions, other._positions))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Register({self.num_atoms} atoms, min_dist={self.min_distance():.2f}um)"
