"""Quality-assurance reference jobs.

Paper §3.4: "quality assurance jobs checking the QPU is typically
scheduled periodically by both the hosting site and the QPU itself".

A QA job runs a physics sequence with a known answer — a two-atom
blockade pi-pulse, whose ideal outcome concentrates all probability in
the single-excitation sector with zero double excitation — and scores
the device by how closely the measured distribution matches.  The score
feeds the observability stack (drift detection) and can trigger
recalibration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .device import QPUDevice
from .geometry import Register
from .pulses import ConstantWaveform, DriveSegment

__all__ = ["QAJob", "QAResult"]


@dataclass(frozen=True)
class QAResult:
    """Outcome of one QA run."""

    time: float
    score: float           # [0, 1], 1 = ideal blockade physics
    passed: bool
    threshold: float
    details: dict = field(default_factory=dict)


class QAJob:
    """Blockade-fidelity reference check.

    Sequence: two atoms at ``spacing`` (deep blockade), resonant drive
    with pulse area pi at the blockade-enhanced frequency, so the ideal
    final state is the symmetric single excitation:

        P(01) + P(10) ~ 1,   P(11) ~ 0.

    Score = [P(01)+P(10)] * (1 - P(11)/0.5 clipped) — both leakage into
    |00> (decoherence, amplitude miscalibration) and double excitation
    (blockade violation, detection errors) reduce it.
    """

    def __init__(self, spacing: float = 5.0, shots: int = 200, threshold: float = 0.85) -> None:
        self.spacing = spacing
        self.shots = shots
        self.threshold = threshold
        omega = np.pi  # rad/us
        duration = 1.0 / np.sqrt(2.0)  # pi pulse at sqrt(2)-enhanced Rabi
        self.register = Register.chain(2, spacing=spacing)
        self.segments = [
            DriveSegment(
                ConstantWaveform(duration, omega), ConstantWaveform(duration, 0.0)
            )
        ]

    def run(self, device: QPUDevice, now: float) -> QAResult:
        result = device.run_now(
            self.register, self.segments, self.shots, task_id="qa-check"
        )
        probs = result.probabilities()
        p01 = probs.get("01", 0.0)
        p10 = probs.get("10", 0.0)
        p11 = probs.get("11", 0.0)
        single = p01 + p10
        blockade_penalty = min(1.0, p11 / 0.5)
        score = float(np.clip(single * (1.0 - blockade_penalty), 0.0, 1.0))
        passed = score >= self.threshold
        return QAResult(
            time=now,
            score=score,
            passed=passed,
            threshold=self.threshold,
            details={
                "p01": p01,
                "p10": p10,
                "p11": p11,
                "shots": self.shots,
                "fidelity_proxy": device.calibration.fidelity_proxy(),
            },
        )
