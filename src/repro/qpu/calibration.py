"""Calibration state and drift processes.

The paper's §2.1 identifies the core analog-hardware problem this
stack must surface: "quantum processors are subject to calibration
drift over time, which can lead to discrepancies between the
environment in which a program is developed or tested and the one in
which it is executed."

We model a calibration state as a set of physical parameters, each
following a mean-reverting **Ornstein-Uhlenbeck** process around its
nominal value plus occasional jump events (e.g. laser realignment
shifts).  A recalibration resets parameters to nominal.  The
calibration state maps to the shared :class:`~repro.emulators.noise.NoiseModel`,
so drift visibly degrades user results, which is exactly what the
drift-detection experiment (C6 in DESIGN.md) measures.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from ..errors import CalibrationError
from ..emulators.noise import NoiseModel
from ..simkernel import Simulator, Timeout

__all__ = ["CalibrationState", "DriftEnsemble", "DriftModel", "DriftProcess"]

#: parameters whose mutation bumps :attr:`CalibrationState.version`
_VERSIONED_FIELDS = frozenset(
    (
        "t1_us",
        "t2_us",
        "state_prep_error",
        "detection_epsilon",
        "detection_epsilon_prime",
        "rabi_calibration_error",
        "detuning_offset",
        "last_calibrated_at",
    )
)


@dataclass
class CalibrationState:
    """Current physical calibration of the device.

    ``fidelity_proxy`` summarizes overall health in [0, 1]; 1.0 = nominal.
    ``version`` counts parameter mutations (drift steps, jumps,
    recalibrations, direct assignment) — a cheap change signal that lets
    snapshot caches skip recomputing fidelity when nothing drifted.
    """

    t1_us: float = 100.0                 # effective relaxation time
    t2_us: float = 50.0                  # effective coherence time
    state_prep_error: float = 0.005
    detection_epsilon: float = 0.01
    detection_epsilon_prime: float = 0.03
    rabi_calibration_error: float = 0.01  # relative Omega miscalibration
    detuning_offset: float = 0.0          # rad/us systematic offset
    last_calibrated_at: float = 0.0
    #: declared after every tracked field so dataclass __init__ resets it
    #: to 0 deterministically once the field assignments above ran
    version: int = 0

    def __setattr__(self, name: str, value) -> None:
        object.__setattr__(self, name, value)
        if name in _VERSIONED_FIELDS:
            object.__setattr__(self, "version", getattr(self, "version", 0) + 1)

    NOMINAL: dict[str, float] = field(
        default_factory=lambda: {
            "t1_us": 100.0,
            "t2_us": 50.0,
            "state_prep_error": 0.005,
            "detection_epsilon": 0.01,
            "detection_epsilon_prime": 0.03,
            "rabi_calibration_error": 0.01,
            "detuning_offset": 0.0,
        }
    )

    def fidelity_proxy(self) -> float:
        """Scalar health score: 1 at nominal, decreasing with degradation."""
        nominal = self.NOMINAL
        penalties = [
            max(0.0, nominal["t2_us"] / max(self.t2_us, 1e-6) - 1.0) * 0.1,
            max(0.0, self.state_prep_error - nominal["state_prep_error"]) * 10.0,
            max(0.0, self.detection_epsilon - nominal["detection_epsilon"]) * 10.0,
            max(0.0, self.detection_epsilon_prime - nominal["detection_epsilon_prime"]) * 10.0,
            max(0.0, self.rabi_calibration_error - nominal["rabi_calibration_error"]) * 5.0,
            abs(self.detuning_offset) * 0.2,
        ]
        return float(np.clip(1.0 - sum(penalties), 0.0, 1.0))

    def to_noise_model(self, realizations: int = 4) -> NoiseModel:
        """Derive the execution noise model from the calibration state."""
        return NoiseModel(
            state_prep_error=min(1.0, self.state_prep_error),
            detection_epsilon=min(1.0, self.detection_epsilon),
            detection_epsilon_prime=min(1.0, self.detection_epsilon_prime),
            amplitude_rel_std=self.rabi_calibration_error,
            detuning_std=abs(self.detuning_offset) + 0.02,
            noise_realizations=realizations,
        )

    def recalibrate(self, now: float) -> None:
        """Reset to nominal (a maintenance / calibration run completed)."""
        for name, value in self.NOMINAL.items():
            setattr(self, name, value)
        self.last_calibrated_at = now

    def snapshot(self) -> dict[str, float]:
        return {
            "t1_us": self.t1_us,
            "t2_us": self.t2_us,
            "state_prep_error": self.state_prep_error,
            "detection_epsilon": self.detection_epsilon,
            "detection_epsilon_prime": self.detection_epsilon_prime,
            "rabi_calibration_error": self.rabi_calibration_error,
            "detuning_offset": self.detuning_offset,
            "fidelity_proxy": self.fidelity_proxy(),
            "last_calibrated_at": self.last_calibrated_at,
        }


class DriftModel:
    """Mean-reverting (OU) drift with Poisson jump events.

    Each step of size ``dt`` updates parameter ``x`` with nominal ``mu``:

        x += theta * (mu - x) * dt + sigma * sqrt(dt) * N(0,1)

    Degradation direction is enforced (error rates drift up, coherence
    drifts down) by using one-sided noise: the diffusive term pushes
    away from nominal, mean reversion pulls back — calibration events do
    the big resets.
    """

    #: (theta, sigma, direction): direction +1 means "bad = larger".
    PARAMS: dict[str, tuple[float, float, int]] = {
        "t2_us": (0.002, 0.08, -1),
        "state_prep_error": (0.002, 2e-5, +1),
        "detection_epsilon": (0.002, 4e-5, +1),
        "detection_epsilon_prime": (0.002, 6e-5, +1),
        "rabi_calibration_error": (0.002, 5e-5, +1),
        "detuning_offset": (0.004, 3e-4, +1),
    }

    def __init__(
        self,
        jump_rate_per_hour: float = 0.2,
        jump_scale: float = 3.0,
        params: dict[str, tuple[float, float, int]] | None = None,
    ) -> None:
        if jump_rate_per_hour < 0:
            raise CalibrationError("jump rate must be >= 0")
        self.jump_rate_per_hour = jump_rate_per_hour
        self.jump_scale = jump_scale
        self.params = dict(params or self.PARAMS)
        # frozen coefficient vectors for the vectorized step (the params
        # dict is fixed at construction)
        self._names = list(self.params)
        self._theta = np.array([t for t, _, _ in self.params.values()])
        self._sigma = np.array([s for _, s, _ in self.params.values()])
        self._direction = np.array(
            [d for _, _, d in self.params.values()], dtype=np.float64
        )

    def step(self, state: CalibrationState, dt: float, rng: np.random.Generator) -> None:
        """Advance the drift by ``dt`` simulated seconds.

        All tracked parameters draw their diffusive shocks in one
        vectorized normal call; NumPy consumes the bit stream exactly
        as per-parameter scalar draws would, so stepped trajectories
        are unchanged from the scalar implementation.
        """
        if dt <= 0:
            raise CalibrationError(f"drift step dt must be positive, got {dt}")
        shocks = np.abs(rng.normal(0.0, self._sigma)) * self._direction * np.sqrt(dt)
        self._apply(state, dt, shocks)
        # Poisson jump events (sudden degradation, e.g. alignment loss).
        jump_prob = self.jump_rate_per_hour * dt / 3600.0
        if rng.random() < jump_prob:
            self.apply_jump(state, rng)

    def step_many(
        self, states: list[CalibrationState], dt: float, rng: np.random.Generator
    ) -> None:
        """Advance several states sharing a drift cadence in one batched
        draw: a single ``(len(states), params)`` normal call plus one
        uniform vector for the jump checks.

        The shared ``rng`` is consumed state-major/parameter-minor, so
        for a fixed seed the trajectory set is deterministic — but the
        stream interleaving differs from running per-state :meth:`step`
        calls against the same generator (those alternate shocks and
        jump draws per state).
        """
        if dt <= 0:
            raise CalibrationError(f"drift step dt must be positive, got {dt}")
        if not states:
            return
        count = len(states)
        shocks = (
            np.abs(rng.normal(0.0, self._sigma, size=(count, len(self._names))))
            * self._direction
            * np.sqrt(dt)
        )
        jumps = rng.random(count) < (self.jump_rate_per_hour * dt / 3600.0)
        for i, state in enumerate(states):
            self._apply(state, dt, shocks[i])
            if jumps[i]:
                self.apply_jump(state, rng)

    def _apply(self, state: CalibrationState, dt: float, shocks: np.ndarray) -> None:
        nominal = state.NOMINAL
        for name, theta, shock in zip(self._names, self._theta, shocks, strict=True):
            x = getattr(state, name)
            x = x + theta * (nominal[name] - x) * dt + shock
            if name == "t2_us":
                x = max(1.0, x)
            elif name != "detuning_offset":
                x = float(np.clip(x, 0.0, 1.0))
            setattr(state, name, x)

    def apply_jump(self, state: CalibrationState, rng: np.random.Generator) -> None:
        victim = rng.choice(list(self.params.keys()))
        theta, sigma, direction = self.params[victim]
        x = getattr(state, victim)
        jump = abs(rng.normal(0.0, sigma * self.jump_scale * 60.0)) * direction
        x = x + jump
        if victim == "t2_us":
            x = max(1.0, x)
        elif victim != "detuning_offset":
            x = float(np.clip(x, 0.0, 1.0))
        setattr(state, victim, x)


class DriftProcess:
    """Simulated process stepping a drift model on a fixed cadence."""

    def __init__(
        self,
        sim: Simulator,
        state: CalibrationState,
        model: DriftModel,
        rng: np.random.Generator,
        interval: float = 60.0,
        on_step: Callable[[CalibrationState], None] | None = None,
    ) -> None:
        if interval <= 0:
            raise CalibrationError("drift interval must be positive")
        self.sim = sim
        self.state = state
        self.model = model
        self.rng = rng
        self.interval = interval
        self.on_step = on_step
        self.process = sim.spawn(self._run(), name="calibration-drift", background=True)

    def _run(self):
        while True:
            yield Timeout(self.interval)
            self.model.step(self.state, self.interval, self.rng)
            if self.on_step is not None:
                self.on_step(self.state)


class DriftEnsemble:
    """One background process advancing *every* site's calibration on a
    shared cadence.

    A federation of N sites used to spawn N :class:`DriftProcess`
    instances — N wakeups per interval, each stepping one state with
    per-parameter draws.  The ensemble wakes once and steps all member
    states through :meth:`DriftModel.step_many`: a single batched
    normal draw covers every (site, parameter) shock.  States may join
    after the process starts (late-join sites drift from their next
    shared tick).
    """

    def __init__(
        self,
        sim: Simulator,
        model: DriftModel,
        rng: np.random.Generator,
        interval: float = 60.0,
        on_step: Callable[[list[CalibrationState]], None] | None = None,
    ) -> None:
        if interval <= 0:
            raise CalibrationError("drift interval must be positive")
        self.sim = sim
        self.model = model
        self.rng = rng
        self.interval = interval
        self.on_step = on_step
        self.states: list[CalibrationState] = []
        self.ticks = 0
        self.process = sim.spawn(
            self._run(), name="calibration-drift-ensemble", background=True
        )

    def add(self, state: CalibrationState) -> None:
        """Enroll a state; it drifts from the next shared tick on."""
        # identity, not ==: distinct sites can hold equal-valued states
        if not any(existing is state for existing in self.states):
            self.states.append(state)

    def _run(self):
        while True:
            yield Timeout(self.interval)
            self.model.step_many(self.states, self.interval, self.rng)
            self.ticks += 1
            if self.on_step is not None and self.states:
                self.on_step(self.states)
