"""Cloud job intake gateway (paper §3.3 extension).

"Although not part of this work, the system could be extended to also
accept jobs via a cloud interface, similar to how it is handled in the
JHPC-Quantum project."  This module is that extension: an external
intake in front of the daemon for users who are *not* on the HPC system.

Differences from the internal surface:

* authentication by **API key** (provisioned by the site) instead of a
  Slurm-derived session,
* cloud jobs enter at a configurable priority class (default TEST —
  external users never outrank the site's production runs),
* per-key **rate limiting** (a token bucket on submissions) and a
  per-key quota of total shots, since cloud users don't consume their
  own cluster allocation,
* a simplified job model: submit -> poll -> fetch, no sessions exposed.

When a :class:`~repro.accounting.FederationAccounting` is wired in,
each cloud tenant doubles as a federation principal: gateway shots land
on the federation-wide ledger (priced by this gateway's rate card) and
an exhausted cross-site budget refuses intake here, so a tenant cannot
route around its federation cap by entering through the cloud door.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Any

from ..errors import AuthError, DaemonError
from .queue import PriorityClass
from .service import MiddlewareDaemon

__all__ = ["CloudGateway", "CloudTenant", "ensure_session"]


def ensure_session(
    daemon: MiddlewareDaemon,
    cache: dict[str, str],
    owner: str,
    priority_class: PriorityClass,
) -> str:
    """Return a live session token for ``owner``, reopening on expiry.

    Shared by every external intake in front of a daemon (cloud gateway,
    federation broker): the caller keeps a ``{owner: token}`` cache and
    this helper revalidates/refreshes it against the daemon.
    """
    token = cache.get(owner)
    if token is not None:
        try:
            daemon.resolve_session(token)
            return token
        except Exception:
            pass  # expired: open a fresh one
    session = daemon.create_session(owner, priority_class)
    cache[owner] = session.token
    return session.token


@dataclass
class CloudTenant:
    """One external organization's access grant."""

    name: str
    api_key: str
    priority_class: PriorityClass = PriorityClass.TEST
    max_submissions_per_hour: float = 30.0
    shot_quota: int = 100_000
    shots_used: int = 0
    bucket_tokens: float = field(default=0.0)
    bucket_updated_at: float = 0.0

    def refill(self, now: float) -> None:
        rate = self.max_submissions_per_hour / 3600.0
        elapsed = max(0.0, now - self.bucket_updated_at)
        cap = max(1.0, self.max_submissions_per_hour / 6.0)  # 10-min burst
        self.bucket_tokens = min(cap, self.bucket_tokens + elapsed * rate)
        self.bucket_updated_at = now


class CloudGateway:
    """External intake in front of a MiddlewareDaemon."""

    def __init__(
        self,
        daemon: MiddlewareDaemon,
        seed: int = 0,
        accounting=None,
        site_name: str = "cloud",
    ) -> None:
        self.daemon = daemon
        self._seed = seed
        #: optional :class:`~repro.accounting.FederationAccounting`:
        #: when set, every cloud tenant is also a federation principal —
        #: shots metered here land on the same cross-site ledger the
        #: broker bills, and an exhausted federation budget refuses
        #: intake at this gateway too (``site_name`` keys the rate card)
        self.accounting = accounting
        self.site_name = site_name
        self._key_counter = itertools.count(1)
        self._tenants: dict[str, CloudTenant] = {}      # api_key -> tenant
        self._by_name: dict[str, CloudTenant] = {}      # name -> tenant (O(1) admin ops)
        self._sessions: dict[str, str] = {}             # session owner -> token
        self._task_owner: dict[str, str] = {}           # task_id -> tenant

    # -- provisioning (site admin) ------------------------------------------

    def provision_tenant(
        self,
        name: str,
        priority_class: PriorityClass = PriorityClass.TEST,
        max_submissions_per_hour: float = 30.0,
        shot_quota: int = 100_000,
    ) -> str:
        """Create a tenant; returns its API key."""
        if name in self._by_name:
            raise DaemonError(f"tenant {name!r} already provisioned")
        if priority_class is PriorityClass.PRODUCTION:
            raise DaemonError("cloud tenants cannot be granted production priority")
        raw = f"cloud:{self._seed}:{next(self._key_counter)}:{name}"
        api_key = "ck_" + hashlib.sha256(raw.encode()).hexdigest()[:28]
        tenant = CloudTenant(
            name=name,
            api_key=api_key,
            priority_class=priority_class,
            max_submissions_per_hour=max_submissions_per_hour,
            shot_quota=shot_quota,
            bucket_tokens=max(1.0, max_submissions_per_hour / 6.0),
            bucket_updated_at=self.daemon.now,
        )
        self._tenants[api_key] = tenant
        self._by_name[name] = tenant
        return api_key

    def revoke_tenant(self, name: str) -> None:
        tenant = self._by_name.pop(name, None)
        if tenant is None:
            raise DaemonError(f"unknown tenant {name!r}")
        del self._tenants[tenant.api_key]
        self._sessions.pop(f"cloud:{name}", None)

    def tenants(self) -> list[str]:
        return sorted(self._by_name)

    # -- intake ------------------------------------------------------------

    def _authenticate(self, api_key: str) -> CloudTenant:
        if api_key not in self._tenants:
            raise AuthError("invalid API key")
        return self._tenants[api_key]

    def _session_token(self, tenant: CloudTenant) -> str:
        return ensure_session(
            self.daemon, self._sessions, f"cloud:{tenant.name}", tenant.priority_class
        )

    def submit(
        self,
        api_key: str,
        program: Any,
        resource: str | None = None,
        shots: int | None = None,
    ) -> str:
        """Submit one cloud job.  ``program`` may be a
        :class:`~repro.spec.JobSpec`; its resolved IR/shots/resource are
        used and the remaining args only serve as fallbacks.  Identity
        stays with the API key — a spec cannot impersonate another
        tenant through the cloud door."""
        from ..spec.jobspec import JobSpec

        if isinstance(program, JobSpec):
            spec = program.validate()
            if spec.is_multi:
                raise DaemonError(
                    "the cloud gateway runs fixed-size tasks; a multi-unit "
                    "spec (iterations/sites) needs the federation broker"
                )
            program = spec.program
            resource = spec.resource if spec.resource is not None else resource
            shots = spec.shots
        if resource is None:
            raise DaemonError(
                "cloud submission needs a target resource "
                "(spec.resource or resource=)"
            )
        tenant = self._authenticate(api_key)
        now = self.daemon.now
        tenant.refill(now)
        if tenant.bucket_tokens < 1.0:
            raise DaemonError(
                f"rate limit: tenant {tenant.name!r} exceeded "
                f"{tenant.max_submissions_per_hour}/hour"
            )
        requested = shots if shots is not None else 100
        if tenant.shots_used + requested > tenant.shot_quota:
            raise DaemonError(
                f"quota: tenant {tenant.name!r} has "
                f"{tenant.shot_quota - tenant.shots_used} shots left, "
                f"requested {requested}"
            )
        if self.accounting is not None:
            from ..accounting import AdmissionDecision

            if self.accounting.admission(tenant.name) is not AdmissionDecision.ADMIT:
                # the gateway has no hold queue: an exhausted federation
                # budget refuses intake here whatever the hold action
                raise DaemonError(
                    f"federation budget: tenant {tenant.name!r} has "
                    f"{self.accounting.remaining(tenant.name):.3f} credits left"
                )
        token = self._session_token(tenant)
        task = self.daemon.submit_task(token, program, resource, shots=shots)
        tenant.bucket_tokens -= 1.0
        tenant.shots_used += task.program.shots
        self._task_owner[task.task_id] = tenant.name
        if self.accounting is not None:
            # metered at intake (the gateway's prepaid-shots model), on
            # the same ledger the federation broker bills at completion
            self.accounting.meter_completion(
                tenant.name,
                self.site_name,
                shots=task.program.shots,
                now=self.daemon.now,
                job_id=task.task_id,
            )
        return task.task_id

    def status(self, api_key: str, task_id: str) -> dict[str, Any]:
        tenant = self._authenticate(api_key)
        self._check_owner(tenant, task_id)
        token = self._session_token(tenant)
        return self.daemon.task_status(token, task_id)

    def result(self, api_key: str, task_id: str) -> Any:
        tenant = self._authenticate(api_key)
        self._check_owner(tenant, task_id)
        token = self._session_token(tenant)
        return self.daemon.task_result(token, task_id)

    def usage(self, api_key: str) -> dict[str, Any]:
        tenant = self._authenticate(api_key)
        out = {
            "tenant": tenant.name,
            "priority_class": tenant.priority_class.name.lower(),
            "shots_used": tenant.shots_used,
            "shot_quota": tenant.shot_quota,
            "submissions_available": int(tenant.bucket_tokens),
        }
        if self.accounting is not None:
            out["federation_spend"] = self.accounting.spend(tenant.name)
            out["federation_budget_remaining"] = self.accounting.remaining(
                tenant.name
            )
        return out

    def _check_owner(self, tenant: CloudTenant, task_id: str) -> None:
        owner = self._task_owner.get(task_id)
        if owner != tenant.name:
            raise AuthError(f"task {task_id!r} does not belong to tenant {tenant.name!r}")
