"""Middleware daemon: the paper's second-level scheduling service.

Paper §3.3: "By introducing a simple service exposed as a RESTful API,
limited to managing the currently running jobs and sessions of the
QPU, we insert an abstraction layer between user sessions and the QPU
task queue."

Components:

* :mod:`http`      — transport-agnostic REST substrate (requests,
  responses, router); exercised in-process, no sockets,
* :mod:`auth`      — tokens + roles (user / admin),
* :mod:`sessions`  — per-user sessions ("a unique session is created,
  and a session token is returned"),
* :mod:`queue`     — the priority queue with the paper's three classes
  (production > test > development),
* :mod:`scheduler` — the second-level scheduler draining the queue
  into the QPU, with both sharing modes from §3.3 (preemption, and the
  initial implementation's shot-capping of non-production jobs),
* :mod:`service`   — the daemon object wiring everything,
* :mod:`api`       — REST route table over the daemon,
* :mod:`admin`     — admin operations (drain, maintenance, stats),
* :mod:`lowlevel`  — guarded low-level device controls (§2.5).
"""

from .api import build_router
from .auth import Role, TokenStore
from .http import HttpError, Request, Response, Router
from .queue import MiddlewareQueue, PriorityClass, QueuedTask, TaskState
from .scheduler import SecondLevelScheduler, SharingMode
from .service import MiddlewareDaemon
from .sessions import Session, SessionManager

__all__ = [
    "HttpError",
    "MiddlewareDaemon",
    "MiddlewareQueue",
    "PriorityClass",
    "QueuedTask",
    "Request",
    "Response",
    "Role",
    "Router",
    "SecondLevelScheduler",
    "Session",
    "SessionManager",
    "SharingMode",
    "TaskState",
    "TokenStore",
    "build_router",
]
