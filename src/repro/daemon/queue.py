"""The middleware task queue with the paper's priority classes.

Paper §3.3 — "A priority queue is implemented, for example we can
envision several classes of user jobs:

    (1) production jobs (top priority)
    (2) test runs / scalability tests (medium priority)
    (3) development runs (low priority)"

Pops follow (class, FIFO) order.  The queue also implements the
initial-implementation sharing policy from the same section:
non-production tasks get their shot counts capped and their batching
disabled so "the waiting time for production jobs will be low".
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

from ..errors import QueueError
from ..sdk.ir import AnalogProgram

__all__ = ["MiddlewareQueue", "PriorityClass", "QueuedTask", "TaskState"]


class PriorityClass(enum.IntEnum):
    """Lower value = higher priority (heap order)."""

    PRODUCTION = 0
    TEST = 1
    DEVELOPMENT = 2

    @classmethod
    def parse(cls, value: str) -> "PriorityClass":
        try:
            return cls[value.upper()]
        except KeyError:
            raise QueueError(
                f"unknown priority class {value!r}; "
                f"valid: {[m.name.lower() for m in cls]}"
            ) from None

    @classmethod
    def from_partition(cls, partition: str) -> "PriorityClass":
        """Paper §3.3: 'The daemon retrieves the job's priority from
        Slurm' — partition names map onto classes."""
        lowered = partition.lower()
        if "prod" in lowered:
            return cls.PRODUCTION
        if "test" in lowered:
            return cls.TEST
        return cls.DEVELOPMENT


class TaskState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"
    PREEMPTED = "preempted"  # transient: returns to QUEUED


@dataclass
class QueuedTask:
    """One task in the middleware queue."""

    task_id: str
    session_id: str
    user: str
    program: AnalogProgram
    priority: PriorityClass
    resource: str
    enqueued_at: float
    state: TaskState = TaskState.QUEUED
    started_at: float | None = None
    finished_at: float | None = None
    result: Any = None
    error: str = ""
    preempt_count: int = 0
    batched: bool = True
    metadata: dict[str, Any] = field(default_factory=dict)
    #: owning queue, attached at submit time so every state transition
    #: (the scheduler writes ``task.state`` directly) keeps the queue's
    #: per-class queued counters exact without a mediator API
    _queue: "MiddlewareQueue | None" = field(
        default=None, init=False, repr=False, compare=False
    )
    #: heap sequence of the task's latest (re)queueing — the FIFO
    #: tiebreak scheduling algorithms sort on; a requeued task gets a
    #: fresh number, sending it to the back of its priority class
    _heap_seq: int = field(default=0, init=False, repr=False, compare=False)

    def __setattr__(self, name: str, value: Any) -> None:
        if name == "state":
            old = self.__dict__.get("state")
            object.__setattr__(self, name, value)
            queue = self.__dict__.get("_queue")
            if queue is not None and old is not value:
                queue._on_task_state(self, old, value)
            return
        object.__setattr__(self, name, value)

    def wait_time(self) -> float | None:
        if self.started_at is None:
            return None
        return self.started_at - self.enqueued_at


@dataclass(frozen=True)
class ShotCapPolicy:
    """The §3.3 initial sharing policy: 'non-production jobs configured
    with a low number of shots and without batched submission'."""

    test_max_shots: int = 500
    dev_max_shots: int = 100
    disable_batching_below_production: bool = True

    def apply(self, task: QueuedTask) -> None:
        if task.priority is PriorityClass.PRODUCTION:
            return
        cap = (
            self.test_max_shots
            if task.priority is PriorityClass.TEST
            else self.dev_max_shots
        )
        if task.program.shots > cap:
            task.metadata["shots_capped_from"] = task.program.shots
            task.program = task.program.with_shots(cap)
        if self.disable_batching_below_production:
            task.batched = False


class MiddlewareQueue:
    """Priority queue over :class:`QueuedTask`."""

    def __init__(self, shot_cap: ShotCapPolicy | None = None) -> None:
        self._heap: list[tuple[int, int, str]] = []
        self._tasks: dict[str, QueuedTask] = {}
        self._seq = itertools.count(1)
        self._id_counter = itertools.count(1)
        self.shot_cap = shot_cap
        # queued tasks per class, maintained on every state transition:
        # depth introspection (site snapshots poll it on every federation
        # sweep) must not scan the ever-growing terminal-task table
        self._queued_counts: dict[PriorityClass, int] = {
            p: 0 for p in PriorityClass
        }
        # live queued tasks (insertion-ordered), maintained on every
        # state transition: scheduling algorithms read the eligible set
        # per selection, which must not scan the terminal-task table
        self._queued: dict[str, QueuedTask] = {}
        # push-based lifecycle: external observers (federated sites,
        # session facades) register here and hear every task state
        # transition at the simulated instant it happens — the hook
        # that replaces status polling
        self._transition_listeners: list = []

    def add_transition_listener(self, callback) -> None:
        """Register ``callback(task, old_state, new_state)`` for every
        task state transition (including the initial ``None -> QUEUED``
        at submit).  Idempotent per callback object."""
        if callback not in self._transition_listeners:
            self._transition_listeners.append(callback)

    def remove_transition_listener(self, callback) -> None:
        self._transition_listeners = [
            cb for cb in self._transition_listeners if cb != callback
        ]

    def _on_task_state(
        self, task: QueuedTask, old: TaskState | None, new: TaskState
    ) -> None:
        if old is TaskState.QUEUED:
            self._queued_counts[task.priority] -= 1
            self._queued.pop(task.task_id, None)
        if new is TaskState.QUEUED:
            self._queued_counts[task.priority] += 1
            self._queued[task.task_id] = task
        for callback in self._transition_listeners:
            callback(task, old, new)

    # -- submission ---------------------------------------------------------

    def submit(
        self,
        session_id: str,
        user: str,
        program: AnalogProgram,
        priority: PriorityClass,
        resource: str,
        now: float,
    ) -> QueuedTask:
        task = QueuedTask(
            task_id=f"mw-task-{next(self._id_counter)}",
            session_id=session_id,
            user=user,
            program=program,
            priority=priority,
            resource=resource,
            enqueued_at=now,
        )
        if self.shot_cap is not None:
            self.shot_cap.apply(task)
        self._tasks[task.task_id] = task
        task._queue = self
        self._queued_counts[task.priority] += 1  # hook only sees changes
        self._queued[task.task_id] = task
        for callback in self._transition_listeners:
            callback(task, None, TaskState.QUEUED)
        self._push(task)
        return task

    def _push(self, task: QueuedTask) -> None:
        seq = next(self._seq)
        task._heap_seq = seq
        heapq.heappush(self._heap, (int(task.priority), seq, task.task_id))

    # -- consumption -----------------------------------------------------------

    def pop(self) -> QueuedTask | None:
        """Highest-priority queued task, or None."""
        while self._heap:
            _, _, task_id = heapq.heappop(self._heap)
            task = self._tasks[task_id]
            if task.state is TaskState.QUEUED:
                return task
        return None

    def prune(self) -> None:
        """Drop stale heap heads (tasks consumed out-of-band by a
        scheduling algorithm rather than :meth:`pop`), keeping the heap
        bounded by the live queued count instead of total history."""
        while self._heap and self._tasks[self._heap[0][2]].state is not TaskState.QUEUED:
            heapq.heappop(self._heap)

    def peek_priority(self) -> PriorityClass | None:
        for prio, _, task_id in sorted(self._heap):
            if self._tasks[task_id].state is TaskState.QUEUED:
                return PriorityClass(prio)
        return None

    def requeue(self, task: QueuedTask, now: float) -> None:
        """Return a preempted task to the queue (keeps original class)."""
        if task.state is not TaskState.PREEMPTED:
            raise QueueError(
                f"only preempted tasks can be requeued, {task.task_id} is {task.state.value}"
            )
        task.state = TaskState.QUEUED
        task.started_at = None
        self._push(task)

    def cancel(self, task_id: str) -> None:
        task = self.get(task_id)
        if task.state in (TaskState.QUEUED, TaskState.PREEMPTED):
            task.state = TaskState.CANCELLED

    # -- queries ------------------------------------------------------------------

    def get(self, task_id: str) -> QueuedTask:
        if task_id not in self._tasks:
            raise QueueError(f"unknown task {task_id!r}")
        return self._tasks[task_id]

    def queued_count(self, priority: PriorityClass | None = None) -> int:
        if priority is not None:
            return self._queued_counts[priority]
        return sum(self._queued_counts.values())

    def depth_by_class(self) -> dict[str, int]:
        return {p.name.lower(): self.queued_count(p) for p in PriorityClass}

    def all_tasks(self) -> list[QueuedTask]:
        return list(self._tasks.values())

    def queued_tasks(self) -> list[QueuedTask]:
        """Live queued tasks, O(queued) — the eligible set scheduling
        algorithms select from."""
        return list(self._queued.values())

    def tasks_for_session(self, session_id: str) -> list[QueuedTask]:
        return [t for t in self._tasks.values() if t.session_id == session_id]
