"""Admin operations: the "Administration area" of the paper's Figure 2.

High-level admin/monitoring actions over the daemon: device
maintenance, queue statistics, session management, QA triggering.
Separated from the service so the REST layer can gate every method on
the ADMIN role uniformly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..errors import DaemonError
from ..qpu.qa import QAJob

if TYPE_CHECKING:  # pragma: no cover
    from .service import MiddlewareDaemon

__all__ = ["AdminOperations"]


class AdminOperations:
    """Administrative façade over a running daemon."""

    def __init__(self, daemon: "MiddlewareDaemon") -> None:
        self.daemon = daemon

    # -- device ----------------------------------------------------------------

    def start_maintenance(self, resource: str) -> dict[str, Any]:
        device = self.daemon.hardware_device(resource)
        device.start_maintenance()
        return {"resource": resource, "status": device.status}

    def finish_maintenance(self, resource: str) -> dict[str, Any]:
        device = self.daemon.hardware_device(resource)
        device.finish_maintenance(self.daemon.now)
        return {
            "resource": resource,
            "status": device.status,
            "fidelity": device.calibration.fidelity_proxy(),
        }

    def run_qa(self, resource: str, shots: int = 200) -> dict[str, Any]:
        """Trigger the QA reference job (paper §3.4: hosting-site QA)."""
        device = self.daemon.hardware_device(resource)
        result = QAJob(shots=shots).run(device, now=self.daemon.now)
        return {
            "resource": resource,
            "score": result.score,
            "passed": result.passed,
            "details": result.details,
        }

    def recalibrate_if_degraded(self, resource: str, qa_threshold: float = 0.85) -> dict[str, Any]:
        """QA check; on failure run a maintenance+recalibration cycle."""
        device = self.daemon.hardware_device(resource)
        qa = QAJob(shots=200, threshold=qa_threshold).run(device, now=self.daemon.now)
        recalibrated = False
        if not qa.passed:
            device.start_maintenance()
            device.finish_maintenance(self.daemon.now)
            recalibrated = True
        return {"resource": resource, "qa_score": qa.score, "recalibrated": recalibrated}

    # -- queue / sessions -------------------------------------------------------

    def queue_stats(self) -> dict[str, Any]:
        queue = self.daemon.queue
        waits = self.daemon.scheduler.wait_times_by_class()
        return {
            "depth": queue.depth_by_class(),
            "completed": self.daemon.scheduler.tasks_completed,
            "preempted": self.daemon.scheduler.tasks_preempted,
            "mean_wait_by_class": {
                cls: (sum(v) / len(v) if v else None) for cls, v in waits.items()
            },
        }

    def list_sessions(self) -> list[dict[str, Any]]:
        return [
            {
                "session_id": s.session_id,
                "user": s.user,
                "priority_class": s.priority_class.name.lower(),
                "created_at": s.created_at,
                "tasks": len(s.task_ids),
            }
            for s in self.daemon.sessions.active()
        ]

    def close_session(self, session_id: str) -> dict[str, Any]:
        self.daemon.sessions.close(session_id)
        return {"session_id": session_id, "closed": True}

    def cancel_task(self, task_id: str) -> dict[str, Any]:
        self.daemon.queue.cancel(task_id)
        return {"task_id": task_id, "state": self.daemon.queue.get(task_id).state.value}

    def expire_idle_sessions(self) -> dict[str, Any]:
        expired = self.daemon.sessions.expire_idle(self.daemon.now)
        return {"expired": expired}

    # -- guarded low-level access ------------------------------------------------

    def lowlevel_read(self, resource: str) -> dict[str, float]:
        return self.daemon.lowlevel_for(resource).readable_parameters()

    def lowlevel_write(self, resource: str, name: str, value: float, actor: str) -> dict[str, Any]:
        control = self.daemon.lowlevel_for(resource)
        control.write(name, value, self.daemon.now, actor=actor)
        return {"resource": resource, "parameter": name, "value": value}

    def hardware_or_error(self, resource: str):
        try:
            return self.daemon.hardware_device(resource)
        except DaemonError:
            raise
