"""The second-level scheduler: daemon queue -> QPU.

This is the layer the paper inserts *between* Slurm and the QPU
(abstract: "a second layer of scheduling after the main HPC resource
manager in order to improve the utilization of the QPU").  One worker
process drains the :class:`~repro.daemon.queue.MiddlewareQueue` in
priority order into a QRMI resource.

Two sharing modes, both from §3.3:

* :attr:`SharingMode.SHOT_CAP` — the paper's initial implementation:
  non-production tasks run with capped shots and unbatched submission,
  so the QPU frees up quickly for production arrivals (no preemption
  machinery needed),
* :attr:`SharingMode.PREEMPT` — "the production job should always be
  able to pre-empt running jobs of lower priority automatically": an
  arriving production task interrupts a running test/dev task, which is
  requeued and restarted later.

An optional *selection policy* hook lets the pattern-aware interleaving
experiments (Table 1) reorder eligible tasks without forking the
scheduler.
"""

from __future__ import annotations

import enum
from collections.abc import Callable

from ..errors import DaemonError
from ..qrmi.interface import QuantumResource
from ..scheduling.algorithms import SchedulingAlgorithm, daemon_views, get_algorithm
from ..simkernel import Interrupt, Simulator, Store, TraceRecorder
from .queue import MiddlewareQueue, PriorityClass, QueuedTask, TaskState

__all__ = ["SecondLevelScheduler", "SharingMode"]


class SharingMode(enum.Enum):
    SHOT_CAP = "shot-cap"
    PREEMPT = "preempt"


class SecondLevelScheduler:
    """Single-QPU worker draining the middleware queue."""

    def __init__(
        self,
        sim: Simulator,
        queue: MiddlewareQueue,
        resources: dict[str, QuantumResource],
        mode: SharingMode = SharingMode.SHOT_CAP,
        trace: TraceRecorder | None = None,
        selection_policy: Callable[[list[QueuedTask], float], QueuedTask | None] | None = None,
        on_task_done: Callable[[QueuedTask], None] | None = None,
        algorithm: SchedulingAlgorithm | str | None = None,
    ) -> None:
        self.sim = sim
        self.queue = queue
        self.resources = resources
        self.mode = mode
        self.trace = trace if trace is not None else TraceRecorder()
        self.selection_policy = selection_policy
        self.on_task_done = on_task_done
        self.algorithm = self._resolve_algorithm(algorithm)
        self.current: QueuedTask | None = None
        #: set by :func:`repro.observability.tracing.instrument_scheduler`
        #: — when a tracer is wired, each execution runs under a
        #: "dispatch" span tagged with this site label
        self.span_tracer = None
        self.span_site = "local"
        #: set by :func:`repro.observability.profiling.instrument_scheduler_profiler`
        #: — when wired, each select pass runs under a "scheduler.select"
        #: profiler scope
        self.scope_profiler = None
        self._wake = Store(name="scheduler-wake")
        self._worker = sim.spawn(self._run(), name="second-level-scheduler")
        self.tasks_completed = 0
        self.tasks_preempted = 0

    # -- algorithm selection ----------------------------------------------------

    @staticmethod
    def _resolve_algorithm(
        algorithm: SchedulingAlgorithm | str | None,
    ) -> SchedulingAlgorithm:
        if algorithm is None:
            return get_algorithm("fifo-priority")
        if isinstance(algorithm, str):
            return get_algorithm(algorithm)
        return algorithm

    def use_algorithm(self, algorithm: SchedulingAlgorithm | str) -> None:
        """Swap the queue discipline by registry name (or instance)."""
        self.algorithm = self._resolve_algorithm(algorithm)

    # -- notification -----------------------------------------------------------

    def notify_submit(self, task: QueuedTask) -> None:
        """Called by the daemon after each queue submission."""
        self.trace.emit(
            self.sim.now,
            "daemon",
            "task_enqueued",
            task_id=task.task_id,
            priority=task.priority.name.lower(),
        )
        if (
            self.mode is SharingMode.PREEMPT
            and self.current is not None
            and task.priority < self.current.priority
        ):
            # production arrival preempts the running lower-class task
            self._worker.interrupt(cause=("mw-preempt", task.task_id))
        self._wake.put("task")

    # -- the worker -----------------------------------------------------------

    def _select(self) -> QueuedTask | None:
        profiler = self.scope_profiler
        if profiler is None:
            return self._select_inner()
        with profiler.scope("scheduler.select"):
            return self._select_inner()

    def _select_inner(self) -> QueuedTask | None:
        if self.selection_policy is not None:
            eligible = [
                t for t in self.queue.all_tasks() if t.state is TaskState.QUEUED
            ]
            if not eligible:
                return None
            chosen = self.selection_policy(eligible, self.sim.now)
            if chosen is None:
                return None
            if chosen.state is not TaskState.QUEUED:
                raise DaemonError("selection policy returned a non-queued task")
            # consume it from the heap lazily by marking then popping equals
            chosen.started_at = self.sim.now
            chosen.state = TaskState.RUNNING
            return chosen
        eligible = self.queue.queued_tasks()
        if not eligible:
            return None
        pending, resources, system = daemon_views(eligible, self.sim.now)
        chosen = None
        for decision in self.algorithm.schedule(pending, resources, system):
            if decision.kind in ("start", "backfill"):
                chosen = self.queue.get(decision.job_id)
                break
        if chosen is None:
            return None
        if chosen.state is not TaskState.QUEUED:
            raise DaemonError("scheduling algorithm returned a non-queued task")
        chosen.started_at = self.sim.now
        chosen.state = TaskState.RUNNING
        self.queue.prune()
        return chosen

    def _run(self):
        while True:
            yield self._wake.get()
            while True:
                task = self._select()
                if task is None:
                    break
                yield from self._run_task(task)

    def _run_task(self, task: QueuedTask):
        # started_at was stamped in _select, *before* the RUNNING
        # transition, so queue listeners observe a consistent task
        self.current = task
        self.trace.emit(
            self.sim.now,
            "daemon",
            "task_start",
            task_id=task.task_id,
            priority=task.priority.name.lower(),
            wait=task.wait_time(),
        )
        span = None
        if self.span_tracer is not None:
            span = self.span_tracer.start_task_span(
                self.span_site, task.task_id, "dispatch", self.sim.now,
                resource=task.resource,
            )
        resource = self.resources.get(task.resource)
        try:
            if resource is None:
                raise DaemonError(f"task routed to unknown resource {task.resource!r}")
            if hasattr(resource, "execute_in_sim"):
                result = yield from resource.execute_in_sim(
                    self.sim, task.program, **self._exec_kwargs(resource, task)
                )
            else:
                # local emulator: synchronous, zero simulated QPU time
                result = resource._execute(task.program)
        except Interrupt as intr:
            cause = intr.cause if isinstance(intr.cause, tuple) else (intr.cause,)
            if cause and cause[0] == "mw-preempt":
                task.state = TaskState.PREEMPTED
                task.preempt_count += 1
                self.tasks_preempted += 1
                self.trace.emit(
                    self.sim.now,
                    "daemon",
                    "task_preempted",
                    task_id=task.task_id,
                    by=cause[1],
                )
                self._end_span(span, "preempted")
                self.queue.requeue(task, self.sim.now)
                self.current = None
                return
            self._end_span(span, "failed")
            task.error = f"interrupted: {intr.cause!r}"
            task.finished_at = self.sim.now
            task.state = TaskState.FAILED
            self.current = None
            self._finish(task)
            return
        except Exception as err:
            self._end_span(span, "failed")
            task.error = f"{type(err).__name__}: {err}"
            task.finished_at = self.sim.now
            task.state = TaskState.FAILED
            self.current = None
            self._finish(task)
            return
        self._end_span(span, "ok")
        task.result = result
        task.finished_at = self.sim.now
        task.state = TaskState.COMPLETED
        self.current = None
        self.tasks_completed += 1
        self._finish(task)

    def _end_span(self, span, status: str) -> None:
        if span is not None:
            self.span_tracer.end_span(span, self.sim.now, status=status)

    def _exec_kwargs(self, resource: QuantumResource, task: QueuedTask) -> dict:
        # only QPU-backed resources understand batching
        if hasattr(resource, "device"):
            return {"batched": task.batched}
        return {}

    def _finish(self, task: QueuedTask) -> None:
        self.trace.emit(
            self.sim.now,
            "daemon",
            "task_end",
            task_id=task.task_id,
            state=task.state.value,
            priority=task.priority.name.lower(),
        )
        if self.on_task_done is not None:
            self.on_task_done(task)

    # -- introspection ----------------------------------------------------------

    def wait_times_by_class(self) -> dict[str, list[float]]:
        """Observed queue waits per priority class (finished tasks only)."""
        out: dict[str, list[float]] = {p.name.lower(): [] for p in PriorityClass}
        for task in self.queue.all_tasks():
            wait = task.wait_time()
            if wait is not None and task.state in (
                TaskState.COMPLETED,
                TaskState.RUNNING,
            ):
                out[task.priority.name.lower()].append(wait)
        return out
