"""Transport-agnostic REST substrate.

Requests and responses are plain objects; the router matches
``METHOD /path/{param}`` templates.  No sockets — the science in this
reproduction is in the scheduling and session semantics, not in TCP —
but the surface mirrors a real HTTP daemon closely enough that every
handler maps 1:1 onto a real framework route.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from ..errors import DaemonError

__all__ = ["HttpError", "Request", "Response", "Router"]


class HttpError(DaemonError):
    """Handler-level error with an HTTP status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One API call."""

    method: str
    path: str
    body: dict[str, Any] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    params: dict[str, str] = field(default_factory=dict)  # filled by router

    @property
    def token(self) -> str:
        """Bearer token from the Authorization header ('' if absent)."""
        auth = self.headers.get("Authorization", "")
        if auth.startswith("Bearer "):
            return auth[len("Bearer ") :]
        return ""


@dataclass
class Response:
    """Handler result."""

    status: int = 200
    body: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


Handler = Callable[[Request], Response]


class _Route:
    __slots__ = ("method", "template", "segments", "handler")

    def __init__(self, method: str, template: str, handler: Handler) -> None:
        self.method = method.upper()
        self.template = template
        self.segments = [s for s in template.split("/") if s]
        self.handler = handler

    def match_path(self, path: str) -> dict[str, str] | None:
        """Template match ignoring the method (for 404-vs-405)."""
        parts = [s for s in path.split("/") if s]
        if len(parts) != len(self.segments):
            return None
        params: dict[str, str] = {}
        for seg, part in zip(self.segments, parts, strict=True):
            if seg.startswith("{") and seg.endswith("}"):
                params[seg[1:-1]] = part
            elif seg != part:
                return None
        return params

    def match(self, method: str, path: str) -> dict[str, str] | None:
        if method.upper() != self.method:
            return None
        return self.match_path(path)


class Router:
    """Ordered route table with template parameters."""

    def __init__(self) -> None:
        self._routes: list[_Route] = []

    def add(self, method: str, template: str, handler: Handler) -> None:
        for route in self._routes:
            if route.method == method.upper() and route.template == template:
                raise DaemonError(f"route {method} {template} already registered")
        self._routes.append(_Route(method, template, handler))

    def routes(self) -> list[tuple[str, str]]:
        return [(r.method, r.template) for r in self._routes]

    def dispatch(self, request: Request) -> Response:
        """Route + invoke; converts handler errors to status codes.

        Unknown path -> 404; known path with the wrong method -> 405.
        """
        matched_path = False
        for route in self._routes:
            if route.match_path(request.path) is None:
                continue
            matched_path = True
            params = route.match(request.method, request.path)
            if params is None:
                continue
            request.params = params
            try:
                return route.handler(request)
            except HttpError as err:
                return Response(status=err.status, body={"error": err.message})
            except Exception as err:  # handler bug -> 500, never a crash
                return Response(
                    status=500,
                    body={"error": f"{type(err).__name__}: {err}"},
                )
        status = 405 if matched_path else 404
        return Response(
            status=status,
            body={"error": f"no route for {request.method} {request.path}"},
        )
