"""Guarded low-level device controls.

Paper §2.5: "Exposing low-level controls of QPUs is not always safe ...
Exposing a subset of these low-level APIs and having the ability to
implement increased safeguards should be performed at the daemon
level. This indirection provides a natural point to define
interoperable APIs and integrate third-party components, enhancing QPU
calibration, performance, and runtime features."

Implementation: a whitelist of calibration parameters with safety
bounds; reads are free (admin), writes are clamped-or-rejected; and a
registration point for third-party *calibration routines* (optimal
control, error mitigation) that run against the device under the same
guard.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..errors import DaemonError
from ..qpu.device import QPUDevice

__all__ = ["LowLevelControl", "ParameterGuard"]


@dataclass(frozen=True)
class ParameterGuard:
    """Safety envelope for one writable calibration parameter."""

    name: str
    min_value: float
    max_value: float

    def check(self, value: float) -> None:
        if not (self.min_value <= value <= self.max_value):
            raise DaemonError(
                f"value {value} for {self.name!r} outside safety bounds "
                f"[{self.min_value}, {self.max_value}]"
            )


#: Default whitelist: what third-party calibration tools may touch.
DEFAULT_GUARDS: dict[str, ParameterGuard] = {
    guard.name: guard
    for guard in (
        ParameterGuard("rabi_calibration_error", 0.0, 0.2),
        ParameterGuard("detuning_offset", -1.0, 1.0),
        ParameterGuard("detection_epsilon", 0.0, 0.2),
        ParameterGuard("detection_epsilon_prime", 0.0, 0.2),
    )
}


class LowLevelControl:
    """The daemon's guarded window onto device internals."""

    def __init__(self, device: QPUDevice, guards: dict[str, ParameterGuard] | None = None) -> None:
        self.device = device
        self.guards = dict(guards if guards is not None else DEFAULT_GUARDS)
        self._routines: dict[str, Callable[[QPUDevice, float], dict]] = {}
        self.audit_log: list[tuple[float, str, str, float | None]] = []

    # -- parameter access ------------------------------------------------------

    def readable_parameters(self) -> dict[str, float]:
        """All calibration parameters (reads are safe)."""
        return self.device.calibration.snapshot()

    def writable_parameters(self) -> list[str]:
        return sorted(self.guards)

    def read(self, name: str) -> float:
        params = self.readable_parameters()
        if name not in params:
            raise DaemonError(f"unknown parameter {name!r}")
        return params[name]

    def write(self, name: str, value: float, now: float, actor: str = "admin") -> None:
        """Guarded write: parameter must be whitelisted AND in bounds."""
        if name not in self.guards:
            raise DaemonError(
                f"parameter {name!r} is not writable through the daemon "
                f"(writable: {self.writable_parameters()})"
            )
        self.guards[name].check(value)
        setattr(self.device.calibration, name, float(value))
        self.audit_log.append((now, actor, f"write:{name}", value))

    # -- third-party routines --------------------------------------------------

    def register_routine(self, name: str, routine: Callable[[QPUDevice, float], dict]) -> None:
        """Register a third-party calibration/optimization routine.

        The routine receives (device, now) and returns a report dict;
        it must go through :meth:`write` for any parameter changes —
        direct device access from routines is a programming-model
        convention enforced by review, as in the paper's design.
        """
        if name in self._routines:
            raise DaemonError(f"routine {name!r} already registered")
        self._routines[name] = routine

    def routines(self) -> list[str]:
        return sorted(self._routines)

    def run_routine(self, name: str, now: float, actor: str = "admin") -> dict:
        if name not in self._routines:
            raise DaemonError(f"unknown routine {name!r}")
        self.audit_log.append((now, actor, f"routine:{name}", None))
        return self._routines[name](self.device, now)
