"""User sessions.

Paper §3.3: "As the user part of the runtime environment connects to
the middleware, a unique session is created, and a session token is
returned."  Sessions carry the user identity, the priority class
(defaulting from the Slurm partition the job runs in), and the task
ids submitted through them.  Idle sessions expire.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..errors import SessionError
from .auth import Role, TokenStore
from .queue import PriorityClass

__all__ = ["Session", "SessionManager"]


@dataclass
class Session:
    session_id: str
    user: str
    token: str
    priority_class: PriorityClass
    created_at: float
    last_active_at: float
    slurm_job_id: int | None = None
    task_ids: list[str] = field(default_factory=list)
    closed: bool = False


class SessionManager:
    """Creates, resolves, touches and expires sessions."""

    def __init__(self, tokens: TokenStore, idle_timeout: float = 3600.0) -> None:
        if idle_timeout <= 0:
            raise SessionError("idle timeout must be positive")
        self.tokens = tokens
        self.idle_timeout = idle_timeout
        self._sessions: dict[str, Session] = {}
        self._by_token: dict[str, str] = {}
        self._counter = itertools.count(1)

    def create(
        self,
        user: str,
        priority_class: PriorityClass = PriorityClass.DEVELOPMENT,
        now: float = 0.0,
        slurm_job_id: int | None = None,
    ) -> Session:
        session_id = f"sess-{next(self._counter)}"
        token = self.tokens.issue(user, Role.USER)
        session = Session(
            session_id=session_id,
            user=user,
            token=token,
            priority_class=priority_class,
            created_at=now,
            last_active_at=now,
            slurm_job_id=slurm_job_id,
        )
        self._sessions[session_id] = session
        self._by_token[token] = session_id
        return session

    def resolve(self, token: str, now: float) -> Session:
        """Find the live session behind a token; touch its activity clock."""
        if token not in self._by_token:
            raise SessionError("no session for this token")
        session = self._sessions[self._by_token[token]]
        if session.closed:
            raise SessionError(f"session {session.session_id} is closed")
        if now - session.last_active_at > self.idle_timeout:
            self.close(session.session_id)
            raise SessionError(f"session {session.session_id} expired")
        session.last_active_at = now
        return session

    def get(self, session_id: str) -> Session:
        if session_id not in self._sessions:
            raise SessionError(f"unknown session {session_id!r}")
        return self._sessions[session_id]

    def close(self, session_id: str) -> None:
        session = self.get(session_id)
        if not session.closed:
            session.closed = True
            self.tokens.revoke(session.token)
            self._by_token.pop(session.token, None)

    def expire_idle(self, now: float) -> list[str]:
        """Close every session idle beyond the timeout; returns their ids."""
        expired = [
            s.session_id
            for s in self._sessions.values()
            if not s.closed and now - s.last_active_at > self.idle_timeout
        ]
        for session_id in expired:
            self.close(session_id)
        return expired

    def active(self) -> list[Session]:
        return [s for s in self._sessions.values() if not s.closed]

    def __len__(self) -> int:
        return len(self._sessions)
