"""The middleware daemon object.

Owns every subsystem of the paper's quantum-access-node service
(Figure 2): sessions, the priority queue, the second-level scheduler,
the QRMI resource table, observability (metrics registry + TSDB +
scraper + alerts + per-job metadata), admin operations and guarded
low-level controls.

The REST router (:func:`repro.daemon.api.build_router`) maps paths onto
the public methods here; the runtime client
(:class:`repro.runtime.environment.RuntimeEnvironment`) talks to either
the router (full REST surface) or the daemon object directly.
"""

from __future__ import annotations

from typing import Any

from ..errors import DaemonError, SessionError, ValidationError
from ..observability import (
    AlertManager,
    JobMetadataStore,
    MetricRegistry,
    ProfileStore,
    Scraper,
    SLOTracker,
    TimeSeriesDB,
    render_exposition,
)
from ..qpu.device import QPUDevice
from ..qrmi.interface import QuantumResource
from ..sdk.ir import AnalogProgram
from ..sdk.registry import SDKRegistry, default_registry
from ..simkernel import Simulator, TraceRecorder
from .admin import AdminOperations
from .auth import Role, TokenStore
from .lowlevel import LowLevelControl
from .queue import MiddlewareQueue, PriorityClass, QueuedTask, ShotCapPolicy, TaskState
from .scheduler import SecondLevelScheduler, SharingMode
from .sessions import Session, SessionManager

__all__ = ["MiddlewareDaemon"]


class MiddlewareDaemon:
    """The quantum-access-node middleware service."""

    def __init__(
        self,
        sim: Simulator,
        resources: dict[str, QuantumResource],
        mode: SharingMode = SharingMode.SHOT_CAP,
        shot_cap: ShotCapPolicy | None = None,
        sdk_registry: SDKRegistry | None = None,
        trace: TraceRecorder | None = None,
        scrape_interval: float = 15.0,
        session_idle_timeout: float = 3600.0,
        selection_policy=None,
        algorithm=None,
    ) -> None:
        if not resources:
            raise DaemonError("daemon needs at least one QRMI resource")
        self.sim = sim
        self.resources = dict(resources)
        self.trace = trace if trace is not None else TraceRecorder()
        self.tokens = TokenStore()
        self.sessions = SessionManager(self.tokens, idle_timeout=session_idle_timeout)
        self.queue = MiddlewareQueue(
            shot_cap=shot_cap if shot_cap is not None else ShotCapPolicy()
        )
        self.sdk_registry = sdk_registry or default_registry()
        self.jobmeta = JobMetadataStore()
        self.scheduler = SecondLevelScheduler(
            sim,
            self.queue,
            self.resources,
            mode=mode,
            trace=self.trace,
            selection_policy=selection_policy,
            on_task_done=self._record_task_metadata,
            algorithm=algorithm,
        )
        # observability stack
        self.metrics = MetricRegistry()
        self.tsdb = TimeSeriesDB()
        self.scraper = Scraper(sim, self.tsdb, interval=scrape_interval)
        self._m_tasks = self.metrics.counter(
            "daemon_tasks_total", "Tasks by terminal state", label_names=("state",)
        )
        self._m_queue = self.metrics.gauge(
            "daemon_queue_depth", "Queued tasks per class", label_names=("class",)
        )
        self._m_wait = self.metrics.histogram(
            "daemon_task_wait_seconds",
            "Queue wait per class",
            buckets=(1.0, 5.0, 15.0, 60.0, 300.0, 1800.0, 7200.0),
            label_names=("class",),
        )
        self._m_sessions = self.metrics.gauge("daemon_active_sessions", "Live sessions")
        #: per-workload phase signatures, fed from every queue transition
        #: (served raw by ``GET /profiles``)
        self.profiles = ProfileStore()
        self.queue.add_transition_listener(self.profiles.queue_listener())
        #: optional :class:`~repro.observability.slo.SLOTracker` — when a
        #: deployment declares objectives (``daemon.slo = SLOTracker(...)``),
        #: its burn rates render in ``/metrics``
        self.slo: SLOTracker | None = None
        self.alerts: AlertManager | None = None
        self._lowlevel: dict[str, LowLevelControl] = {}
        for name, resource in self.resources.items():
            device = getattr(resource, "device", None)
            if isinstance(device, QPUDevice):
                self.scraper.add_qpu(device, name=name)
                self._lowlevel[name] = LowLevelControl(device)
                if self.alerts is None:
                    self.alerts = AlertManager.with_default_qpu_rules(self.tsdb, name)
        if self.alerts is not None:
            # evaluate alert rules on the scrape cadence so for_seconds
            # windows progress without an external ticker
            manager = self.alerts

            def evaluate_alerts(now: float) -> dict[str, float]:
                return {"alerts_firing": float(len(manager.evaluate(now)))}

            self.scraper.add_target("alert-evaluator", evaluate_alerts)
        self.scraper.start()
        self.admin_ops = AdminOperations(self)
        self.admin_token = self.tokens.issue("site-admin", Role.ADMIN)

    # -- time -----------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    # -- sessions ---------------------------------------------------------------

    def create_session(
        self,
        user: str,
        priority_class: str | PriorityClass = PriorityClass.DEVELOPMENT,
        slurm_partition: str | None = None,
        slurm_job_id: int | None = None,
    ) -> Session:
        """Open a session; priority comes from the Slurm partition when
        given (paper §3.3: "The daemon retrieves the job's priority from
        Slurm"), else from the explicit class."""
        if slurm_partition is not None:
            priority = PriorityClass.from_partition(slurm_partition)
        elif isinstance(priority_class, str):
            priority = PriorityClass.parse(priority_class)
        else:
            priority = priority_class
        session = self.sessions.create(
            user, priority, now=self.now, slurm_job_id=slurm_job_id
        )
        self._m_sessions.set(float(len(self.sessions.active())))
        self.trace.emit(
            self.now,
            "daemon",
            "session_create",
            session_id=session.session_id,
            user=user,
            priority=priority.name.lower(),
        )
        return session

    def resolve_session(self, token: str) -> Session:
        return self.sessions.resolve(token, self.now)

    # -- task submission ----------------------------------------------------------

    def submit_task(
        self,
        token: str,
        program: Any,
        resource: str,
        shots: int | None = None,
    ) -> QueuedTask:
        """Validate and enqueue a program for the session behind ``token``.

        ``program`` may be any registered SDK object, an
        :class:`AnalogProgram`, or an IR dict (as arriving over REST).
        """
        session = self.resolve_session(token)
        if resource not in self.resources:
            raise DaemonError(
                f"unknown resource {resource!r}; available: {sorted(self.resources)}"
            )
        if isinstance(program, dict):
            program = AnalogProgram.from_dict(program)
        else:
            program = self.sdk_registry.translate(program, shots=shots or 100)
        if shots is not None and program.shots != shots:
            program = program.with_shots(shots)
        task = self.queue.submit(
            session_id=session.session_id,
            user=session.user,
            program=program,
            priority=session.priority_class,
            resource=resource,
            now=self.now,
        )
        # point-of-submission validation against the resource's current
        # target, on the *effective* program (after shot-cap policy).
        try:
            self._validate_against_target(task.program, resource)
        except Exception:
            self.queue.cancel(task.task_id)
            raise
        session.task_ids.append(task.task_id)
        self._update_queue_gauges()
        self.scheduler.notify_submit(task)
        return task

    def submit_spec(self, token: str, spec: Any) -> QueuedTask:
        """REST-native spec intake: accept a :class:`~repro.spec.JobSpec`
        (or its ``to_dict`` payload, as arriving over ``POST /jobs``),
        validate it, and route it through the normal submit path.

        Tenancy and algorithm selection travel on the task's metadata;
        queue priority stays with the session (paper §3.3 — the daemon
        trusts the resource manager, not the payload, for priority).
        Multi-unit specs belong to the federation and are refused.
        """
        from ..spec import JobSpec

        if isinstance(spec, dict):
            spec = JobSpec.from_dict(spec)
        session = self.resolve_session(token)
        spec = spec.validate(default_tenant=session.user)
        if spec.is_multi:
            raise ValidationError(
                "daemon runs single-unit jobs; submit multi-unit specs to the federation"
            )
        resource = spec.resource
        if resource is None:
            if len(self.resources) != 1:
                raise DaemonError(
                    f"spec names no resource; available: {sorted(self.resources)}"
                )
            resource = next(iter(self.resources))
        task = self.submit_task(
            token, spec.program.to_dict(), resource, shots=spec.shots
        )
        task.metadata.update(spec.metadata)
        task.metadata["tenant"] = spec.tenant
        if spec.algorithm is not None:
            task.metadata["algorithm"] = spec.algorithm
        return task

    def _validate_against_target(self, program: AnalogProgram, resource: str) -> None:
        from ..qpu.specs import DeviceSpecs

        target = self.resources[resource].target()
        specs = DeviceSpecs.from_dict(target)
        specs.check(program.register, list(program.segments), program.shots)

    def task_status(self, token: str, task_id: str) -> dict[str, Any]:
        session = self.resolve_session(token)
        task = self.queue.get(task_id)
        if task.session_id != session.session_id:
            raise SessionError("task belongs to a different session")
        return {
            "task_id": task.task_id,
            "state": task.state.value,
            "priority": task.priority.name.lower(),
            "enqueued_at": task.enqueued_at,
            "started_at": task.started_at,
            "finished_at": task.finished_at,
            "preempt_count": task.preempt_count,
            "metadata": dict(task.metadata),
        }

    def task_result(self, token: str, task_id: str) -> Any:
        session = self.resolve_session(token)
        task = self.queue.get(task_id)
        if task.session_id != session.session_id:
            raise SessionError("task belongs to a different session")
        if task.state is TaskState.FAILED:
            raise DaemonError(f"task failed: {task.error}")
        if task.state is not TaskState.COMPLETED:
            raise DaemonError(f"task not finished (state {task.state.value})")
        return task.result

    # -- discovery ---------------------------------------------------------------

    def list_resources(self) -> list[dict[str, Any]]:
        return [res.metadata() for res in self.resources.values()]

    def resource_target(self, resource: str) -> dict[str, Any]:
        if resource not in self.resources:
            raise DaemonError(f"unknown resource {resource!r}")
        return self.resources[resource].target()

    def supported_sdks(self) -> list[str]:
        return self.sdk_registry.names()

    # -- observability -------------------------------------------------------------

    def metrics_text(self) -> str:
        self._update_queue_gauges()
        return render_exposition(self.metrics, alerts=self.alerts, slo=self.slo)

    def healthz(self) -> dict[str, Any]:
        """Liveness/readiness summary for ``GET /healthz``.

        ``ready`` means the scraper is keeping up: before the first
        scrape is even due the daemon is trivially ready; afterwards the
        last scrape must be within two intervals.  ``status`` degrades
        (but the route stays 200 — liveness) when it is not.
        """
        now = self.now
        last = self.scraper.last_scrape_at
        lag = None if last is None else now - last
        due = now >= self.scraper.interval
        ready = (not due) or (lag is not None and lag <= 2 * self.scraper.interval)
        firing = 0 if self.alerts is None else len(self.alerts.firing())
        return {
            "live": True,
            "ready": ready,
            "status": "ok" if ready and firing == 0 else "degraded",
            "scrape_lag_s": lag,
            "scrape_targets": len(self.scraper.targets()),
            "firing_alerts": firing,
            "queue_depth": self.queue.queued_count(),
        }

    def telemetry(self, resource: str) -> dict[str, Any]:
        device = self.hardware_device(resource)
        snap = device.telemetry(self.now)
        return snap.to_metrics() | {"status": snap.status}

    def evaluate_alerts(self) -> list[dict[str, Any]]:
        if self.alerts is None:
            return []
        firing = self.alerts.evaluate(self.now)
        return [
            {"name": a.rule.name, "severity": a.rule.severity, "since": a.fired_at}
            for a in firing
        ]

    def _record_task_metadata(self, task: QueuedTask) -> None:
        state = task.state.value
        self._m_tasks.inc(labels={"state": state})
        wait = task.wait_time()
        if wait is not None:
            self._m_wait.observe(wait, labels={"class": task.priority.name.lower()})
        self._update_queue_gauges()
        if task.state is TaskState.COMPLETED and task.result is not None:
            try:
                self.jobmeta.record_from_result(
                    task.task_id,
                    self.now,
                    task.result,
                    user=task.user,
                    priority_class=task.priority.name.lower(),
                    queue_wait_s=wait or 0.0,
                )
            except Exception:
                pass  # metadata is best-effort; never fail the task for it

    def job_metadata(self, token: str, task_id: str) -> dict[str, Any]:
        session = self.resolve_session(token)
        task = self.queue.get(task_id)
        if task.session_id != session.session_id:
            raise SessionError("task belongs to a different session")
        record = self.jobmeta.get(task_id)
        return {
            "task_id": record.task_id,
            "backend": record.backend,
            "shots": record.shots,
            "queue_wait_s": record.queue_wait_s,
            "calibration": dict(record.calibration),
            "diagnostics": dict(record.diagnostics),
        }

    def _update_queue_gauges(self) -> None:
        for cls, depth in self.queue.depth_by_class().items():
            self._m_queue.set(float(depth), labels={"class": cls})

    # -- internals used by admin/lowlevel --------------------------------------------

    def hardware_device(self, resource: str) -> QPUDevice:
        if resource not in self.resources:
            raise DaemonError(f"unknown resource {resource!r}")
        device = getattr(self.resources[resource], "device", None)
        if not isinstance(device, QPUDevice):
            raise DaemonError(f"resource {resource!r} is not hardware-backed")
        return device

    def lowlevel_for(self, resource: str) -> LowLevelControl:
        if resource not in self._lowlevel:
            raise DaemonError(f"no low-level control for resource {resource!r}")
        return self._lowlevel[resource]
