"""Tokens and roles for the daemon API.

Two roles: ``USER`` (session operations, task submission) and ``ADMIN``
(device management, low-level controls, observability admin).  The
"Administration area" in the paper's Figure 2 is exactly the set of
endpoints gated on ADMIN.
"""

from __future__ import annotations

import enum
import hashlib
import itertools

from ..errors import AuthError

__all__ = ["Role", "TokenStore"]


class Role(enum.Enum):
    USER = "user"
    ADMIN = "admin"


class TokenStore:
    """Issues and validates opaque bearer tokens.

    Tokens are deterministic digests of (seed, counter) so simulations
    replay exactly; entropy is irrelevant in a testbed, unforgeability
    is modeled by the lookup table.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._counter = itertools.count(1)
        self._tokens: dict[str, tuple[str, Role]] = {}

    def issue(self, subject: str, role: Role = Role.USER) -> str:
        raw = f"{self._seed}:{next(self._counter)}:{subject}:{role.value}"
        token = hashlib.sha256(raw.encode()).hexdigest()[:32]
        self._tokens[token] = (subject, role)
        return token

    def revoke(self, token: str) -> None:
        if token not in self._tokens:
            raise AuthError("cannot revoke unknown token")
        del self._tokens[token]

    def authenticate(self, token: str) -> tuple[str, Role]:
        """Return (subject, role) or raise :class:`AuthError`."""
        if not token:
            raise AuthError("missing bearer token")
        if token not in self._tokens:
            raise AuthError("invalid or revoked token")
        return self._tokens[token]

    def require_role(self, token: str, role: Role) -> str:
        subject, actual = self.authenticate(token)
        if actual is not role:
            raise AuthError(f"operation requires role {role.value!r}")
        return subject

    def active_count(self) -> int:
        return len(self._tokens)
