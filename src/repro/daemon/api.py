"""REST route table over the daemon.

The paper's RESTful API (§3.3), "limited to managing the currently
running jobs and sessions of the QPU", plus the admin/observability
surface of Figure 2.  Routes:

User (bearer token = session token unless noted):

    POST   /sessions                      open a session (no token)
    POST   /tasks                         submit a program
    POST   /jobs                          submit a declarative JobSpec dict
    GET    /tasks/{id}                    status
    GET    /tasks/{id}/result             counts + metadata
    GET    /tasks/{id}/metadata           per-job metadata (paper §2.5)
    GET    /resources                     resource discovery (no token)
    GET    /resources/{name}/target       current device specs (no token)
    GET    /sdks                          supported SDKs (no token)
    GET    /metrics                       Prometheus exposition (no token)
    GET    /healthz                      liveness/readiness summary (no token)
    GET    /profiles                     per-workload phase profiles (no token)

Admin (bearer token must have the ADMIN role):

    GET    /admin/queue                   queue statistics
    GET    /admin/sessions                active sessions
    DELETE /admin/sessions/{id}           force-close a session
    DELETE /admin/tasks/{id}              cancel a queued task
    POST   /admin/devices/{name}/maintenance        start maintenance
    DELETE /admin/devices/{name}/maintenance        finish + recalibrate
    POST   /admin/devices/{name}/qa       run the QA reference job
    GET    /admin/devices/{name}/telemetry
    GET    /admin/devices/{name}/lowlevel            read calibration params
    PUT    /admin/devices/{name}/lowlevel/{param}    guarded write
    GET    /admin/alerts                  firing alerts
"""

from __future__ import annotations

from ..errors import DaemonError, QueueError, ReproError, SessionError, ValidationError
from .auth import Role
from .http import HttpError, Request, Response, Router
from .service import MiddlewareDaemon

__all__ = ["build_router"]


def _wrap(fn):
    """Convert stack errors into HTTP statuses."""

    def handler(request: Request) -> Response:
        try:
            return fn(request)
        except HttpError:
            raise
        except ValidationError as err:
            return Response(
                status=422, body={"error": str(err), "violations": err.violations}
            )
        except SessionError as err:
            return Response(status=401, body={"error": str(err)})
        except QueueError as err:
            return Response(status=404, body={"error": str(err)})
        except DaemonError as err:
            message = str(err)
            status = 404 if "unknown" in message else 400
            return Response(status=status, body={"error": message})
        except ReproError as err:
            return Response(status=400, body={"error": str(err)})

    return handler


def build_router(daemon: MiddlewareDaemon) -> Router:
    router = Router()

    def require_admin(request: Request) -> str:
        try:
            return daemon.tokens.require_role(request.token, Role.ADMIN)
        except ReproError as err:
            raise HttpError(403, str(err)) from err

    # -- user surface ---------------------------------------------------------

    @_wrap
    def create_session(request: Request) -> Response:
        body = request.body
        if "user" not in body:
            raise HttpError(400, "body must include 'user'")
        session = daemon.create_session(
            user=body["user"],
            priority_class=body.get("priority_class", "development"),
            slurm_partition=body.get("slurm_partition"),
            slurm_job_id=body.get("slurm_job_id"),
        )
        return Response(
            status=201,
            body={
                "session_id": session.session_id,
                "token": session.token,
                "priority_class": session.priority_class.name.lower(),
            },
        )

    @_wrap
    def submit_task(request: Request) -> Response:
        body = request.body
        for key in ("program", "resource"):
            if key not in body:
                raise HttpError(400, f"body must include {key!r}")
        task = daemon.submit_task(
            token=request.token,
            program=body["program"],
            resource=body["resource"],
            shots=body.get("shots"),
        )
        return Response(
            status=202,
            body={
                "task_id": task.task_id,
                "state": task.state.value,
                "priority": task.priority.name.lower(),
                "metadata": dict(task.metadata),
            },
        )

    @_wrap
    def submit_job(request: Request) -> Response:
        body = request.body
        if "program" not in body:
            raise HttpError(400, "body must include 'program'")
        task = daemon.submit_spec(token=request.token, spec=body)
        return Response(
            status=202,
            body={
                "task_id": task.task_id,
                "state": task.state.value,
                "priority": task.priority.name.lower(),
                "metadata": dict(task.metadata),
            },
        )

    @_wrap
    def task_status(request: Request) -> Response:
        return Response(body=daemon.task_status(request.token, request.params["id"]))

    @_wrap
    def task_result(request: Request) -> Response:
        result = daemon.task_result(request.token, request.params["id"])
        return Response(
            body={
                "counts": result.counts,
                "shots": result.shots,
                "backend": result.backend,
                "metadata": result.metadata,
            }
        )

    @_wrap
    def task_metadata(request: Request) -> Response:
        return Response(body=daemon.job_metadata(request.token, request.params["id"]))

    @_wrap
    def list_resources(request: Request) -> Response:
        return Response(body={"resources": daemon.list_resources()})

    @_wrap
    def resource_target(request: Request) -> Response:
        return Response(body=daemon.resource_target(request.params["name"]))

    @_wrap
    def list_sdks(request: Request) -> Response:
        return Response(body={"sdks": daemon.supported_sdks()})

    @_wrap
    def metrics(request: Request) -> Response:
        return Response(body={"text": daemon.metrics_text()})

    @_wrap
    def healthz(request: Request) -> Response:
        return Response(body=daemon.healthz())

    @_wrap
    def profiles(request: Request) -> Response:
        return Response(body={"profiles": daemon.profiles.snapshot()})

    router.add("POST", "/sessions", create_session)
    router.add("POST", "/tasks", submit_task)
    router.add("POST", "/jobs", submit_job)
    router.add("GET", "/tasks/{id}", task_status)
    router.add("GET", "/tasks/{id}/result", task_result)
    router.add("GET", "/tasks/{id}/metadata", task_metadata)
    router.add("GET", "/resources", list_resources)
    router.add("GET", "/resources/{name}/target", resource_target)
    router.add("GET", "/sdks", list_sdks)
    router.add("GET", "/metrics", metrics)
    router.add("GET", "/healthz", healthz)
    router.add("GET", "/profiles", profiles)

    # -- admin surface -----------------------------------------------------------

    @_wrap
    def admin_queue(request: Request) -> Response:
        require_admin(request)
        return Response(body=daemon.admin_ops.queue_stats())

    @_wrap
    def admin_sessions(request: Request) -> Response:
        require_admin(request)
        return Response(body={"sessions": daemon.admin_ops.list_sessions()})

    @_wrap
    def admin_close_session(request: Request) -> Response:
        require_admin(request)
        return Response(body=daemon.admin_ops.close_session(request.params["id"]))

    @_wrap
    def admin_cancel_task(request: Request) -> Response:
        require_admin(request)
        return Response(body=daemon.admin_ops.cancel_task(request.params["id"]))

    @_wrap
    def admin_start_maintenance(request: Request) -> Response:
        require_admin(request)
        return Response(body=daemon.admin_ops.start_maintenance(request.params["name"]))

    @_wrap
    def admin_finish_maintenance(request: Request) -> Response:
        require_admin(request)
        return Response(body=daemon.admin_ops.finish_maintenance(request.params["name"]))

    @_wrap
    def admin_qa(request: Request) -> Response:
        require_admin(request)
        shots = int(request.body.get("shots", 200))
        return Response(body=daemon.admin_ops.run_qa(request.params["name"], shots=shots))

    @_wrap
    def admin_telemetry(request: Request) -> Response:
        require_admin(request)
        return Response(body=daemon.telemetry(request.params["name"]))

    @_wrap
    def admin_lowlevel_read(request: Request) -> Response:
        require_admin(request)
        return Response(
            body={
                "parameters": daemon.admin_ops.lowlevel_read(request.params["name"]),
                "writable": daemon.lowlevel_for(request.params["name"]).writable_parameters(),
            }
        )

    @_wrap
    def admin_lowlevel_write(request: Request) -> Response:
        actor = require_admin(request)
        if "value" not in request.body:
            raise HttpError(400, "body must include 'value'")
        return Response(
            body=daemon.admin_ops.lowlevel_write(
                request.params["name"],
                request.params["param"],
                float(request.body["value"]),
                actor=actor,
            )
        )

    @_wrap
    def admin_alerts(request: Request) -> Response:
        require_admin(request)
        return Response(body={"firing": daemon.evaluate_alerts()})

    router.add("GET", "/admin/queue", admin_queue)
    router.add("GET", "/admin/sessions", admin_sessions)
    router.add("DELETE", "/admin/sessions/{id}", admin_close_session)
    router.add("DELETE", "/admin/tasks/{id}", admin_cancel_task)
    router.add("POST", "/admin/devices/{name}/maintenance", admin_start_maintenance)
    router.add("DELETE", "/admin/devices/{name}/maintenance", admin_finish_maintenance)
    router.add("POST", "/admin/devices/{name}/qa", admin_qa)
    router.add("GET", "/admin/devices/{name}/telemetry", admin_telemetry)
    router.add("GET", "/admin/devices/{name}/lowlevel", admin_lowlevel_read)
    router.add("PUT", "/admin/devices/{name}/lowlevel/{param}", admin_lowlevel_write)
    router.add("GET", "/admin/alerts", admin_alerts)

    return router
