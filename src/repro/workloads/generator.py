"""Synthetic hybrid job streams for the scheduling experiments.

A :class:`HybridJobFactory` turns a Table-1 pattern into a concrete
hybrid job: a payload that alternates QPU tasks (submitted through the
middleware daemon) and classical compute (simulated CPU time), with the
split chosen to land in the requested pattern class.  A
:class:`JobStream` draws jobs from a pattern mix with Poisson arrivals,
reproducibly from a named RNG stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SchedulerError
from ..qpu.geometry import Register
from ..scheduling.interleave import HybridJobEstimate
from ..scheduling.patterns import WorkloadPattern, hint_for_pattern
from ..sdk.qiskit_like import AnalogCircuit
from ..simkernel import RngRegistry, Timeout

__all__ = ["HybridJobFactory", "JobStream", "StreamConfig"]


#: per-pattern (qpu_burst_shots, classical_seconds_per_iter, iterations)
#: chosen so a 1 Hz QPU lands the job in the right Table-1 class.
PATTERN_SHAPES: dict[WorkloadPattern, tuple[int, float, int]] = {
    WorkloadPattern.HIGH_QC_LOW_CC: (120, 5.0, 3),
    WorkloadPattern.LOW_QC_HIGH_CC: (30, 300.0, 2),
    WorkloadPattern.BALANCED: (60, 60.0, 4),
}


@dataclass(frozen=True)
class SyntheticHybridJob:
    """One generated job: identity + expected time budgets + payload ingredients."""

    name: str
    user: str
    pattern: WorkloadPattern
    shots_per_burst: int
    classical_seconds: float
    iterations: int
    n_atoms: int = 4

    @property
    def hint(self) -> str:
        return hint_for_pattern(self.pattern).value

    def expected_qpu_seconds(self, shot_period_s: float = 1.0) -> float:
        return self.iterations * self.shots_per_burst * shot_period_s

    def expected_classical_seconds(self) -> float:
        return self.iterations * self.classical_seconds

    def estimate(self, shot_period_s: float = 1.0) -> HybridJobEstimate:
        return HybridJobEstimate(
            job_name=self.name,
            qpu_seconds=self.expected_qpu_seconds(shot_period_s),
            classical_seconds=self.expected_classical_seconds(),
        )

    def quantum_circuit(self) -> AnalogCircuit:
        reg = Register.chain(self.n_atoms, spacing=6.0)
        return (
            AnalogCircuit(reg, name=f"{self.name}-burst")
            .rx_global(np.pi / 2, duration=0.3)
            .measure_all()
        )

    def payload(self, client_factory, resource: str):
        """Build the cluster-job payload: iterations of (QPU burst via
        daemon, classical compute).

        ``client_factory() -> DaemonClient`` with an open session for
        this job's user/priority.
        """

        def run(ctx):
            client = client_factory()
            program = self.quantum_circuit().transpile(shots=self.shots_per_burst)
            for _ in range(self.iterations):
                task_id = client.submit(program.to_dict(), resource, shots=self.shots_per_burst)
                while True:
                    status = client.status(task_id)
                    if status["state"] in ("completed", "failed", "cancelled"):
                        break
                    yield Timeout(1.0)
                if status["state"] != "completed":
                    raise SchedulerError(f"{self.name}: burst ended {status['state']}")
                if self.classical_seconds > 0:
                    yield Timeout(self.classical_seconds)
            return {"job": self.name, "iterations": self.iterations}

        return run


class HybridJobFactory:
    """Builds SyntheticHybridJobs for a pattern."""

    def __init__(self, n_atoms: int = 4) -> None:
        self.n_atoms = n_atoms
        self._counter = 0

    def make(self, pattern: WorkloadPattern, user: str = "user") -> SyntheticHybridJob:
        shots, classical, iters = PATTERN_SHAPES[pattern]
        self._counter += 1
        return SyntheticHybridJob(
            name=f"{pattern.value.lower()}-job-{self._counter}",
            user=user,
            pattern=pattern,
            shots_per_burst=shots,
            classical_seconds=classical,
            iterations=iters,
            n_atoms=self.n_atoms,
        )


@dataclass
class StreamConfig:
    """Pattern mix + arrival process."""

    mix: dict[WorkloadPattern, float] = field(
        default_factory=lambda: {
            WorkloadPattern.HIGH_QC_LOW_CC: 1 / 3,
            WorkloadPattern.LOW_QC_HIGH_CC: 1 / 3,
            WorkloadPattern.BALANCED: 1 / 3,
        }
    )
    arrival_rate_per_hour: float = 6.0
    num_jobs: int = 12
    users: tuple[str, ...] = ("alice", "bob", "carol")

    def __post_init__(self) -> None:
        total = sum(self.mix.values())
        if total <= 0:
            raise SchedulerError("pattern mix must have positive weight")
        self.mix = {p: w / total for p, w in self.mix.items()}


class JobStream:
    """Reproducible Poisson stream of synthetic hybrid jobs."""

    def __init__(self, config: StreamConfig, rng_registry: RngRegistry, factory: HybridJobFactory | None = None) -> None:
        self.config = config
        self.rng = rng_registry.get("job-stream")
        self.factory = factory or HybridJobFactory()

    def generate(self) -> list[tuple[float, SyntheticHybridJob]]:
        """(arrival_time_s, job) pairs, sorted by arrival."""
        cfg = self.config
        patterns = list(cfg.mix.keys())
        weights = np.array([cfg.mix[p] for p in patterns])
        mean_gap = 3600.0 / cfg.arrival_rate_per_hour
        arrivals = np.cumsum(self.rng.exponential(mean_gap, size=cfg.num_jobs))
        jobs = []
        for i in range(cfg.num_jobs):
            pattern = patterns[int(self.rng.choice(len(patterns), p=weights))]
            user = cfg.users[i % len(cfg.users)]
            jobs.append((float(arrivals[i]), self.factory.make(pattern, user=user)))
        return jobs
