"""Sample-based quantum diagonalization (SQD) style workload — pattern B.

Paper §2.4: "As the machines grow in size the post-processing of
bitstrings become more resource intensive. For example in the recently
introduced Sample-based Quantum Diagonalization approach (SQD), where
the post-processing was parallelized up 6400 nodes on Fugaku."

Shape: ONE quantum sampling burst, then a classical eigenproblem on
the subspace spanned by the sampled configurations.  We really solve
it: the Rydberg-Ising Hamiltonian is projected onto the sampled
bitstring set and diagonalized with ``scipy.sparse.linalg.eigsh``.
The classical phase dominates (Low-QC / High-CC), and its cost scales
with the subspace dimension — the knob the malleability experiment
(C4) turns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import ReproError
from ..qpu.geometry import Register
from ..qpu.hamiltonian import interaction_matrix
from ..sdk.ir import AnalogProgram
from .qaa import make_qaa_program

__all__ = ["SQDWorkload", "sqd_postprocess"]


def sqd_postprocess(
    counts: dict[str, int],
    register: Register,
    delta: float = 6.0,
    omega: float = 2.0,
    max_dim: int = 512,
) -> dict:
    """Project H onto the sampled configuration subspace and diagonalize.

    H = sum_{i<j} U_ij n_i n_j - delta sum_i n_i  (diagonal part)
        + (omega/2) sum_i X_i                     (off-diagonal couplings
                                                   between sampled states
                                                   differing by one bit)

    Returns the subspace ground-state energy and diagnostics.
    """
    if not counts:
        raise ReproError("empty counts")
    # most-frequent configurations first, capped
    ordered = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:max_dim]
    basis = [bits for bits, _ in ordered]
    index = {bits: i for i, bits in enumerate(basis)}
    dim = len(basis)
    n = len(basis[0])
    u = interaction_matrix(register)

    occ = np.array(
        [np.frombuffer(b.encode(), dtype=np.uint8) - ord("0") for b in basis],
        dtype=np.float64,
    )
    diag = 0.5 * np.einsum("si,ij,sj->s", occ, u, occ) - delta * occ.sum(axis=1)

    rows, cols, vals = [], [], []
    for i, bits in enumerate(basis):
        rows.append(i)
        cols.append(i)
        vals.append(diag[i])
        # single-bit-flip couplings within the subspace
        for k in range(n):
            flipped = bits[:k] + ("1" if bits[k] == "0" else "0") + bits[k + 1 :]
            j = index.get(flipped)
            if j is not None and j > i:
                rows.extend((i, j))
                cols.extend((j, i))
                vals.extend((omega / 2.0, omega / 2.0))
    h = sp.csr_matrix((vals, (rows, cols)), shape=(dim, dim))
    if dim == 1:
        ground = float(diag[0])
    else:
        k = min(1, dim - 1) or 1
        eigenvalues = spla.eigsh(h, k=k, which="SA", return_eigenvectors=False)
        ground = float(eigenvalues.min())
    return {
        "subspace_dim": dim,
        "ground_energy": ground,
        "num_qubits": n,
        "nnz": int(h.nnz),
    }


@dataclass
class SQDWorkload:
    """The full pattern-B job description.

    ``classical_seconds(dim)`` models the wall-clock of the distributed
    post-processing (super-linear in subspace dimension), used by the
    cluster experiments; :meth:`run_postprocess` does the real math for
    correctness tests and examples.
    """

    n_atoms: int = 10
    shots: int = 300
    max_dim: int = 256
    classical_base_seconds: float = 120.0

    def quantum_program(self, name: str = "sqd-sampling") -> AnalogProgram:
        return make_qaa_program(
            n_atoms=self.n_atoms, shots=self.shots, duration=3.0, name=name
        )

    def register(self) -> Register:
        return Register.chain(self.n_atoms, spacing=6.0)

    def classical_seconds(self, subspace_dim: int) -> float:
        """Modeled post-processing wall-clock (O(dim^1.5) eigensolve)."""
        return self.classical_base_seconds * (max(1, subspace_dim) / 100.0) ** 1.5

    def run_postprocess(self, counts: dict[str, int]) -> dict:
        return sqd_postprocess(counts, self.register(), max_dim=self.max_dim)
