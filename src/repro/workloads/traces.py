"""Arrival-trace record & replay.

Fair policy comparison requires *identical* arrival streams (DESIGN.md:
"the paper's scheduling experiments compare policies on identical
arrival streams").  An :class:`ArrivalTrace` is an immutable, JSON
serializable record of (time, job descriptor) pairs that experiments
can generate once and replay under every policy — and ship alongside
results for exact reproduction.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace

from ..errors import SchedulerError
from ..scheduling.patterns import WorkloadPattern
from .generator import HybridJobFactory, JobStream, StreamConfig, SyntheticHybridJob

__all__ = [
    "ArrivalTrace",
    "TraceEntry",
    "contention_burst_trace",
    "multi_site_trace",
]


@dataclass(frozen=True)
class TraceEntry:
    """One arrival: everything needed to reconstruct the job."""

    arrival_s: float
    name: str
    user: str
    pattern: str
    shots_per_burst: int
    classical_seconds: float
    iterations: int
    n_atoms: int

    def to_job(self) -> SyntheticHybridJob:
        return SyntheticHybridJob(
            name=self.name,
            user=self.user,
            pattern=WorkloadPattern(self.pattern),
            shots_per_burst=self.shots_per_burst,
            classical_seconds=self.classical_seconds,
            iterations=self.iterations,
            n_atoms=self.n_atoms,
        )


class ArrivalTrace:
    """Immutable ordered arrival stream."""

    def __init__(self, entries: list[TraceEntry]) -> None:
        times = [e.arrival_s for e in entries]
        if times != sorted(times):
            raise SchedulerError("trace entries must be time-ordered")
        self.entries = tuple(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def jobs(self) -> list[tuple[float, SyntheticHybridJob]]:
        return [(e.arrival_s, e.to_job()) for e in self.entries]

    @property
    def horizon(self) -> float:
        return self.entries[-1].arrival_s if self.entries else 0.0

    def pattern_mix(self) -> dict[str, int]:
        mix: dict[str, int] = {}
        for entry in self.entries:
            mix[entry.pattern] = mix.get(entry.pattern, 0) + 1
        return mix

    # -- construction -----------------------------------------------------

    @classmethod
    def record(cls, stream: JobStream) -> "ArrivalTrace":
        """Materialize a generated stream into a replayable trace."""
        entries = [
            TraceEntry(
                arrival_s=arrival,
                name=job.name,
                user=job.user,
                pattern=job.pattern.value,
                shots_per_burst=job.shots_per_burst,
                classical_seconds=job.classical_seconds,
                iterations=job.iterations,
                n_atoms=job.n_atoms,
            )
            for arrival, job in stream.generate()
        ]
        return cls(entries)

    @classmethod
    def from_stream_config(
        cls, config: StreamConfig, root_seed: int, factory: HybridJobFactory | None = None
    ) -> "ArrivalTrace":
        from ..simkernel import RngRegistry

        return cls.record(JobStream(config, RngRegistry(root_seed), factory))

    @classmethod
    def merge(cls, *traces: "ArrivalTrace") -> "ArrivalTrace":
        """Interleave several traces into one time-ordered stream."""
        entries = sorted(
            (e for trace in traces for e in trace.entries), key=lambda e: e.arrival_s
        )
        return cls(list(entries))

    # -- serialization ------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps([asdict(e) for e in self.entries], indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ArrivalTrace":
        try:
            data = json.loads(text)
            return cls([TraceEntry(**item) for item in data])
        except (TypeError, KeyError, json.JSONDecodeError) as exc:
            raise SchedulerError(f"malformed trace JSON: {exc}") from exc


def multi_site_trace(
    streams: int = 3,
    config: StreamConfig | None = None,
    root_seed: int = 0,
) -> ArrivalTrace:
    """An aggregate arrival stream heavy enough to need a federation.

    Overlays ``streams`` independent Poisson tenant streams (distinct
    user populations, distinct RNG lineages) into one trace whose total
    rate is ``streams`` times one site's — the workload a single site
    saturates on but an N-site federation absorbs.  One shared factory
    keeps job names unique across the overlay.
    """
    if streams < 1:
        raise SchedulerError("multi_site_trace needs at least one stream")
    base = config or StreamConfig()
    factory = HybridJobFactory()
    parts = []
    for k in range(streams):
        cfg = replace(base, users=tuple(f"tenant{k}-{u}" for u in base.users))
        parts.append(ArrivalTrace.from_stream_config(cfg, root_seed + 7919 * (k + 1), factory))
    return ArrivalTrace.merge(*parts)


def contention_burst_trace(
    config: StreamConfig | None = None,
    streams: int = 2,
    burst_at: float = 600.0,
    burst_jobs: int = 12,
    burst_spacing_s: float = 2.0,
    burst_shots: int = 400,
    root_seed: int = 0,
) -> ArrivalTrace:
    """A trace that forces mid-flight contraction of malleable shares.

    Overlays a steady multi-tenant background stream with a tight burst
    of ``burst_jobs`` heavy quantum-dominated jobs starting at
    ``burst_at``: wherever the federation routes the burst, queue depth
    spikes past the resize loop's high watermark, so any malleable
    placement running there must shrink its share mid-flight and shift
    the remaining units to calmer sites.  Deterministic in
    ``root_seed`` like every other trace.
    """
    if burst_jobs < 1:
        raise SchedulerError("contention_burst_trace needs >= 1 burst job")
    if burst_at < 0 or burst_spacing_s < 0:
        raise SchedulerError("burst timing must be non-negative")
    background = multi_site_trace(
        streams=streams, config=config, root_seed=root_seed
    )
    factory = HybridJobFactory()
    burst_entries = []
    for i in range(burst_jobs):
        job = factory.make(WorkloadPattern.HIGH_QC_LOW_CC, user=f"burst-{i}")
        burst_entries.append(
            TraceEntry(
                arrival_s=burst_at + i * burst_spacing_s,
                name=f"burst-{job.name}",
                user=job.user,
                pattern=job.pattern.value,
                shots_per_burst=burst_shots,
                classical_seconds=0.0,
                iterations=1,
                n_atoms=job.n_atoms,
            )
        )
    return ArrivalTrace.merge(background, ArrivalTrace(burst_entries))
