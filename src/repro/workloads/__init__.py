"""Synthetic hybrid workloads.

The applications the paper's environment exists to serve:

* :mod:`vqe`  — a variational loop (pattern C exemplar: comparable
  quantum and classical time),
* :mod:`qaa`  — quantum adiabatic optimization sweeps (pattern A:
  QPU-dominant, minor post-processing),
* :mod:`sqd`  — sample-based-quantum-diagonalization style: one
  sampling burst then heavy classical eigensolving (pattern B; the
  paper's §2.4 cites SQD post-processing scaling to 6400 Fugaku
  nodes),
* :mod:`generator` — Poisson job streams mixing the three patterns
  into cluster/daemon experiments (Table 1, Figure 2).
"""

from .generator import HybridJobFactory, JobStream, StreamConfig
from .qaa import make_qaa_program, qaa_energy
from .sqd import SQDWorkload, sqd_postprocess
from .traces import (
    ArrivalTrace,
    TraceEntry,
    contention_burst_trace,
    multi_site_trace,
)
from .vqe import ising_energy_from_counts, make_vqe

__all__ = [
    "ArrivalTrace",
    "HybridJobFactory",
    "TraceEntry",
    "JobStream",
    "SQDWorkload",
    "StreamConfig",
    "ising_energy_from_counts",
    "make_qaa_program",
    "make_vqe",
    "contention_burst_trace",
    "multi_site_trace",
    "qaa_energy",
    "sqd_postprocess",
]
