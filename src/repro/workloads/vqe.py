"""VQE-style variational workload (pattern C).

Ansatz: an adiabatic-style sweep whose endpoint detunings and pulse
area are the variational parameters; objective: the energy of an
antiferromagnetic Ising chain estimated from measured bitstrings.
Physically meaningful (the optimum prepares the ordered phase) yet
cheap enough to run hundreds of times inside scheduling experiments.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError
from ..qpu.geometry import Register
from ..runtime.executor import HybridProgram, OptimizerLoop
from ..runtime.results import RunResult
from ..sdk.qiskit_like import AnalogCircuit

__all__ = ["ising_energy_from_counts", "make_vqe"]


def ising_energy_from_counts(
    counts: dict[str, int], j_coupling: float = 1.0, h_field: float = -0.5
) -> float:
    """<H> for H = J sum n_i n_{i+1} + h sum n_i, from measured counts.

    Positive ``j_coupling`` penalizes adjacent excitations (blockade-
    compatible AFM order); negative ``h_field`` rewards excitation, so
    the ground state is the alternating pattern.
    """
    if not counts:
        raise ReproError("empty counts")
    total = sum(counts.values())
    energy = 0.0
    for bits, count in counts.items():
        occ = np.frombuffer(bits.encode(), dtype=np.uint8) - ord("0")
        e = j_coupling * float((occ[:-1] * occ[1:]).sum()) + h_field * float(occ.sum())
        energy += count * e
    return energy / total


def make_vqe(
    register: Register | None = None,
    n_atoms: int = 6,
    shots: int = 200,
    max_iterations: int = 12,
    classical_seconds_per_iter: float = 5.0,
    sweep_duration: float = 2.0,
    name: str = "vqe",
) -> HybridProgram:
    """Build the variational workload.

    Parameters (3): pulse area, initial detuning, final detuning.
    """
    reg = register or Register.chain(n_atoms, spacing=6.0)

    def build_program(params: np.ndarray):
        # Blackman peak ~ area / (0.42 * duration); keep it under the
        # default device Rabi limit (12.57 rad/us) with margin so the
        # point-of-execution validation never rejects an optimizer step.
        max_area = 0.42 * sweep_duration * 11.0
        area = float(np.clip(params[0], 0.5, max_area))
        delta_start = float(np.clip(params[1], -15.0, 15.0))
        delta_stop = float(np.clip(params[2], -15.0, 15.0))
        return (
            AnalogCircuit(reg, name=name)
            .adiabatic_sweep(
                area=area,
                delta_start=delta_start,
                delta_stop=delta_stop,
                duration=sweep_duration,
            )
            .measure_all()
        )

    def objective(result: RunResult) -> float:
        return ising_energy_from_counts(result.counts)

    optimizer = OptimizerLoop(initial=np.array([6.0, -4.0, 6.0]), step=1.0)
    return HybridProgram(
        build_program=build_program,
        objective=objective,
        optimizer=optimizer,
        shots=shots,
        max_iterations=max_iterations,
        classical_seconds_per_iter=classical_seconds_per_iter,
        name=name,
    )
