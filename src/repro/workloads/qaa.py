"""Quantum adiabatic algorithm sweeps (pattern A: High-QC / Low-CC).

A QAA job is a batch of annealing sweeps at different durations/areas
with trivial classical post-processing — exactly Table 1's pattern A:
"Dominant [quantum load], Minor pre/post processing".
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError
from ..qpu.geometry import Register
from ..sdk.ir import AnalogProgram
from ..sdk.qiskit_like import AnalogCircuit

__all__ = ["make_qaa_program", "qaa_energy"]


def make_qaa_program(
    register: Register | None = None,
    n_atoms: int = 8,
    area: float = 8.0,
    delta_start: float = -6.0,
    delta_stop: float = 10.0,
    duration: float = 4.0,
    shots: int = 500,
    name: str = "qaa-sweep",
) -> AnalogProgram:
    """One annealing sweep preparing the ordered (crystal) phase."""
    reg = register or Register.chain(n_atoms, spacing=6.0)
    return (
        AnalogCircuit(reg, name=name)
        .adiabatic_sweep(
            area=area, delta_start=delta_start, delta_stop=delta_stop, duration=duration
        )
        .measure_all()
        .transpile(shots=shots)
    )


def qaa_energy(counts: dict[str, int], j_coupling: float = 1.0, h_field: float = -1.0) -> float:
    """Classical 'post-processing': the (cheap) energy estimate."""
    if not counts:
        raise ReproError("empty counts")
    total = sum(counts.values())
    energy = 0.0
    for bits, count in counts.items():
        occ = np.frombuffer(bits.encode(), dtype=np.uint8) - ord("0")
        energy += count * (
            j_coupling * float((occ[:-1] * occ[1:]).sum()) + h_field * float(occ.sum())
        )
    return energy / total
