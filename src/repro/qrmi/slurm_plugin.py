"""QRMI's Slurm integration: the SPANK plugin behind ``--qpu=<resource>``.

Paper §3.2: "we expose as devices to the scheduler and enable switching
via --qpu=<resource>" and §3.4: "QRMI already supports Qiskit and
Pulser backends, and Slurm Spank plugins".

At ``job_submit`` the plugin validates that the requested resource
exists in the site configuration (submission fails fast on typos —
better than a job dying hours later on a compute node).  At
``job_start`` it injects the resource's ``QRMI_*`` variables plus
``QRMI_DEFAULT_RESOURCE`` into the job environment, which is exactly
what the runtime inside the job reads.  This is the mechanism that
separates the quantum resource definition from program source code
(paper §2.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..cluster.spank import SpankPlugin
from ..config import ConfigSource, ResourceConfig, parse_resource_list
from ..errors import ResourceNotFound

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.job import Job

__all__ = ["QRMISpankPlugin"]


class QRMISpankPlugin(SpankPlugin):
    """Validates and injects QRMI resource configuration into jobs."""

    name = "qrmi-spank"

    def __init__(self, site_config: ConfigSource) -> None:
        self.site_config = site_config

    def _known_resources(self) -> list[str]:
        return parse_resource_list(self.site_config)

    def job_submit(self, job: "Job", controller) -> None:
        resource = job.spec.qpu_resource
        if not resource:
            return  # purely classical job
        known = self._known_resources()
        if resource not in known:
            raise ResourceNotFound(
                f"--qpu={resource}: unknown QRMI resource "
                f"(site provides: {known})"
            )

    def job_start(self, job: "Job", controller) -> None:
        resource = job.spec.qpu_resource
        if not resource:
            return
        env_name = resource.replace("-", "_")
        rc = ResourceConfig.from_config(self.site_config, env_name)
        job.env.update(rc.to_env())
        job.env["QRMI_RESOURCES"] = resource
        job.env["QRMI_DEFAULT_RESOURCE"] = resource
        # propagate the scheduler-assigned priority so the middleware
        # daemon can retrieve it (paper §3.3: "The daemon retrieves the
        # job's priority from Slurm").
        job.env["SLURM_JOB_PARTITION"] = job.spec.partition
        job.env["SLURM_JOB_ID"] = str(job.job_id)
