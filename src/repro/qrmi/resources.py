"""Resource-type taxonomy for QRMI configuration."""

from __future__ import annotations

import enum

from ..errors import ConfigError

__all__ = ["ResourceType"]


class ResourceType(enum.Enum):
    """The device classes the paper exposes via ``--qpu=<resource>`` (§3.2):

    (1) on-premises QPU connection,
    (2) cloud-based QPU resources,
    (3) cloud-based emulator resources,
    plus the local-emulator extension this work adds for the developer
    laptop loop.
    """

    LOCAL_EMULATOR = "local-emulator"
    CLOUD_EMULATOR = "cloud-emulator"
    ONPREM_QPU = "onprem-qpu"
    CLOUD_QPU = "cloud-qpu"

    @classmethod
    def parse(cls, value: str) -> "ResourceType":
        for member in cls:
            if member.value == value:
                return member
        raise ConfigError(
            f"unknown QRMI resource type {value!r}; "
            f"valid: {[m.value for m in cls]}"
        )

    @property
    def is_hardware(self) -> bool:
        return self in (ResourceType.ONPREM_QPU, ResourceType.CLOUD_QPU)

    @property
    def is_remote(self) -> bool:
        return self in (ResourceType.CLOUD_EMULATOR, ResourceType.CLOUD_QPU)

    @property
    def is_federable(self) -> bool:
        """Can a federation broker route *other* sites' jobs here?

        Local emulators are pinned to a login/compute node and make no
        sense as a cross-site target; everything reachable over a site
        boundary (hardware and hosted emulators) federates.
        """
        return self is not ResourceType.LOCAL_EMULATOR
