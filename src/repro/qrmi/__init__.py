"""QRMI — Quantum Resource Management Interface (vendor-neutral).

Reimplementation of the interface from Sitdikov et al. (paper ref
[23]), which the paper adopts as "our primary unifying runtime library
interface" and extends "from providing connectivity and Slurm
scheduling, with a second level of scheduler capability".

The trait surface (:class:`QuantumResource`):

``acquire() / release(token)``
    exclusive-ish access tokens,
``task_start(program) -> task_id``, ``task_status``, ``task_stop``,
``task_result``
    asynchronous task lifecycle,
``target()``
    current device specification document (for validation),
``metadata()``
    resource type, locality, connectivity info.

Resource implementations (:mod:`backends`):

* ``local-emulator``  — in-process emulator ladder (paper §3.2 item 3
  extended to the developer laptop),
* ``cloud-emulator``  — emulator behind simulated network latency,
* ``onprem-qpu``      — direct access to a :class:`~repro.qpu.QPUDevice`,
* ``cloud-qpu``       — QPU behind network latency.

Resources are configured exclusively via environment variables
(:mod:`repro.config`), which is QRMI's convention and what the Slurm
SPANK plugin (:mod:`slurm_plugin`) injects for the ``--qpu`` switch.
"""

from .backends import (
    CloudEmulatorResource,
    CloudQPUResource,
    LocalEmulatorResource,
    OnPremQPUResource,
)
from .env import load_resource, load_resources
from .interface import QRMITask, QuantumResource, TaskStatus
from .resources import ResourceType
from .slurm_plugin import QRMISpankPlugin

__all__ = [
    "CloudEmulatorResource",
    "CloudQPUResource",
    "LocalEmulatorResource",
    "OnPremQPUResource",
    "QRMISpankPlugin",
    "QRMITask",
    "QuantumResource",
    "ResourceType",
    "TaskStatus",
    "load_resource",
    "load_resources",
]
