"""Build QRMI resources from environment-style configuration.

QRMI's convention (paper §3.4): everything is configured through
environment variables.  A resource named ``dev-emu`` is described by::

    QRMI_RESOURCES=dev-emu,onprem
    QRMI_DEV_EMU_TYPE=local-emulator
    QRMI_DEV_EMU_EMULATOR=emu-mps
    QRMI_DEV_EMU_MAX_BOND_DIM=16
    QRMI_ONPREM_TYPE=onprem-qpu
    QRMI_ONPREM_DEVICE=fresnel-sim

Hardware-backed types need a *device registry* — a mapping from device
names to live :class:`~repro.qpu.QPUDevice` objects — because a device
is stateful (calibration, telemetry) and cannot be conjured from a
string.  On a real deployment that registry is the daemon's connection
to the control system; in tests it is a plain dict.
"""

from __future__ import annotations

from ..config import ConfigSource, ResourceConfig, parse_resource_list
from ..errors import ConfigError, ResourceNotFound
from ..qpu.device import QPUDevice
from .backends import (
    CloudEmulatorResource,
    CloudQPUResource,
    LocalEmulatorResource,
    OnPremQPUResource,
)
from .interface import QuantumResource
from .resources import ResourceType

__all__ = ["load_resource", "load_resources"]

# env var names use '_' where resource names may use '-'
def _env_name(name: str) -> str:
    return name.replace("-", "_")


def load_resource(
    config: ConfigSource,
    name: str,
    devices: dict[str, QPUDevice] | None = None,
) -> QuantumResource:
    """Instantiate the resource ``name`` from configuration."""
    rc = ResourceConfig.from_config(config, _env_name(name))
    rtype = ResourceType.parse(rc.resource_type)
    extras = dict(rc.extras)
    seed = int(extras.pop("seed", "0"))

    if rtype is ResourceType.LOCAL_EMULATOR or rtype is ResourceType.CLOUD_EMULATOR:
        emulator = extras.pop("emulator", "emu-mps")
        overrides = {}
        if "max_bond_dim" in extras:
            overrides["max_bond_dim"] = int(extras.pop("max_bond_dim"))
        if "max_qubits" in extras:
            overrides["max_qubits"] = int(extras.pop("max_qubits"))
        if rtype is ResourceType.LOCAL_EMULATOR:
            return LocalEmulatorResource(name, emulator=emulator, seed=seed, **overrides)
        latency = float(extras.pop("latency_s", "0.5"))
        return CloudEmulatorResource(
            name, emulator=emulator, seed=seed, latency_s=latency, **overrides
        )

    # hardware types need a registered device
    device_name = extras.pop("device", "")
    if not device_name:
        raise ConfigError(
            f"resource {name!r}: hardware type {rtype.value!r} requires "
            f"QRMI_{_env_name(name).upper()}_DEVICE"
        )
    devices = devices or {}
    if device_name not in devices:
        raise ResourceNotFound(
            f"resource {name!r} references device {device_name!r} "
            f"which is not registered (have: {sorted(devices)})"
        )
    device = devices[device_name]
    if rtype is ResourceType.ONPREM_QPU:
        return OnPremQPUResource(name, device)
    latency = float(extras.pop("latency_s", "1.0"))
    return CloudQPUResource(name, device, latency_s=latency)


def load_resources(
    config: ConfigSource, devices: dict[str, QPUDevice] | None = None
) -> dict[str, QuantumResource]:
    """Instantiate every resource listed in ``QRMI_RESOURCES``."""
    resources: dict[str, QuantumResource] = {}
    for name in parse_resource_list(config):
        resources[name] = load_resource(config, name, devices)
    return resources
