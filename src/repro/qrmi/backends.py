"""QRMI resource implementations.

Four backends mirroring the paper's §3.2 device list.  Emulator
backends execute synchronously in-process; QPU backends wrap a
:class:`~repro.qpu.QPUDevice` and expose both synchronous execution
(``task_start``) and simulation-integrated execution
(:meth:`execute_in_sim`) used by the middleware daemon.  Cloud variants
add a latency model so experiments can quantify the loose-coupling
overhead the paper argues is acceptable (§2.2.1).
"""

from __future__ import annotations

import numpy as np

from ..emulators.base import EmulationResult, EmulatorBackend
from ..emulators.resources import make_emulator
from ..errors import QRMIError
from ..qpu.device import QPUDevice
from ..sdk.ir import AnalogProgram
from ..sdk.translate import lower_to_hamiltonian
from ..simkernel import Simulator, Timeout
from .interface import QuantumResource
from .resources import ResourceType

__all__ = [
    "CloudEmulatorResource",
    "CloudQPUResource",
    "LocalEmulatorResource",
    "OnPremQPUResource",
]


class LocalEmulatorResource(QuantumResource):
    """In-process emulator; the developer-laptop resource.

    Defaults to the tensor-network backend, matching the paper: "The
    user-exposed backend module will default to using the tensor
    network backend, if installed."
    """

    resource_type = ResourceType.LOCAL_EMULATOR.value

    def __init__(
        self,
        name: str,
        emulator: str = "emu-mps",
        seed: int = 0,
        dt: float = 0.01,
        **emulator_overrides,
    ) -> None:
        super().__init__(name)
        self.engine: EmulatorBackend = make_emulator(emulator, **emulator_overrides)
        self.rng = np.random.default_rng(seed)
        self.dt = dt

    def _execute(self, program: AnalogProgram) -> EmulationResult:
        ham = lower_to_hamiltonian(program, dt=self.dt)
        result = self.engine.run(ham, program.shots, self.rng)
        result.metadata["resource"] = self.name
        result.metadata["fidelity_estimate"] = self.engine.fidelity_estimate()
        return result

    def target(self) -> dict:
        from ..qpu.specs import DeviceSpecs

        specs = DeviceSpecs(
            name=self.name,
            max_qubits=self.engine.max_qubits,
            is_hardware=False,
            shot_rate_hz=1e9,  # emulators have no shot clock
            max_shots_per_task=1_000_000,
        )
        return specs.to_dict()

    def metadata(self) -> dict:
        meta = super().metadata()
        meta["engine"] = self.engine.name
        meta["max_bond_dim"] = getattr(self.engine, "max_bond_dim", None)
        return meta


class CloudEmulatorResource(LocalEmulatorResource):
    """Emulator behind a network: adds submission/result latency."""

    resource_type = ResourceType.CLOUD_EMULATOR.value

    def __init__(
        self,
        name: str,
        emulator: str = "emu-mps",
        seed: int = 0,
        latency_s: float = 0.5,
        **overrides,
    ) -> None:
        super().__init__(name, emulator=emulator, seed=seed, **overrides)
        if latency_s < 0:
            raise QRMIError("latency must be non-negative")
        self.latency_s = latency_s

    def _execute(self, program: AnalogProgram) -> EmulationResult:
        result = super()._execute(program)
        result.metadata["network_latency_s"] = 2 * self.latency_s  # submit + fetch
        return result

    def execute_in_sim(self, sim: Simulator, program: AnalogProgram):
        """Simulated execution: pay round-trip latency in simulated time."""
        yield Timeout(self.latency_s)
        result = LocalEmulatorResource._execute(self, program)
        yield Timeout(self.latency_s)
        result.metadata["network_latency_s"] = 2 * self.latency_s
        return result


class OnPremQPUResource(QuantumResource):
    """Direct access to the on-prem QPU on the quantum access node."""

    resource_type = ResourceType.ONPREM_QPU.value

    def __init__(self, name: str, device: QPUDevice) -> None:
        super().__init__(name)
        self.device = device

    def is_accessible(self) -> bool:
        return self.device.status != "maintenance"

    def _execute(self, program: AnalogProgram) -> EmulationResult:
        result = self.device.run_now(
            program.register, list(program.segments), program.shots,
            task_id=program.name,
        )
        result.metadata["resource"] = self.name
        return result

    def execute_in_sim(self, sim: Simulator, program: AnalogProgram, batched: bool = True):
        """Simulation-integrated execution: occupies the QPU for the shot
        clock time.  Used by the daemon's second-level scheduler."""
        result = yield from self.device.execute_process(
            sim,
            program.register,
            list(program.segments),
            program.shots,
            batched=batched,
            task_id=program.name,
        )
        result.metadata["resource"] = self.name
        return result

    def estimate_seconds(self, program: AnalogProgram, batched: bool = True) -> float:
        return self.device.estimate_execution_time(
            list(program.segments), program.shots, batched=batched
        )

    def target(self) -> dict:
        return self.device.fetch_specs().to_dict()

    def metadata(self) -> dict:
        meta = super().metadata()
        meta["device_status"] = self.device.status
        meta["shot_rate_hz"] = self.device.clock.shot_rate_hz
        return meta


class CloudQPUResource(OnPremQPUResource):
    """QPU reached over the network (e.g. accessing a remote site's QPU)."""

    resource_type = ResourceType.CLOUD_QPU.value

    def __init__(self, name: str, device: QPUDevice, latency_s: float = 1.0) -> None:
        super().__init__(name, device)
        if latency_s < 0:
            raise QRMIError("latency must be non-negative")
        self.latency_s = latency_s

    def _execute(self, program: AnalogProgram) -> EmulationResult:
        result = super()._execute(program)
        result.metadata["network_latency_s"] = 2 * self.latency_s
        return result

    def execute_in_sim(self, sim: Simulator, program: AnalogProgram, batched: bool = True):
        yield Timeout(self.latency_s)
        result = yield from OnPremQPUResource.execute_in_sim(self, sim, program, batched)
        yield Timeout(self.latency_s)
        result.metadata["network_latency_s"] = 2 * self.latency_s
        return result
