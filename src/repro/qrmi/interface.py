"""The QRMI trait: acquire/release + asynchronous task lifecycle."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

from ..errors import AcquisitionError, TaskError
from ..sdk.ir import AnalogProgram

__all__ = ["QRMITask", "QuantumResource", "TaskStatus"]


class TaskStatus(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def is_terminal(self) -> bool:
        return self in (TaskStatus.COMPLETED, TaskStatus.FAILED, TaskStatus.CANCELLED)


@dataclass
class QRMITask:
    """Bookkeeping record for one submitted task."""

    task_id: str
    program: AnalogProgram
    status: TaskStatus = TaskStatus.QUEUED
    result: Any = None
    error: str = ""
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    metadata: dict[str, Any] = field(default_factory=dict)


class QuantumResource:
    """Base class for QRMI resources.

    Subclasses implement :meth:`_execute` (synchronous result
    computation) and may override timing/locality behaviour.  The base
    class provides token accounting and the task table.
    """

    resource_type = "abstract"

    def __init__(self, name: str) -> None:
        self.name = name
        self._tokens: set[str] = set()
        self._token_counter = itertools.count(1)
        self._task_counter = itertools.count(1)
        self.tasks: dict[str, QRMITask] = {}

    # -- accessibility / acquisition ---------------------------------------

    def is_accessible(self) -> bool:
        """Can tasks be started right now? (device online, creds valid...)"""
        return True

    def acquire(self) -> str:
        """Obtain an access token.  QRMI semantics: acquisition can fail
        when the resource is offline or the caller is not entitled."""
        if not self.is_accessible():
            raise AcquisitionError(f"resource {self.name!r} is not accessible")
        token = f"{self.name}-token-{next(self._token_counter)}"
        self._tokens.add(token)
        return token

    def release(self, token: str) -> None:
        if token not in self._tokens:
            raise AcquisitionError(f"unknown token {token!r} for resource {self.name!r}")
        self._tokens.discard(token)

    def active_tokens(self) -> int:
        return len(self._tokens)

    # -- tasks ------------------------------------------------------------

    def task_start(self, program: AnalogProgram, now: float = 0.0) -> str:
        """Submit a program; returns the task id.

        The base implementation executes eagerly (synchronous backends);
        device-attached backends override to queue into the simulation.
        """
        task = self._new_task(program, now)
        self._run_task(task, now)
        return task.task_id

    def _new_task(self, program: AnalogProgram, now: float) -> QRMITask:
        task_id = f"{self.name}-task-{next(self._task_counter)}"
        task = QRMITask(task_id=task_id, program=program, submitted_at=now)
        self.tasks[task_id] = task
        return task

    def _run_task(self, task: QRMITask, now: float) -> None:
        task.status = TaskStatus.RUNNING
        task.started_at = now
        try:
            task.result = self._execute(task.program)
            task.status = TaskStatus.COMPLETED
        except Exception as exc:  # surface backend failures as task state
            task.status = TaskStatus.FAILED
            task.error = f"{type(exc).__name__}: {exc}"
        task.finished_at = now

    def _execute(self, program: AnalogProgram) -> Any:
        raise NotImplementedError

    def task_status(self, task_id: str) -> TaskStatus:
        return self._get_task(task_id).status

    def task_stop(self, task_id: str) -> None:
        task = self._get_task(task_id)
        if not task.status.is_terminal:
            task.status = TaskStatus.CANCELLED

    def task_result(self, task_id: str) -> Any:
        task = self._get_task(task_id)
        if task.status is TaskStatus.FAILED:
            raise TaskError(f"task {task_id} failed: {task.error}")
        if task.status is not TaskStatus.COMPLETED:
            raise TaskError(f"task {task_id} not finished (status {task.status.value})")
        return task.result

    def _get_task(self, task_id: str) -> QRMITask:
        if task_id not in self.tasks:
            raise TaskError(f"unknown task {task_id!r} on resource {self.name!r}")
        return self.tasks[task_id]

    # -- introspection ---------------------------------------------------

    def target(self) -> dict:
        """Current device specification document (validation input)."""
        raise NotImplementedError

    def metadata(self) -> dict:
        return {
            "name": self.name,
            "type": self.resource_type,
            "accessible": self.is_accessible(),
        }
