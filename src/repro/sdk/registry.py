"""SDK registry: discoverable, pluggable front ends.

The daemon advertises which SDKs a site supports ("managing multiple
programming SDKs as first-class citizens", paper abstract) and
third-party SDKs can register their own translator without touching
the core — the paper's modularity-over-vertical-integration principle
(§4).
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from ..errors import SDKError
from .ir import AnalogProgram

__all__ = ["SDKRegistry", "default_registry"]


class SDKRegistry:
    """Maps SDK names to (type, translator) pairs."""

    def __init__(self) -> None:
        self._entries: dict[str, tuple[type, Callable[[Any, int], AnalogProgram]]] = {}

    def register(
        self,
        name: str,
        sdk_type: type,
        translator: Callable[[Any, int], AnalogProgram],
    ) -> None:
        if name in self._entries:
            raise SDKError(f"SDK {name!r} already registered")
        self._entries[name] = (sdk_type, translator)

    def names(self) -> list[str]:
        return sorted(self._entries)

    def supports(self, obj: Any) -> bool:
        return any(isinstance(obj, t) for t, _ in self._entries.values())

    def translate(self, obj: Any, shots: int = 100) -> AnalogProgram:
        """Translate via the first matching registered SDK."""
        if isinstance(obj, AnalogProgram):
            return obj
        for name, (sdk_type, translator) in self._entries.items():
            if isinstance(obj, sdk_type):
                program = translator(obj, shots)
                if program.sdk == "unknown":
                    from dataclasses import replace

                    program = replace(program, sdk=name)
                return program
        raise SDKError(
            f"no registered SDK handles {type(obj).__name__}; "
            f"registered: {self.names()}"
        )


def default_registry() -> SDKRegistry:
    """Registry pre-loaded with the two built-in SDKs."""
    from .pulser_like import Sequence
    from .qiskit_like import AnalogCircuit

    registry = SDKRegistry()
    registry.register(
        "pulser-like", Sequence, lambda seq, shots: seq.build(shots=shots)
    )
    registry.register(
        "qiskit-like", AnalogCircuit, lambda circ, shots: circ.transpile(shots=shots)
    )
    return registry
