"""Pulse-level SDK (mini-Pulser).

Mirrors the Pulser idiom the paper's users write (ref [22]): declare a
sequence over a register, declare a global Rydberg channel, add pulses,
measure.  ``Sequence.build()`` lowers to the shared IR.

Device specs may be attached at *build* time for early validation, but
the produced program stays device-free — re-validation happens again at
the point of execution, against fresh specs (paper §2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SDKError
from ..qpu.geometry import Register
from ..qpu.pulses import ConstantWaveform, DriveSegment, Waveform
from ..qpu.specs import DeviceSpecs
from .ir import AnalogProgram

__all__ = ["Pulse", "Sequence"]

SDK_NAME = "pulser-like"


@dataclass(frozen=True)
class Pulse:
    """Amplitude + detuning waveforms with a phase, Pulser-style."""

    amplitude: Waveform
    detuning: Waveform
    phase: float = 0.0

    @classmethod
    def constant_detuning(cls, amplitude: Waveform, detuning: float, phase: float = 0.0) -> "Pulse":
        return cls(
            amplitude=amplitude,
            detuning=ConstantWaveform(amplitude.duration, detuning),
            phase=phase,
        )

    @classmethod
    def constant_amplitude(cls, amplitude: float, detuning: Waveform, phase: float = 0.0) -> "Pulse":
        return cls(
            amplitude=ConstantWaveform(detuning.duration, amplitude),
            detuning=detuning,
            phase=phase,
        )

    def to_segment(self) -> DriveSegment:
        return DriveSegment(omega=self.amplitude, delta=self.detuning, phase=self.phase)


class Sequence:
    """Ordered pulse schedule on a declared channel."""

    SUPPORTED_CHANNELS = {"rydberg_global"}

    def __init__(self, register: Register, device: DeviceSpecs | None = None, name: str = "sequence") -> None:
        self.register = register
        self.device = device
        self.name = name
        self._channels: dict[str, str] = {}
        self._pulses: list[tuple[str, Pulse]] = []
        self._measured = False

    def declare_channel(self, name: str, kind: str = "rydberg_global") -> None:
        if kind not in self.SUPPORTED_CHANNELS:
            raise SDKError(
                f"channel kind {kind!r} not supported (have {sorted(self.SUPPORTED_CHANNELS)})"
            )
        if name in self._channels:
            raise SDKError(f"channel {name!r} already declared")
        self._channels[name] = kind

    def add(self, pulse: Pulse, channel: str) -> None:
        if self._measured:
            raise SDKError("cannot add pulses after measurement")
        if channel not in self._channels:
            raise SDKError(f"unknown channel {channel!r}; declare it first")
        self._pulses.append((channel, pulse))

    def measure(self) -> None:
        if not self._pulses:
            raise SDKError("cannot measure an empty sequence")
        self._measured = True

    @property
    def duration(self) -> float:
        return sum(p.amplitude.duration for _, p in self._pulses)

    def build(self, shots: int = 100) -> AnalogProgram:
        """Lower to the shared IR (optionally pre-validating on specs)."""
        if not self._measured:
            raise SDKError("sequence must be measured before building")
        segments = tuple(p.to_segment() for _, p in self._pulses)
        if self.device is not None:
            # Early validation is a convenience; point-of-execution
            # validation happens again in the runtime.
            self.device.check(self.register, list(segments), shots)
        return AnalogProgram(
            register=self.register,
            segments=segments,
            shots=shots,
            name=self.name,
            sdk=SDK_NAME,
        )
