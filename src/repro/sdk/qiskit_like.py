"""Circuit-builder SDK (mini qiskit-pasqal-provider).

A deliberately different programming idiom over the same IR: users
append named analog "instructions" to a circuit object, then
``transpile`` lowers the instruction list to pulse segments.  This is
the style the qiskit-pasqal-provider exposes — circuits whose
instructions are analog blocks, not digital gates, because the target
device is analog (paper §4: "The Pasqal QPU operates in the analog
regime").

Instructions:

* ``rx_global(theta)``      — resonant global pulse of area ``theta``,
* ``wait(duration, delta)`` — free evolution under constant detuning,
* ``adiabatic_sweep(area, delta_start, delta_stop, duration)`` — the
  Blackman-amplitude detuning ramp used for ordered-phase preparation,
* ``measure_all()``         — terminal measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import SDKError, TranslationError
from ..qpu.geometry import Register
from ..qpu.pulses import BlackmanWaveform, ConstantWaveform, DriveSegment, RampWaveform
from .ir import AnalogProgram

__all__ = ["AnalogCircuit"]

SDK_NAME = "qiskit-like"

#: default duration of an rx_global block, us
_DEFAULT_PULSE_DURATION = 0.5


@dataclass(frozen=True)
class _Instruction:
    name: str
    params: dict[str, Any] = field(default_factory=dict)


class AnalogCircuit:
    """Instruction-list circuit over an atom register."""

    def __init__(self, register: Register, name: str = "circuit") -> None:
        self.register = register
        self.name = name
        self._instructions: list[_Instruction] = []
        self._measured = False

    # -- builder API -------------------------------------------------------

    def _append(self, name: str, **params: Any) -> "AnalogCircuit":
        if self._measured:
            raise SDKError("cannot append instructions after measure_all()")
        self._instructions.append(_Instruction(name, params))
        return self

    def rx_global(self, theta: float, duration: float = _DEFAULT_PULSE_DURATION) -> "AnalogCircuit":
        """Global resonant rotation by pulse area ``theta`` (rad)."""
        if theta <= 0:
            raise SDKError(f"rotation area must be positive, got {theta}")
        if duration <= 0:
            raise SDKError(f"duration must be positive, got {duration}")
        return self._append("rx_global", theta=theta, duration=duration)

    def wait(self, duration: float, delta: float = 0.0) -> "AnalogCircuit":
        """Free evolution (Omega = 0) under constant detuning."""
        if duration <= 0:
            raise SDKError(f"duration must be positive, got {duration}")
        return self._append("wait", duration=duration, delta=delta)

    def adiabatic_sweep(
        self, area: float, delta_start: float, delta_stop: float, duration: float
    ) -> "AnalogCircuit":
        if duration <= 0:
            raise SDKError(f"duration must be positive, got {duration}")
        return self._append(
            "adiabatic_sweep",
            area=area,
            delta_start=delta_start,
            delta_stop=delta_stop,
            duration=duration,
        )

    def measure_all(self) -> "AnalogCircuit":
        if not self._instructions:
            raise SDKError("cannot measure an empty circuit")
        self._measured = True
        return self

    @property
    def depth(self) -> int:
        return len(self._instructions)

    # -- lowering ---------------------------------------------------------

    def _lower_instruction(self, instr: _Instruction) -> DriveSegment:
        p = instr.params
        if instr.name == "rx_global":
            omega = p["theta"] / p["duration"]
            return DriveSegment(
                omega=ConstantWaveform(p["duration"], omega),
                delta=ConstantWaveform(p["duration"], 0.0),
            )
        if instr.name == "wait":
            return DriveSegment(
                omega=ConstantWaveform(p["duration"], 0.0),
                delta=ConstantWaveform(p["duration"], p["delta"]),
            )
        if instr.name == "adiabatic_sweep":
            return DriveSegment(
                omega=BlackmanWaveform(p["duration"], p["area"]),
                delta=RampWaveform(p["duration"], p["delta_start"], p["delta_stop"]),
            )
        raise TranslationError(f"unknown instruction {instr.name!r}")

    def transpile(self, shots: int = 100) -> AnalogProgram:
        """Lower the instruction list to the shared IR."""
        if not self._measured:
            raise SDKError("circuit must end with measure_all()")
        segments = tuple(self._lower_instruction(i) for i in self._instructions)
        return AnalogProgram(
            register=self.register,
            segments=segments,
            shots=shots,
            name=self.name,
            sdk=SDK_NAME,
            metadata={"depth": self.depth},
        )
