"""Translation utilities: anything -> IR -> executable Hamiltonian."""

from __future__ import annotations

from typing import Any

from ..errors import TranslationError
from ..qpu.hamiltonian import DEFAULT_C6, RydbergHamiltonian
from .ir import AnalogProgram
from .pulser_like import Sequence
from .qiskit_like import AnalogCircuit

__all__ = ["lower_to_hamiltonian", "to_ir"]


def to_ir(obj: Any, shots: int = 100) -> AnalogProgram:
    """Normalize any supported SDK object (or IR dict) to an AnalogProgram.

    This is the funnel that makes SDKs interchangeable: the runtime and
    daemon only ever see IR.
    """
    if isinstance(obj, AnalogProgram):
        return obj
    if isinstance(obj, Sequence):
        return obj.build(shots=shots)
    if isinstance(obj, AnalogCircuit):
        return obj.transpile(shots=shots)
    if isinstance(obj, dict):
        return AnalogProgram.from_dict(obj)
    raise TranslationError(
        f"cannot translate {type(obj).__name__} to AnalogProgram; "
        "supported: AnalogProgram, Sequence, AnalogCircuit, dict"
    )


def lower_to_hamiltonian(
    program: AnalogProgram, dt: float = 0.01, c6: float = DEFAULT_C6
) -> RydbergHamiltonian:
    """Build the executable Hamiltonian from an IR program."""
    return RydbergHamiltonian(program.register, list(program.segments), dt=dt, c6=c6)
