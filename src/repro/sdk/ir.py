"""The shared intermediate representation: AnalogProgram.

One device-independent description of an analog quantum task:
register + global drive schedule + shot request.  Every SDK lowers to
this; every backend (emulator ladder, QPU, cloud) executes it; the
daemon validates and routes it.  It is JSON-serializable so it can
travel through the REST middleware and be stored in accounting.

Crucially for the paper's portability claim (§3.2), the IR contains
**no backend identity** — the target device is external configuration
(the ``--qpu=<resource>`` switch), so moving dev -> HPC -> QPU changes
zero bytes of the program.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from ..errors import IRError
from ..qpu.geometry import Register
from ..qpu.pulses import DriveSegment

__all__ = ["AnalogProgram"]


@dataclass(frozen=True)
class AnalogProgram:
    """Device-independent analog task description."""

    register: Register
    segments: tuple[DriveSegment, ...]
    shots: int = 100
    name: str = "program"
    sdk: str = "unknown"
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.segments:
            raise IRError("program must contain at least one drive segment")
        if self.shots < 1:
            raise IRError(f"shots must be >= 1, got {self.shots}")

    @property
    def num_qubits(self) -> int:
        return self.register.num_atoms

    @property
    def duration_us(self) -> float:
        return sum(seg.duration for seg in self.segments)

    def with_shots(self, shots: int) -> "AnalogProgram":
        """Same program, different shot budget (the only knob schedulers
        may touch — e.g. the daemon capping dev-queue shots)."""
        from dataclasses import replace

        return replace(self, shots=shots)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "register": self.register.to_dict(),
            "segments": [seg.to_dict() for seg in self.segments],
            "shots": self.shots,
            "name": self.name,
            "sdk": self.sdk,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AnalogProgram":
        try:
            return cls(
                register=Register.from_dict(data["register"]),
                segments=tuple(DriveSegment.from_dict(s) for s in data["segments"]),
                shots=int(data.get("shots", 100)),
                name=str(data.get("name", "program")),
                sdk=str(data.get("sdk", "unknown")),
                metadata=dict(data.get("metadata", {})),
            )
        except (KeyError, TypeError) as exc:
            raise IRError(f"malformed program dict: {exc}") from exc

    def content_hash(self) -> str:
        """Stable digest of the physics content (register + schedule),
        excluding shots/metadata.  Used by the portability checks to
        prove the *same* program ran in every environment (Figure 1)."""
        payload = {
            "register": self.register.to_dict(),
            "segments": [seg.to_dict() for seg in self.segments],
        }
        blob = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AnalogProgram):
            return NotImplemented
        return (
            self.content_hash() == other.content_hash()
            and self.shots == other.shots
            and self.name == other.name
        )
