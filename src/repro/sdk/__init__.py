"""Multi-SDK front ends over a shared analog IR.

Paper §2.3.1: "A single quantum processing unit (QPU) may be
programmable through multiple SDKs ... QPUs by Pasqal can currently be
accessed via Pulser, Qiskit, CUDA-Q, and Qaptiva/QLM", and the paper's
architecture makes these SDKs "first-class citizens" by unifying them
behind the QRMI-based runtime.

We reproduce that structure with two deliberately different front ends:

* :mod:`pulser_like` — pulse-level analog sequences (the native idiom),
* :mod:`qiskit_like` — a circuit-builder idiom with named analog
  "gates" that lower to pulse schedules,

both producing the same :class:`~repro.sdk.ir.AnalogProgram` IR, which
is what QRMI tasks carry and emulators/QPUs execute.  The
:mod:`registry` makes SDKs discoverable/pluggable so the daemon can
enumerate supported SDKs per device.
"""

from .ir import AnalogProgram
from .pulser_like import Pulse, Sequence
from .qiskit_like import AnalogCircuit
from .registry import SDKRegistry, default_registry
from .translate import lower_to_hamiltonian, to_ir

__all__ = [
    "AnalogCircuit",
    "AnalogProgram",
    "Pulse",
    "SDKRegistry",
    "Sequence",
    "default_registry",
    "lower_to_hamiltonian",
    "to_ir",
]
