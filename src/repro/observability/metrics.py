"""Prometheus-style metric registry.

Three instrument types with label support:

* :class:`Counter` — monotone; ``inc(value)``,
* :class:`Gauge` — arbitrary; ``set`` / ``inc`` / ``dec``,
* :class:`Histogram` — fixed buckets; ``observe`` feeds bucket counts,
  a running sum and count (enough for mean and quantile estimates).

A :class:`MetricRegistry` owns instruments; the exporter renders it in
the Prometheus text exposition format; the scraper snapshots it into
the TSDB.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from ..errors import MetricError

__all__ = ["Counter", "Gauge", "Histogram", "MetricRegistry"]


def _label_key(labels: Mapping[str, str] | None) -> tuple:
    return tuple(sorted((labels or {}).items()))


class _Instrument:
    kind = "untyped"

    def __init__(self, name: str, help_text: str, label_names: Iterable[str] = ()) -> None:
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise MetricError(f"invalid metric name {name!r}")
        self.name = name
        self.help_text = help_text
        self.label_names = frozenset(label_names)

    def _check_labels(self, labels: Mapping[str, str] | None) -> None:
        given = frozenset((labels or {}).keys())
        if given != self.label_names:
            raise MetricError(
                f"metric {self.name!r} expects labels {sorted(self.label_names)}, "
                f"got {sorted(given)}"
            )

    def samples(self) -> list[tuple[str, dict, float]]:
        """(suffix, labels, value) triples for exposition."""
        raise NotImplementedError


class Counter(_Instrument):
    kind = "counter"

    def __init__(self, name: str, help_text: str = "", label_names: Iterable[str] = ()) -> None:
        super().__init__(name, help_text, label_names)
        self._values: dict[tuple, float] = {}

    def inc(self, value: float = 1.0, labels: Mapping[str, str] | None = None) -> None:
        if value < 0:
            raise MetricError(f"counter {self.name!r} cannot decrease")
        self._check_labels(labels)
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + value

    def value(self, labels: Mapping[str, str] | None = None) -> float:
        self._check_labels(labels)
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> list[tuple[str, dict, float]]:
        if not self._values:
            return [("", {}, 0.0)] if not self.label_names else []
        return [("", dict(k), v) for k, v in sorted(self._values.items())]


class Gauge(_Instrument):
    kind = "gauge"

    def __init__(self, name: str, help_text: str = "", label_names: Iterable[str] = ()) -> None:
        super().__init__(name, help_text, label_names)
        self._values: dict[tuple, float] = {}

    def set(self, value: float, labels: Mapping[str, str] | None = None) -> None:
        self._check_labels(labels)
        self._values[_label_key(labels)] = float(value)

    def inc(self, value: float = 1.0, labels: Mapping[str, str] | None = None) -> None:
        self._check_labels(labels)
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + value

    def dec(self, value: float = 1.0, labels: Mapping[str, str] | None = None) -> None:
        self.inc(-value, labels)

    def value(self, labels: Mapping[str, str] | None = None) -> float:
        self._check_labels(labels)
        key = _label_key(labels)
        if key not in self._values:
            raise MetricError(f"gauge {self.name!r} has no value for {labels}")
        return self._values[key]

    def samples(self) -> list[tuple[str, dict, float]]:
        return [("", dict(k), v) for k, v in sorted(self._values.items())]


DEFAULT_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0)


class Histogram(_Instrument):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        label_names: Iterable[str] = (),
    ) -> None:
        super().__init__(name, help_text, label_names)
        if not buckets or list(buckets) != sorted(buckets):
            raise MetricError("histogram buckets must be sorted and non-empty")
        if not all(b == b and abs(b) != float("inf") for b in buckets):
            # the +Inf bucket is implicit in the exposition; an explicit
            # infinite (or NaN) bound would render as a duplicate
            # `le="inf"` series and corrupt cumulative counts
            raise MetricError("histogram buckets must be finite")
        self.buckets = tuple(float(b) for b in buckets)
        self._counts: dict[tuple, np.ndarray] = {}
        self._sums: dict[tuple, float] = {}
        self._totals: dict[tuple, int] = {}

    def observe(self, value: float, labels: Mapping[str, str] | None = None) -> None:
        self._check_labels(labels)
        key = _label_key(labels)
        if key not in self._counts:
            self._counts[key] = np.zeros(len(self.buckets) + 1, dtype=np.int64)
            self._sums[key] = 0.0
            self._totals[key] = 0
        idx = int(np.searchsorted(self.buckets, value, side="left"))
        self._counts[key][idx] += 1
        self._sums[key] += value
        self._totals[key] += 1

    def count(self, labels: Mapping[str, str] | None = None) -> int:
        return self._totals.get(_label_key(labels), 0)

    def sum(self, labels: Mapping[str, str] | None = None) -> float:
        return self._sums.get(_label_key(labels), 0.0)

    def mean(self, labels: Mapping[str, str] | None = None) -> float:
        total = self.count(labels)
        return self.sum(labels) / total if total else float("nan")

    def quantile(self, q: float, labels: Mapping[str, str] | None = None) -> float:
        """Bucket-interpolated quantile estimate (Prometheus-style)."""
        if not (0.0 <= q <= 1.0):
            raise MetricError(f"quantile must be in [0,1], got {q}")
        self._check_labels(labels)
        key = _label_key(labels)
        if key not in self._counts or self._totals[key] == 0:
            raise MetricError(
                f"quantile of empty histogram {self.name!r} "
                f"(labels={dict(labels or {})})"
            )
        cumulative = np.cumsum(self._counts[key])
        target = q * self._totals[key]
        idx = int(np.searchsorted(cumulative, target, side="left"))
        if idx >= len(self.buckets):
            return self.buckets[-1]
        return self.buckets[idx]

    def samples(self) -> list[tuple[str, dict, float]]:
        out: list[tuple[str, dict, float]] = []
        for key in sorted(self._counts):
            labels = dict(key)
            cumulative = 0
            for bucket, count in zip(self.buckets, self._counts[key][:-1], strict=True):
                cumulative += int(count)
                out.append(("_bucket", {**labels, "le": repr(bucket)}, float(cumulative)))
            out.append(("_bucket", {**labels, "le": "+Inf"}, float(self._totals[key])))
            out.append(("_sum", labels, self._sums[key]))
            out.append(("_count", labels, float(self._totals[key])))
        return out


class MetricRegistry:
    """Owns instruments; one per process/daemon."""

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}

    def counter(self, name: str, help_text: str = "", label_names: Iterable[str] = ()) -> Counter:
        return self._register(Counter(name, help_text, label_names))

    def gauge(self, name: str, help_text: str = "", label_names: Iterable[str] = ()) -> Gauge:
        return self._register(Gauge(name, help_text, label_names))

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        label_names: Iterable[str] = (),
    ) -> Histogram:
        return self._register(Histogram(name, help_text, buckets, label_names))

    def _register(self, instrument: _Instrument) -> _Instrument:
        if instrument.name in self._instruments:
            raise MetricError(f"metric {instrument.name!r} already registered")
        self._instruments[instrument.name] = instrument
        return instrument

    def get(self, name: str) -> _Instrument:
        if name not in self._instruments:
            raise MetricError(f"unknown metric {name!r}")
        return self._instruments[name]

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def instruments(self) -> list[_Instrument]:
        return [self._instruments[n] for n in self.names()]

    def snapshot(self) -> dict[str, float]:
        """Flat name->value map (label-less view for quick scraping);
        labeled samples get their labels folded into the name."""
        flat: dict[str, float] = {}
        for instrument in self.instruments():
            for suffix, labels, value in instrument.samples():
                if labels:
                    label_str = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
                    flat[f"{instrument.name}{suffix}{{{label_str}}}"] = value
                else:
                    flat[f"{instrument.name}{suffix}"] = value
        return flat
