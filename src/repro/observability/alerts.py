"""Alerting: threshold and absence rules with firing state.

The ops-team surface from paper §2.5: "They must be able to track QPU
health in real time, detect degradation trends and schedule
maintenance."  Rules are evaluated against the TSDB on demand (or from
the scraper cadence); transitions PENDING -> FIRING after ``for_seconds``
of continuous violation, mirroring Prometheus alert semantics.
"""

from __future__ import annotations

import enum
from collections.abc import Mapping
from dataclasses import dataclass, field

from ..errors import AlertError, TSDBError
from .tsdb import TimeSeriesDB

__all__ = ["Alert", "AlertManager", "AlertRule", "AlertState"]


class AlertState(enum.Enum):
    INACTIVE = "inactive"
    PENDING = "pending"
    FIRING = "firing"


@dataclass(frozen=True)
class AlertRule:
    """Threshold rule: fire when ``measurement OP threshold`` holds for
    ``for_seconds`` continuously.  ``op`` is one of < <= > >= ==.

    ``absent_seconds`` (optional) turns it into an absence rule: fire if
    no point arrived within that horizon (dead exporter / offline QPU).
    """

    name: str
    measurement: str
    op: str = "<"
    threshold: float = 0.0
    for_seconds: float = 0.0
    labels: Mapping[str, str] | None = None
    severity: str = "warning"
    absent_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.op not in ("<", "<=", ">", ">=", "=="):
            raise AlertError(f"unsupported operator {self.op!r}")
        if self.for_seconds < 0:
            raise AlertError("for_seconds must be >= 0")

    def _violates(self, value: float) -> bool:
        if self.op == "<":
            return value < self.threshold
        if self.op == "<=":
            return value <= self.threshold
        if self.op == ">":
            return value > self.threshold
        if self.op == ">=":
            return value >= self.threshold
        return value == self.threshold


@dataclass
class Alert:
    """Mutable evaluation state of one rule."""

    rule: AlertRule
    state: AlertState = AlertState.INACTIVE
    violating_since: float | None = None
    fired_at: float | None = None
    resolved_at: float | None = None
    history: list[tuple[float, str]] = field(default_factory=list)

    def _record(self, now: float, state: AlertState) -> None:
        if state is not self.state:
            self.state = state
            self.history.append((now, state.value))


class AlertManager:
    """Evaluates rules against the TSDB; tracks firing states."""

    def __init__(self, tsdb: TimeSeriesDB) -> None:
        self.tsdb = tsdb
        self._alerts: dict[str, Alert] = {}

    def add_rule(self, rule: AlertRule) -> None:
        if rule.name in self._alerts:
            raise AlertError(f"alert rule {rule.name!r} already exists")
        self._alerts[rule.name] = Alert(rule=rule)

    def evaluate(self, now: float) -> list[Alert]:
        """Evaluate all rules at ``now``; returns alerts currently firing."""
        for alert in self._alerts.values():
            self._evaluate_one(alert, now)
        return self.firing()

    def _evaluate_one(self, alert: Alert, now: float) -> None:
        rule = alert.rule
        try:
            t_last, value = self.tsdb.latest(rule.measurement, rule.labels)
        except TSDBError:
            t_last, value = None, None

        if rule.absent_seconds is not None:
            absent = t_last is None or (now - t_last) > rule.absent_seconds
            self._apply(alert, absent, now)
            return
        if value is None:
            self._apply(alert, False, now)
            return
        self._apply(alert, rule._violates(value), now)

    def _apply(self, alert: Alert, violating: bool, now: float) -> None:
        rule = alert.rule
        if not violating:
            if alert.state is not AlertState.INACTIVE:
                alert.resolved_at = now
            alert.violating_since = None
            alert._record(now, AlertState.INACTIVE)
            return
        if alert.violating_since is None:
            alert.violating_since = now
        elapsed = now - alert.violating_since
        if elapsed >= rule.for_seconds:
            if alert.state is not AlertState.FIRING:
                alert.fired_at = now
            alert._record(now, AlertState.FIRING)
        else:
            alert._record(now, AlertState.PENDING)

    def firing(self) -> list[Alert]:
        return [a for a in self._alerts.values() if a.state is AlertState.FIRING]

    def get(self, name: str) -> Alert:
        if name not in self._alerts:
            raise AlertError(f"unknown alert {name!r}")
        return self._alerts[name]

    def names(self) -> list[str]:
        return sorted(self._alerts)

    @classmethod
    def with_default_qpu_rules(cls, tsdb: TimeSeriesDB, device_label: str) -> "AlertManager":
        """The default QPU rule pack."""
        labels = {"device": device_label}
        manager = cls(tsdb)
        manager.add_rule(
            AlertRule(
                name=f"{device_label}-degraded",
                measurement="qpu_fidelity_proxy",
                op="<",
                threshold=0.85,
                for_seconds=60.0,
                labels=labels,
                severity="warning",
            )
        )
        manager.add_rule(
            AlertRule(
                name=f"{device_label}-offline",
                measurement="qpu_online",
                op="<",
                threshold=0.5,
                for_seconds=0.0,
                labels=labels,
                severity="critical",
            )
        )
        manager.add_rule(
            AlertRule(
                name=f"{device_label}-telemetry-absent",
                measurement="qpu_fidelity_proxy",
                labels=labels,
                severity="critical",
                absent_seconds=120.0,
            )
        )
        return manager
