"""Time-series database (InfluxDB-style).

Series are identified by ``(measurement, labels)``.  Points are
``(time, value)`` with per-series monotone time enforced (out-of-order
writes raise — catching simulation clock bugs early).  Storage is
chunked NumPy arrays grown geometrically: appends write in place
(amortized O(1), never a list-to-array conversion), queries return
zero-copy views of the live window, and retention advances a start
offset — points are dropped lazily, with compaction only once the dead
prefix dominates the buffer (per the hpc-parallel guide).
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from ..errors import TSDBError

__all__ = ["TimeSeriesDB"]

#: initial per-series buffer capacity (doubles as the series grows)
_MIN_CAPACITY = 64
#: retention compacts once this many retired points lead the buffer
#: *and* they outnumber the live points
_COMPACT_THRESHOLD = 1024


def _series_key(measurement: str, labels: Mapping[str, str] | None) -> tuple:
    return (measurement, tuple(sorted((labels or {}).items())))


class _Series:
    """One series' chunked storage: ``[_start, _end)`` is the live
    window inside a geometrically-grown pair of buffers."""

    __slots__ = ("_t", "_v", "_start", "_end", "_last")

    def __init__(self) -> None:
        self._t = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._v = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._start = 0
        self._end = 0
        self._last: float | None = None  # newest time, O(1) monotone check

    def __len__(self) -> int:
        return self._end - self._start

    @property
    def last_time(self) -> float | None:
        return self._last if len(self) else None

    @property
    def last_value(self) -> float:
        return float(self._v[self._end - 1])

    def append(self, t: float, v: float) -> None:
        t = float(t)
        if len(self) and t < self._last:
            raise TSDBError(
                f"out-of-order write: t={t} after t={self._last}"
            )
        if self._end == self._t.size:
            self._compact(grow=True)
        self._t[self._end] = t
        self._v[self._end] = v
        self._end += 1
        self._last = t

    def _compact(self, grow: bool = False) -> None:
        """Shift the live window to offset 0; optionally double the
        buffer when it is genuinely full (vs. merely retention-led)."""
        n = len(self)
        capacity = self._t.size
        if grow and self._start < capacity // 2:
            capacity = max(_MIN_CAPACITY, 2 * capacity)
        new_t = np.empty(capacity, dtype=np.float64)
        new_v = np.empty(capacity, dtype=np.float64)
        new_t[:n] = self._t[self._start : self._end]
        new_v[:n] = self._v[self._start : self._end]
        self._t, self._v = new_t, new_v
        self._start, self._end = 0, n

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Zero-copy views of the live window."""
        return (
            self._t[self._start : self._end],
            self._v[self._start : self._end],
        )

    def drop_before(self, cutoff: float) -> int:
        """Retire points older than ``cutoff`` by advancing the start
        offset (O(log n)); compact only when the dead prefix dominates."""
        t, _ = self.arrays()
        retired = int(np.searchsorted(t, cutoff, side="left"))
        if retired:
            self._start += retired
            if (
                self._start >= _COMPACT_THRESHOLD
                and self._start > len(self)
            ):
                self._compact()
        return retired


class TimeSeriesDB:
    """In-memory TSDB with range queries, aggregation and retention."""

    def __init__(self, retention_seconds: float | None = None) -> None:
        if retention_seconds is not None and retention_seconds <= 0:
            raise TSDBError("retention must be positive (or None)")
        self.retention_seconds = retention_seconds
        self._series: dict[tuple, _Series] = {}

    # -- writes ---------------------------------------------------------------

    def write(
        self,
        measurement: str,
        time: float,
        value: float,
        labels: Mapping[str, str] | None = None,
    ) -> None:
        key = _series_key(measurement, labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _Series()
        series.append(time, value)

    def write_many(
        self,
        values: Mapping[str, float],
        time: float,
        labels: Mapping[str, str] | None = None,
    ) -> None:
        for measurement, value in values.items():
            self.write(measurement, time, value, labels)

    # -- queries ----------------------------------------------------------------

    def measurements(self) -> list[str]:
        return sorted({key[0] for key in self._series})

    def series_labels(self, measurement: str) -> list[dict[str, str]]:
        return [
            dict(key[1]) for key in self._series if key[0] == measurement
        ]

    def query(
        self,
        measurement: str,
        labels: Mapping[str, str] | None = None,
        since: float | None = None,
        until: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(times, values) in the window; unknown series raises."""
        key = _series_key(measurement, labels)
        if key not in self._series:
            raise TSDBError(f"unknown series {measurement!r} labels={dict(key[1])}")
        t, v = self._series[key].arrays()
        lo = 0 if since is None else int(np.searchsorted(t, since, side="left"))
        hi = len(t) if until is None else int(np.searchsorted(t, until, side="right"))
        return t[lo:hi], v[lo:hi]

    def has_series(self, measurement: str, labels: Mapping[str, str] | None = None) -> bool:
        return _series_key(measurement, labels) in self._series

    def latest(
        self, measurement: str, labels: Mapping[str, str] | None = None
    ) -> tuple[float, float]:
        key = _series_key(measurement, labels)
        series = self._series.get(key)
        if series is None or not len(series):
            raise TSDBError(f"no points in series {measurement!r}")
        return series.last_time, series.last_value

    # -- aggregations -------------------------------------------------------------

    def aggregate(
        self,
        measurement: str,
        func: str,
        labels: Mapping[str, str] | None = None,
        since: float | None = None,
        until: float | None = None,
    ) -> float:
        t, v = self.query(measurement, labels, since, until)
        if v.size == 0:
            return float("nan")
        if func == "mean":
            return float(v.mean())
        if func == "max":
            return float(v.max())
        if func == "min":
            return float(v.min())
        if func == "sum":
            return float(v.sum())
        if func == "last":
            return float(v[-1])
        if func == "rate":
            # per-second increase of a (possibly resetting) counter
            if v.size < 2 or t[-1] == t[0]:
                return 0.0
            increases = np.diff(v)
            increases[increases < 0] = 0.0  # counter reset
            return float(increases.sum() / (t[-1] - t[0]))
        raise TSDBError(f"unknown aggregation {func!r}")

    def downsample(
        self,
        measurement: str,
        bucket_seconds: float,
        func: str = "mean",
        labels: Mapping[str, str] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Bucketed aggregation: returns (bucket_start_times, values)."""
        if bucket_seconds <= 0:
            raise TSDBError("bucket size must be positive")
        t, v = self.query(measurement, labels)
        if t.size == 0:
            return np.empty(0), np.empty(0)
        buckets = np.floor(t / bucket_seconds).astype(np.int64)
        unique, inverse = np.unique(buckets, return_inverse=True)
        out = np.zeros(unique.size)
        if func == "mean":
            sums = np.bincount(inverse, weights=v)
            counts = np.bincount(inverse)
            out = sums / counts
        elif func == "max":
            out = np.full(unique.size, -np.inf)
            np.maximum.at(out, inverse, v)
        elif func == "min":
            out = np.full(unique.size, np.inf)
            np.minimum.at(out, inverse, v)
        elif func == "sum":
            out = np.bincount(inverse, weights=v)
        else:
            raise TSDBError(f"unknown downsample func {func!r}")
        return unique * bucket_seconds, out

    # -- retention ---------------------------------------------------------------

    def enforce_retention(self, now: float) -> int:
        """Drop points older than the retention window; returns dropped
        count.  O(log n) per series (a start-offset advance), not a
        rebuild of the backing storage."""
        if self.retention_seconds is None:
            return 0
        cutoff = now - self.retention_seconds
        return sum(
            series.drop_before(cutoff) for series in self._series.values()
        )

    def point_count(self) -> int:
        return sum(len(s) for s in self._series.values())
