"""Time-series database (InfluxDB-style).

Series are identified by ``(measurement, labels)``.  Points are
``(time, value)`` with per-series monotone time enforced (out-of-order
writes raise — catching simulation clock bugs early).  Storage is
append-only Python lists converted lazily to NumPy arrays for queries;
queries never copy more than the selected window (views where
possible, per the hpc-parallel guide).
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from ..errors import TSDBError

__all__ = ["TimeSeriesDB"]


def _series_key(measurement: str, labels: Mapping[str, str] | None) -> tuple:
    return (measurement, tuple(sorted((labels or {}).items())))


class _Series:
    __slots__ = ("times", "values", "_cache_len", "_t_arr", "_v_arr")

    def __init__(self) -> None:
        self.times: list[float] = []
        self.values: list[float] = []
        self._cache_len = 0
        self._t_arr = np.empty(0)
        self._v_arr = np.empty(0)

    def append(self, t: float, v: float) -> None:
        if self.times and t < self.times[-1]:
            raise TSDBError(
                f"out-of-order write: t={t} after t={self.times[-1]}"
            )
        self.times.append(float(t))
        self.values.append(float(v))

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        if self._cache_len != len(self.times):
            self._t_arr = np.asarray(self.times)
            self._v_arr = np.asarray(self.values)
            self._cache_len = len(self.times)
        return self._t_arr, self._v_arr


class TimeSeriesDB:
    """In-memory TSDB with range queries, aggregation and retention."""

    def __init__(self, retention_seconds: float | None = None) -> None:
        if retention_seconds is not None and retention_seconds <= 0:
            raise TSDBError("retention must be positive (or None)")
        self.retention_seconds = retention_seconds
        self._series: dict[tuple, _Series] = {}

    # -- writes ---------------------------------------------------------------

    def write(
        self,
        measurement: str,
        time: float,
        value: float,
        labels: Mapping[str, str] | None = None,
    ) -> None:
        key = _series_key(measurement, labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _Series()
        series.append(time, value)

    def write_many(
        self,
        values: Mapping[str, float],
        time: float,
        labels: Mapping[str, str] | None = None,
    ) -> None:
        for measurement, value in values.items():
            self.write(measurement, time, value, labels)

    # -- queries ----------------------------------------------------------------

    def measurements(self) -> list[str]:
        return sorted({key[0] for key in self._series})

    def series_labels(self, measurement: str) -> list[dict[str, str]]:
        return [
            dict(key[1]) for key in self._series if key[0] == measurement
        ]

    def query(
        self,
        measurement: str,
        labels: Mapping[str, str] | None = None,
        since: float | None = None,
        until: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(times, values) in the window; unknown series raises."""
        key = _series_key(measurement, labels)
        if key not in self._series:
            raise TSDBError(f"unknown series {measurement!r} labels={dict(key[1])}")
        t, v = self._series[key].arrays()
        lo = 0 if since is None else int(np.searchsorted(t, since, side="left"))
        hi = len(t) if until is None else int(np.searchsorted(t, until, side="right"))
        return t[lo:hi], v[lo:hi]

    def has_series(self, measurement: str, labels: Mapping[str, str] | None = None) -> bool:
        return _series_key(measurement, labels) in self._series

    def latest(
        self, measurement: str, labels: Mapping[str, str] | None = None
    ) -> tuple[float, float]:
        key = _series_key(measurement, labels)
        if key not in self._series or not self._series[key].times:
            raise TSDBError(f"no points in series {measurement!r}")
        series = self._series[key]
        return series.times[-1], series.values[-1]

    # -- aggregations -------------------------------------------------------------

    def aggregate(
        self,
        measurement: str,
        func: str,
        labels: Mapping[str, str] | None = None,
        since: float | None = None,
        until: float | None = None,
    ) -> float:
        t, v = self.query(measurement, labels, since, until)
        if v.size == 0:
            return float("nan")
        if func == "mean":
            return float(v.mean())
        if func == "max":
            return float(v.max())
        if func == "min":
            return float(v.min())
        if func == "sum":
            return float(v.sum())
        if func == "last":
            return float(v[-1])
        if func == "rate":
            # per-second increase of a (possibly resetting) counter
            if v.size < 2 or t[-1] == t[0]:
                return 0.0
            increases = np.diff(v)
            increases[increases < 0] = 0.0  # counter reset
            return float(increases.sum() / (t[-1] - t[0]))
        raise TSDBError(f"unknown aggregation {func!r}")

    def downsample(
        self,
        measurement: str,
        bucket_seconds: float,
        func: str = "mean",
        labels: Mapping[str, str] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Bucketed aggregation: returns (bucket_start_times, values)."""
        if bucket_seconds <= 0:
            raise TSDBError("bucket size must be positive")
        t, v = self.query(measurement, labels)
        if t.size == 0:
            return np.empty(0), np.empty(0)
        buckets = np.floor(t / bucket_seconds).astype(np.int64)
        unique, inverse = np.unique(buckets, return_inverse=True)
        out = np.zeros(unique.size)
        if func == "mean":
            sums = np.bincount(inverse, weights=v)
            counts = np.bincount(inverse)
            out = sums / counts
        elif func == "max":
            out = np.full(unique.size, -np.inf)
            np.maximum.at(out, inverse, v)
        elif func == "min":
            out = np.full(unique.size, np.inf)
            np.minimum.at(out, inverse, v)
        elif func == "sum":
            out = np.bincount(inverse, weights=v)
        else:
            raise TSDBError(f"unknown downsample func {func!r}")
        return unique * bucket_seconds, out

    # -- retention ---------------------------------------------------------------

    def enforce_retention(self, now: float) -> int:
        """Drop points older than the retention window; returns dropped count."""
        if self.retention_seconds is None:
            return 0
        cutoff = now - self.retention_seconds
        dropped = 0
        for series in self._series.values():
            t, _ = series.arrays()
            keep_from = int(np.searchsorted(t, cutoff, side="left"))
            if keep_from > 0:
                dropped += keep_from
                series.times = series.times[keep_from:]
                series.values = series.values[keep_from:]
                series._cache_len = 0
        return dropped

    def point_count(self) -> int:
        return sum(len(s.times) for s in self._series.values())
