"""Per-job metadata store.

Paper §2.5: "For end-users, transparent reporting—such as per-job
metadata on qubit performance can assist in interpreting noisy results
and guide adaptive workflows."

Every executed task gets a metadata record: the device telemetry
snapshot at execution time, the calibration parameters baked into the
result, scheduling info (queue wait, priority class), and backend
diagnostics (bond dimension, truncation).  Users query by task id;
admins by time range.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import ObservabilityError

__all__ = ["JobMetadataStore", "JobMetadataRecord"]


@dataclass(frozen=True)
class JobMetadataRecord:
    task_id: str
    time: float
    user: str = ""
    resource: str = ""
    priority_class: str = ""
    queue_wait_s: float = 0.0
    execution_s: float = 0.0
    shots: int = 0
    backend: str = ""
    calibration: dict[str, float] = field(default_factory=dict)
    diagnostics: dict[str, Any] = field(default_factory=dict)


class JobMetadataStore:
    """Append-only per-task metadata with id and range queries."""

    def __init__(self) -> None:
        self._records: dict[str, JobMetadataRecord] = {}
        self._order: list[str] = []

    def record(self, record: JobMetadataRecord) -> None:
        if record.task_id in self._records:
            raise ObservabilityError(f"metadata for task {record.task_id!r} already recorded")
        self._records[record.task_id] = record
        self._order.append(record.task_id)

    def record_from_result(
        self,
        task_id: str,
        time: float,
        result,
        user: str = "",
        priority_class: str = "",
        queue_wait_s: float = 0.0,
    ) -> JobMetadataRecord:
        """Build a record from an :class:`~repro.emulators.base.EmulationResult`."""
        meta = result.metadata
        record = JobMetadataRecord(
            task_id=task_id,
            time=time,
            user=user,
            resource=str(meta.get("resource", meta.get("device", ""))),
            priority_class=priority_class,
            queue_wait_s=queue_wait_s,
            execution_s=float(meta.get("execution_seconds", 0.0)),
            shots=result.shots,
            backend=result.backend,
            calibration=dict(meta.get("calibration", {})),
            diagnostics={
                k: v
                for k, v in meta.items()
                if k not in ("calibration", "resource", "device", "execution_seconds")
            },
        )
        self.record(record)
        return record

    def get(self, task_id: str) -> JobMetadataRecord:
        if task_id not in self._records:
            raise ObservabilityError(f"no metadata for task {task_id!r}")
        return self._records[task_id]

    def __len__(self) -> int:
        return len(self._records)

    def for_user(self, user: str) -> list[JobMetadataRecord]:
        return [self._records[t] for t in self._order if self._records[t].user == user]

    def in_window(self, since: float, until: float) -> list[JobMetadataRecord]:
        return [
            self._records[t]
            for t in self._order
            if since <= self._records[t].time <= until
        ]
