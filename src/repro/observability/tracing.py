"""Distributed tracing: job-scoped span trees from Session to shot.

The federation already *publishes* everything that happens to a job —
task transitions stream over the :class:`~repro.federation.events.LifecycleBus`,
the broker announces placements and outcomes, the malleable manager
announces resizes.  What was missing is *causality*: the ability to pick
one job id and get back the full tree of timed stages it passed through
(submit -> admission -> placement -> queue-wait -> execute -> result
fetch -> complete), on both the simulated clock and the wall clock.

This module supplies that plane:

* :class:`TraceContext` — the (trace_id, span_id) pair that travels in
  ``JobSpec.metadata["trace_context"]``, so context propagation needs no
  signature changes anywhere on the submit path,
* :class:`Span` — one timed stage with simulated start/end, wall-clock
  start/end, a status, and free-form attributes,
* :class:`Tracer` — the registry: explicit ``now`` arguments (no clock
  coupling), deterministic ``trace-N``/``span-N`` ids (replayable runs
  produce identical trees), a LifecycleBus subscription that turns task
  transitions into queue-wait / execute spans, TSDB persistence, JSON
  export, and critical-path extraction.

Everything here is passive bookkeeping: the tracer never schedules
simulator events and never mutates scheduling state, so an instrumented
run makes bit-identical decisions to an uninstrumented one.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Any

from ..errors import ObservabilityError

__all__ = ["Span", "TraceContext", "Tracer", "instrument_scheduler"]

#: task-transition kinds that terminate a task-scoped span
_TERMINAL_TASK_KINDS = ("completed", "failed", "cancelled")
#: broker job kinds that close the root span
_TERMINAL_JOB_KINDS = ("job_completed", "job_failed")


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of a span: enough to parent a child
    anywhere downstream without sharing object references."""

    trace_id: str
    span_id: str

    def to_dict(self) -> dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, data: dict[str, str]) -> "TraceContext":
        try:
            return cls(trace_id=str(data["trace_id"]), span_id=str(data["span_id"]))
        except (KeyError, TypeError) as exc:
            raise ObservabilityError(f"bad trace context {data!r}") from exc


class Span:
    """One timed stage of a job, on two clocks.

    ``start``/``end`` are simulated seconds (deterministic, replayable);
    ``wall_start``/``wall_end`` are ``time.perf_counter()`` readings
    (real cost of the stage in this process).  A span with ``end is
    None`` is still open.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start",
        "end",
        "wall_start",
        "wall_end",
        "status",
        "attributes",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        name: str,
        start: float,
        wall_start: float,
        attributes: dict[str, Any],
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: float | None = None
        self.wall_start = wall_start
        self.wall_end: float | None = None
        self.status = "ok"
        self.attributes = attributes

    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> float | None:
        """Simulated duration, or None while the span is open."""
        if self.end is None:
            return None
        return self.end - self.start

    @property
    def wall_duration_s(self) -> float | None:
        if self.wall_end is None:
            return None
        return self.wall_end - self.wall_start

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "wall_duration_s": self.wall_duration_s,
            "status": self.status,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.open else f"{self.duration:.3f}s"
        return f"Span({self.name!r}, {self.span_id}, {state})"


class Tracer:
    """Span registry + LifecycleBus adapter.

    The tracer is clock-agnostic: every mutation takes an explicit
    ``now`` (simulated seconds) and stamps the wall clock itself.  Ids
    are sequential (``trace-1``, ``span-17``) so two identical runs
    export identical traces — a property the bench harness relies on to
    diff trace exports across commits.
    """

    def __init__(self) -> None:
        self._trace_seq = 0
        self._span_seq = 0
        self._spans: dict[str, Span] = {}
        self._by_trace: dict[str, list[Span]] = {}
        #: spans in *close* order — simulated time is monotone across the
        #: run, so draining this into the TSDB never violates the
        #: per-series monotone-append invariant
        self._closed: list[Span] = []
        self._job_roots: dict[str, Span] = {}
        #: (site, task_id) -> parent context for bus-derived task spans
        self._task_parent: dict[tuple[str, str], TraceContext] = {}
        self._task_attrs: dict[tuple[str, str], dict[str, Any]] = {}
        #: open bus-derived spans per task, by stage name
        self._task_spans: dict[tuple[str, str], dict[str, Span]] = {}
        #: tasks whose terminal transition also closes the trace root
        #: (daemon-backend jobs, where the task *is* the job)
        self._root_tasks: set[tuple[str, str]] = set()
        self._attached_buses: list[Any] = []

    # -- span lifecycle ---------------------------------------------------

    def start_trace(self, name: str, now: float, **attributes: Any) -> Span:
        """Open a new root span (and with it a new trace)."""
        self._trace_seq += 1
        trace_id = f"trace-{self._trace_seq}"
        return self._new_span(trace_id, None, name, now, None, attributes)

    def start_span(
        self,
        name: str,
        parent: "Span | TraceContext",
        now: float,
        wall_start: float | None = None,
        **attributes: Any,
    ) -> Span:
        """Open a child span under ``parent`` (a Span or a TraceContext)."""
        return self._new_span(
            parent.trace_id, parent.span_id, name, now, wall_start, attributes
        )

    def _new_span(
        self,
        trace_id: str,
        parent_id: str | None,
        name: str,
        now: float,
        wall_start: float | None,
        attributes: dict[str, Any],
    ) -> Span:
        self._span_seq += 1
        span = Span(
            trace_id=trace_id,
            span_id=f"span-{self._span_seq}",
            parent_id=parent_id,
            name=name,
            start=now,
            wall_start=wall_start if wall_start is not None else _time.perf_counter(),
            attributes=attributes,
        )
        self._spans[span.span_id] = span
        self._by_trace.setdefault(trace_id, []).append(span)
        return span

    def end_span(
        self, span: Span, now: float, status: str = "ok", **attributes: Any
    ) -> Span:
        if span.end is not None:
            raise ObservabilityError(f"span {span.span_id} already ended")
        span.end = now
        span.wall_end = _time.perf_counter()
        span.status = status
        if attributes:
            span.attributes.update(attributes)
        self._closed.append(span)
        return span

    @staticmethod
    def context(span: Span) -> TraceContext:
        return TraceContext(trace_id=span.trace_id, span_id=span.span_id)

    def resolve(self, ctx: TraceContext) -> Span | None:
        """The local span behind a context, if it was created here."""
        return self._spans.get(ctx.span_id)

    # -- job / task binding ----------------------------------------------

    def bind_job(self, job_id: str, parent: "Span | TraceContext") -> Span:
        """Register the root span a job id resolves to.

        ``parent`` is either the root Span itself (broker-opened) or the
        TraceContext a spec carried in.  A context minted by a *different*
        tracer is adopted: a local root is opened that continues the
        foreign trace id.
        """
        if isinstance(parent, Span):
            root = parent
        else:
            found = self._spans.get(parent.span_id)
            if found is None:
                # foreign context (spec round-tripped through REST/dict):
                # continue the trace with a local root under it
                self._span_seq += 1
                root = Span(
                    trace_id=parent.trace_id,
                    span_id=f"span-{self._span_seq}",
                    parent_id=parent.span_id,
                    name="job",
                    start=0.0,
                    wall_start=_time.perf_counter(),
                    attributes={"adopted": True},
                )
                self._spans[root.span_id] = root
                self._by_trace.setdefault(root.trace_id, []).append(root)
            else:
                root = found
        self._job_roots[job_id] = root
        root.attributes.setdefault("job_id", job_id)
        return root

    def job_root(self, job_id: str) -> Span | None:
        return self._job_roots.get(job_id)

    def job_context(self, job_id: str) -> TraceContext | None:
        root = self._job_roots.get(job_id)
        return None if root is None else self.context(root)

    def start_job_span(
        self,
        job_id: str,
        name: str,
        now: float,
        wall_start: float | None = None,
        **attributes: Any,
    ) -> Span | None:
        """Child span under a job's root; None when the job is unbound."""
        root = self._job_roots.get(job_id)
        if root is None:
            return None
        return self.start_span(name, root, now, wall_start=wall_start, **attributes)

    def bind_task(
        self,
        site: str,
        task_id: str,
        parent: "Span | TraceContext | None",
        now: float,
        close_root: bool = False,
        **attributes: Any,
    ) -> Span | None:
        """Attach a site-level task to a parent span and open its
        queue-wait span.

        Called at placement/dispatch time — the task was *just* submitted
        to the site queue, so by construction it is still queued (the
        scheduler runs in a simulated process that cannot have advanced
        yet).  Opening queue-wait here rather than on the ``queued`` bus
        event closes the race where the queue publishes before the
        broker has registered the mapping.  ``close_root=True`` marks
        tasks whose terminal transition ends the whole trace (daemon
        backend, where the task is the job).
        """
        if parent is None:
            return None
        key = (site, task_id)
        ctx = self.context(parent) if isinstance(parent, Span) else parent
        self._task_parent[key] = ctx
        attrs = {"site": site, "task_id": task_id, **attributes}
        self._task_attrs[key] = attrs
        if close_root:
            self._root_tasks.add(key)
        span = self.start_span("queue-wait", ctx, now, **attrs)
        self._task_spans.setdefault(key, {})["queue-wait"] = span
        return span

    def task_context(self, site: str, task_id: str) -> TraceContext | None:
        """Context a dispatch-level child should parent under: the open
        execute span when there is one, else the task's binding."""
        key = (site, task_id)
        open_spans = self._task_spans.get(key)
        if open_spans and "execute" in open_spans:
            return self.context(open_spans["execute"])
        return self._task_parent.get(key)

    def start_task_span(
        self, site: str, task_id: str, name: str, now: float, **attributes: Any
    ) -> Span | None:
        """Child span under a bound task (scheduler dispatch hook);
        returns None for tasks outside any trace so untraced traffic
        costs one dict miss."""
        ctx = self.task_context(site, task_id)
        if ctx is None:
            return None
        return self.start_span(name, ctx, now, site=site, task_id=task_id, **attributes)

    # -- LifecycleBus adapter --------------------------------------------

    def attach_bus(self, bus: Any) -> None:
        """Subscribe to a LifecycleBus; idempotent per bus."""
        if any(existing is bus for existing in self._attached_buses):
            return
        self._attached_buses.append(bus)
        bus.subscribe(self._on_event, batch=self.deliver_batch)

    def deliver_batch(self, events: list[Any]) -> None:
        """Batched-bus delivery: span open/close pairs need every
        transition, in publish order — never coalesce this subscriber."""
        for event in events:
            self._on_event(event)

    def _on_event(self, event: Any) -> None:
        kind = event.kind
        if event.task_id and not kind.startswith("job_"):
            self._on_task_event(event, kind)
            return
        if kind in _TERMINAL_JOB_KINDS:
            root = self._job_roots.get(event.job_id)
            if root is not None and root.open:
                status = "ok" if kind == "job_completed" else "failed"
                self.end_span(root, event.time, status=status)
        elif kind == "resize":
            span = self.start_job_span(
                event.job_id,
                "resize",
                event.time,
                site=event.site,
                action=event.payload.get("action", ""),
                reason=event.payload.get("reason", ""),
            )
            if span is not None:
                self.end_span(span, event.time)
        elif kind == "job_rerouted":
            span = self.start_job_span(
                event.job_id,
                "reroute",
                event.time,
                site=event.site,
                reason=event.payload.get("reason", ""),
            )
            if span is not None:
                self.end_span(span, event.time)

    def _on_task_event(self, event: Any, kind: str) -> None:
        key = (event.site, event.task_id)
        parent = self._task_parent.get(key)
        if parent is None:
            return
        open_spans = self._task_spans.setdefault(key, {})
        now = event.time
        if kind == "running":
            waiting = open_spans.pop("queue-wait", None)
            if waiting is not None:
                self.end_span(waiting, now)
            stale = open_spans.pop("execute", None)
            if stale is not None:  # defensive: restart without a preempt event
                self.end_span(stale, now, status="preempted")
            attrs = self._task_attrs.get(key, {})
            open_spans["execute"] = self.start_span("execute", parent, now, **attrs)
        elif kind == "preempted":
            running = open_spans.pop("execute", None)
            if running is not None:
                self.end_span(running, now, status="preempted")
            # the task goes back to the queue: re-open the wait span
            attrs = self._task_attrs.get(key, {})
            open_spans["queue-wait"] = self.start_span("queue-wait", parent, now, **attrs)
        elif kind in _TERMINAL_TASK_KINDS:
            status = "ok" if kind == "completed" else kind
            for span in open_spans.values():
                self.end_span(span, now, status=status)
            open_spans.clear()
            self._task_spans.pop(key, None)
            self._task_parent.pop(key, None)
            self._task_attrs.pop(key, None)
            if key in self._root_tasks:
                self._root_tasks.discard(key)
                root = self._spans.get(parent.span_id)
                while root is not None and root.parent_id is not None:
                    root = self._spans.get(root.parent_id)
                if root is not None and root.open:
                    self.end_span(root, now, status=status)

    # -- queries ----------------------------------------------------------

    def trace_ids(self) -> list[str]:
        return list(self._by_trace)

    def spans(self, trace_id: str) -> list[Span]:
        """All spans of a trace in creation order."""
        return list(self._by_trace.get(trace_id, ()))

    def job_spans(self, job_id: str) -> list[Span]:
        """The full span tree of a job, looked up by job id."""
        root = self._job_roots.get(job_id)
        if root is None:
            return []
        return self.spans(root.trace_id)

    def span_tree(self, trace_id: str) -> dict[str, Any]:
        """Nested view: ``{"span": Span, "children": [...]}`` from the root."""
        spans = self.spans(trace_id)
        if not spans:
            raise ObservabilityError(f"unknown trace {trace_id!r}")
        nodes = {s.span_id: {"span": s, "children": []} for s in spans}
        root_node = None
        for span in spans:
            node = nodes[span.span_id]
            parent = nodes.get(span.parent_id) if span.parent_id else None
            if parent is None:
                if root_node is None:
                    root_node = node
            else:
                parent["children"].append(node)
        if root_node is None:  # pragma: no cover - spans always include a root
            raise ObservabilityError(f"trace {trace_id!r} has no root span")
        return root_node

    def critical_path(self, trace_id: str) -> list[Span]:
        """Root-to-leaf chain through the latest-ending child at each
        level: the stages that bound the job's end-to-end latency."""
        node = self.span_tree(trace_id)
        path = [node["span"]]
        while node["children"]:
            node = max(
                node["children"],
                key=lambda child: (
                    child["span"].end
                    if child["span"].end is not None
                    else float("inf")
                ),
            )
            path.append(node["span"])
        return path

    def stage_durations(self, trace_id: str) -> dict[str, float]:
        """Total simulated seconds per stage name (closed spans only)."""
        totals: dict[str, float] = {}
        for span in self.spans(trace_id):
            if span.duration is not None:
                totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals

    # -- export -----------------------------------------------------------

    def export_json(self, trace_id: str) -> dict[str, Any]:
        """JSON-able trace export; deterministic across identical runs."""
        spans = self.spans(trace_id)
        if not spans:
            raise ObservabilityError(f"unknown trace {trace_id!r}")
        return {"trace_id": trace_id, "spans": [s.to_dict() for s in spans]}

    def export_job_json(self, job_id: str) -> dict[str, Any]:
        root = self._job_roots.get(job_id)
        if root is None:
            raise ObservabilityError(f"no trace bound for job {job_id!r}")
        out = self.export_json(root.trace_id)
        out["job_id"] = job_id
        return out

    def flush_to_tsdb(self, tsdb: Any, measurement: str = "trace_span_seconds") -> int:
        """Persist closed spans into the chunked TSDB and drain the buffer.

        One point per span at its (simulated) end time, valued at its
        simulated duration, labeled by stage name and site.  Spans close
        in simulated-time order, so appends stay monotone per series.
        """
        flushed = 0
        for span in self._closed:
            tsdb.write(
                measurement,
                span.end,
                span.duration or 0.0,
                labels={
                    "name": span.name,
                    "site": str(span.attributes.get("site", "")),
                },
            )
            flushed += 1
        self._closed.clear()
        return flushed


def instrument_scheduler(scheduler: Any, tracer: Tracer, site: str) -> None:
    """Point a daemon scheduler's dispatch hook at ``tracer``.

    The scheduler opens a ``dispatch`` span around each task execution
    when these attributes are set; tasks outside any trace short-circuit
    to a dict miss.
    """
    scheduler.span_tracer = tracer
    scheduler.span_site = site
