"""Continuous profiling: where does the *system* spend its time?

PR 6's tracing answers "what happened to this job"; this module answers
the complementary ops question from paper §2.5 — where the middleware
itself burns wall clock.  A :class:`Profiler` hands out nestable
``scope()`` context managers that the hot paths guard behind a single
``is not None`` check (broker reconcile, the malleable resize loop,
scheduler select, ``SchedulingAlgorithm.schedule`` calls, simkernel
event dispatch, the scraper's TSDB flush), aggregating per-call-path
statistics — count, total, self (minus children), max — that render as
a top-N table or a flamegraph-style tree and flush into the chunked
TSDB beside the trace spans.

Design constraints, in order:

* **near-zero cost when absent** — every instrumented site holds a
  ``profiler`` reference that defaults to ``None`` and pays one branch;
  a disabled :class:`Profiler` instance hands back a shared no-op scope
  so user code can leave ``with profiler.scope(...)`` in place,
* **scheduling-invisible** — the profiler only reads the wall clock and
  mutates its own dicts; it never touches simulator or queue state, so
  a profiled run makes bit-identical scheduling decisions (the C6 bench
  enforces this),
* **path-aware** — stats key on the full scope *path* (e.g.
  ``sim.step/broker.reconcile/malleable.tick``), so time nested under a
  parent is attributed to the parent's children, not double-reported.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any

__all__ = ["Profiler", "instrument_scheduler_profiler"]


class _NoopScope:
    """Shared do-nothing context manager for disabled profilers."""

    __slots__ = ()

    def __enter__(self) -> "_NoopScope":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NOOP = _NoopScope()


class _Scope:
    """Live scope: pushes a frame on enter, accounts it on exit."""

    __slots__ = ("_profiler", "_name")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Scope":
        self._profiler.push(self._name)
        return self

    def __exit__(self, *exc: object) -> bool:
        self._profiler.pop()
        return False


class Profiler:
    """Low-overhead hierarchical scope profiler.

    Stats accumulate per call path (tuple of nested scope names) as
    ``[count, total_s, self_s, max_s]``; ``self_s`` is the scope's wall
    time minus the wall time of scopes entered beneath it.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        #: open frames: [name, wall_start, child_seconds]
        self._stack: list[list] = []
        #: call path -> [count, total_s, self_s, max_s]
        self._stats: dict[tuple[str, ...], list[float]] = {}

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        """Stop collecting; ``scope()`` returns the shared no-op and the
        hot-path ``push``/``pop`` pair degrades to a branch each."""
        self.enabled = False

    # -- the hot path ------------------------------------------------------

    def scope(self, name: str):
        """Context manager timing one named scope (nestable)."""
        if not self.enabled:
            return _NOOP
        return _Scope(self, name)

    def push(self, name: str) -> None:
        """Open a frame without a context manager — the shape the
        per-event simulator hook uses to avoid an allocation per step."""
        if not self.enabled:
            return
        self._stack.append([name, perf_counter(), 0.0])

    def pop(self) -> None:
        """Close the innermost frame and account it to its call path."""
        if not self.enabled:
            return
        stack = self._stack
        if not stack:
            return  # disabled/enabled mid-flight: never raise on a hot path
        name, started, child_s = stack.pop()
        elapsed = perf_counter() - started
        if stack:
            stack[-1][2] += elapsed
        path = (*(frame[0] for frame in stack), name)
        stat = self._stats.get(path)
        if stat is None:
            self._stats[path] = [1.0, elapsed, elapsed - child_s, elapsed]
            return
        stat[0] += 1.0
        stat[1] += elapsed
        stat[2] += elapsed - child_s
        if elapsed > stat[3]:
            stat[3] = elapsed

    def profile(self, name: str):
        """Decorator form of :meth:`scope`."""

        def wrap(fn):
            def inner(*args: Any, **kwargs: Any):
                if not self.enabled:
                    return fn(*args, **kwargs)
                self.push(name)
                try:
                    return fn(*args, **kwargs)
                finally:
                    self.pop()

            inner.__name__ = getattr(fn, "__name__", name)
            inner.__doc__ = fn.__doc__
            return inner

        return wrap

    # -- queries -----------------------------------------------------------

    def snapshot(self) -> dict[tuple[str, ...], dict[str, float]]:
        """Copy of the aggregates, keyed by call path."""
        return {
            path: {
                "count": stat[0],
                "total_s": stat[1],
                "self_s": stat[2],
                "max_s": stat[3],
            }
            for path, stat in self._stats.items()
        }

    def paths(self) -> list[tuple[str, ...]]:
        return sorted(self._stats)

    def total_seconds(self) -> float:
        """Wall seconds under root scopes (nested time counted once)."""
        return sum(stat[1] for path, stat in self._stats.items() if len(path) == 1)

    def reset(self) -> None:
        self._stats.clear()
        self._stack.clear()

    # -- rendering ---------------------------------------------------------

    def report_top(self, n: int = 10) -> str:
        """Top-N call paths by self time, as a text table."""
        rows = sorted(
            self._stats.items(), key=lambda item: item[1][2], reverse=True
        )[:n]
        header = f"{'self ms':>10}  {'total ms':>10}  {'calls':>8}  {'max ms':>9}  path"
        lines = [f"== profile top-{n} (by self time) ==", header]
        for path, (count, total, self_s, max_s) in rows:
            lines.append(
                f"{self_s * 1e3:>10.3f}  {total * 1e3:>10.3f}  {int(count):>8}"
                f"  {max_s * 1e3:>9.3f}  {'/'.join(path)}"
            )
        if not rows:
            lines.append("  (no scopes recorded)")
        return "\n".join(lines)

    def render_flame(self, width: int = 40) -> str:
        """Flamegraph-style text tree beside the trace timeline: one
        line per call path, indented by depth, with a bar proportional
        to its share of the total root wall time."""
        total = self.total_seconds()
        lines = [f"== profile flame ({total * 1e3:.3f} ms total) =="]
        if not self._stats:
            lines.append("  (no scopes recorded)")
            return "\n".join(lines)
        horizon = max(total, 1e-12)
        paths = sorted(self._stats)
        label_width = max(len(p[-1]) + 2 * (len(p) - 1) for p in paths) + 2
        for path in paths:
            count, total_s, self_s, _ = self._stats[path]
            filled = min(width, max(1, round(total_s / horizon * width)))
            bar = "█" * filled + " " * (width - filled)
            label = "  " * (len(path) - 1) + path[-1]
            lines.append(
                f" {label:<{label_width}}|{bar}| "
                f"{total_s * 1e3:.3f}ms self={self_s * 1e3:.3f}ms n={int(count)}"
            )
        return "\n".join(lines)

    # -- persistence -------------------------------------------------------

    def flush_to_tsdb(self, tsdb: Any, now: float, reset: bool = True) -> int:
        """Write one point per call path and stat into the TSDB.

        Measurements are ``profile_scope_calls`` / ``profile_scope_seconds``
        / ``profile_scope_self_seconds`` / ``profile_scope_max_seconds``,
        labeled by the ``/``-joined path.  Flush at nondecreasing ``now``
        values — same monotone-append contract as every other writer.
        ``reset`` (default) drains the aggregates so repeated flushes
        form a per-interval series rather than a cumulative one.
        """
        flushed = 0
        for path in sorted(self._stats):
            count, total_s, self_s, max_s = self._stats[path]
            labels = {"path": "/".join(path)}
            tsdb.write("profile_scope_calls", now, count, labels=labels)
            tsdb.write("profile_scope_seconds", now, total_s, labels=labels)
            tsdb.write("profile_scope_self_seconds", now, self_s, labels=labels)
            tsdb.write("profile_scope_max_seconds", now, max_s, labels=labels)
            flushed += 1
        if reset:
            self._stats.clear()
        return flushed


def instrument_scheduler_profiler(scheduler: Any, profiler: Profiler) -> None:
    """Point a daemon scheduler's select hook at ``profiler`` (the
    profiling twin of :func:`~repro.observability.tracing.instrument_scheduler`):
    each ``_select`` pass runs under a ``scheduler.select`` scope."""
    scheduler.scope_profiler = profiler
