"""The scraper: polls collectors into the TSDB on a simulated cadence.

A *collector* is any callable ``(now) -> dict[str, float]`` (plus
optional labels).  The built-in QPU collector adapts
:meth:`repro.qpu.QPUDevice.telemetry`.  This is the moving part that
turns device state into history the dashboards/alerting/drift layers
consume.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

from ..errors import ObservabilityError
from ..simkernel import Simulator, Timeout
from .tsdb import TimeSeriesDB

__all__ = ["Scraper"]


@dataclass
class _Target:
    name: str
    collect: Callable[[float], Mapping[str, float]]
    labels: dict[str, str] = field(default_factory=dict)
    scrapes: int = 0
    errors: int = 0


class Scraper:
    """Periodic collector -> TSDB pump, running as a simulated process."""

    def __init__(self, sim: Simulator, tsdb: TimeSeriesDB, interval: float = 15.0) -> None:
        if interval <= 0:
            raise ObservabilityError("scrape interval must be positive")
        self.sim = sim
        self.tsdb = tsdb
        self.interval = interval
        self._targets: list[_Target] = []
        self._process = None
        #: optional profiler; when set, each scrape runs under a
        #: ``tsdb.flush`` scope (the scrape IS the TSDB write hot path)
        self.profiler = None
        #: sim time of the last completed scrape (None before the first)
        self.last_scrape_at: float | None = None

    def add_target(
        self,
        name: str,
        collect: Callable[[float], Mapping[str, float]],
        labels: Mapping[str, str] | None = None,
    ) -> None:
        if any(t.name == name for t in self._targets):
            raise ObservabilityError(f"scrape target {name!r} already registered")
        self._targets.append(_Target(name, collect, dict(labels or {})))

    def add_qpu(self, device, name: str | None = None) -> None:
        """Convenience: scrape a :class:`~repro.qpu.QPUDevice`."""
        label = name or device.specs.name

        def collect(now: float) -> Mapping[str, float]:
            return device.telemetry(now).to_metrics()

        self.add_target(label, collect, labels={"device": label})

    def start(self) -> None:
        if self._process is not None:
            raise ObservabilityError("scraper already started")
        self._process = self.sim.spawn(self._run(), name="scraper", background=True)

    def scrape_once(self, now: float) -> None:
        profiler = self.profiler
        if profiler is None:
            self._scrape(now)
            return
        with profiler.scope("tsdb.flush"):
            self._scrape(now)

    def _scrape(self, now: float) -> None:
        for target in self._targets:
            try:
                values = target.collect(now)
            except Exception:
                target.errors += 1
                self.tsdb.write("scrape_error", now, 1.0, labels={"target": target.name})
            else:
                target.scrapes += 1
                self.tsdb.write_many(dict(values), now, labels=target.labels)
            # self-metrics: a broken collector is visible as a flat
            # scrapes curve + rising errors curve, per target
            self.tsdb.write(
                "scrape_target_scrapes", now, float(target.scrapes),
                labels={"target": target.name},
            )
            self.tsdb.write(
                "scrape_target_errors", now, float(target.errors),
                labels={"target": target.name},
            )
        self.last_scrape_at = now

    def _run(self):
        while True:
            yield Timeout(self.interval)
            self.scrape_once(self.sim.now)

    def targets(self) -> list[str]:
        return [t.name for t in self._targets]
