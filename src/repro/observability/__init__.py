"""Observability stack: metrics, time series, dashboards, alerts, drift.

Paper §3.6: "we build a native observability stack, exposing QPU state
through standard telemetry tools such as Prometheus, with plans to
integrate dashboards via Grafana, all built on the InfluxDB time
series database."

The stack is rebuilt from scratch with the same division of labour:

* :mod:`metrics`   — Prometheus-style metric registry (counters,
  gauges, histograms with labels),
* :mod:`exporter`  — the text exposition format,
* :mod:`tsdb`      — InfluxDB-style time-series store (monotone
  append, range queries, downsampling, retention),
* :mod:`scrape`    — the scraper process polling collectors into the
  TSDB on a cadence (runs on the simulated clock),
* :mod:`dashboard` — Grafana-style panel definitions evaluated
  against the TSDB,
* :mod:`alerts`    — threshold/absence alert rules with firing state,
* :mod:`drift`     — QPU calibration drift detectors (EWMA + CUSUM)
  for the paper's "automated drift detection" future-work item,
* :mod:`jobmeta`   — per-job metadata ("per-job metadata on qubit
  performance can assist in interpreting noisy results"),
* :mod:`tracing`   — distributed tracing: job-scoped span trees with
  explicit context propagation from Session to shot,
* :mod:`profiling` — continuous hot-path scope profiler (call-path
  stats, top-N report, flamegraph-style tree, TSDB flush),
* :mod:`profiles`  — per-workload phase signatures keyed by (tenant,
  program signature), EWMA-updated from lifecycle events,
* :mod:`slo`       — latency objectives with multi-window burn-rate
  rules compiled onto the alert manager.
"""

from .alerts import Alert, AlertManager, AlertRule, AlertState
from .dashboard import Dashboard, Panel, render_trace_timeline
from .drift import CusumDetector, DriftDetector, EwmaDetector
from .exporter import render_exposition
from .jobmeta import JobMetadataStore
from .metrics import Counter, Gauge, Histogram, MetricRegistry
from .profiles import PhaseProfile, ProfileStore, program_signature
from .profiling import Profiler, instrument_scheduler_profiler
from .scrape import Scraper
from .slo import DEFAULT_OBJECTIVES, LatencyObjective, SLOTracker
from .tracing import Span, TraceContext, Tracer, instrument_scheduler
from .tsdb import TimeSeriesDB

__all__ = [
    "Alert",
    "AlertManager",
    "AlertRule",
    "AlertState",
    "Counter",
    "CusumDetector",
    "DEFAULT_OBJECTIVES",
    "Dashboard",
    "DriftDetector",
    "EwmaDetector",
    "Gauge",
    "Histogram",
    "JobMetadataStore",
    "LatencyObjective",
    "MetricRegistry",
    "Panel",
    "PhaseProfile",
    "ProfileStore",
    "Profiler",
    "SLOTracker",
    "Scraper",
    "Span",
    "TimeSeriesDB",
    "TraceContext",
    "Tracer",
    "instrument_scheduler",
    "instrument_scheduler_profiler",
    "program_signature",
    "render_exposition",
    "render_trace_timeline",
]
