"""Latency SLOs with multi-window burn-rate alerting.

The missing half of paper §2.5's ops story: tracing (PR 6) says what
happened to a job, profiling says where the system spends time — this
module says whether tenants are *meeting their objectives*.  A
:class:`LatencyObjective` declares "fraction ``objective`` of <stage>
events for <tenant> finish within ``threshold_s``"; the
:class:`SLOTracker` classifies every bus-derived stage latency sample
as good/bad and evaluates Google-SRE-style multi-window burn rates:

    ``burn = error_rate / (1 - objective)``

computed over a short and a long window, publishing the *minimum* of
the two as ``slo_burn_rate{slo=<name>}`` so a compiled alert rule fires
only while **both** windows burn — fast windows catch onset, long
windows stop flapping.  Error-budget remaining over the long window is
published as ``slo_error_budget_remaining`` (it may go negative: an
overdrawn budget should be visible, not clamped).  Rules ride the
existing :class:`~repro.observability.alerts.AlertManager` unchanged,
via :meth:`SLOTracker.compile_rules`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from ..errors import ObservabilityError
from .alerts import AlertManager, AlertRule

__all__ = ["LatencyObjective", "SLOTracker", "DEFAULT_OBJECTIVES"]

#: stages with bus-derivable latencies (same vocabulary as
#: ``federation_stage_latency_seconds``)
STAGES = ("queue-wait", "execute", "job")


@dataclass(frozen=True)
class LatencyObjective:
    """``objective`` fraction of ``stage`` events within ``threshold_s``."""

    name: str
    stage: str
    threshold_s: float
    objective: float = 0.99
    tenant: str | None = None  # None matches every tenant
    short_window_s: float = 300.0
    long_window_s: float = 3600.0
    #: compiled-rule knobs: fire when min-window burn exceeds
    #: ``burn_threshold`` continuously for ``for_seconds``
    burn_threshold: float = 1.0
    for_seconds: float = 120.0
    severity: str = "page"

    def __post_init__(self) -> None:
        if self.stage not in STAGES:
            raise ObservabilityError(
                f"unknown SLO stage {self.stage!r} (one of {STAGES})"
            )
        if not (0.0 < self.objective < 1.0):
            raise ObservabilityError("objective must be in (0, 1)")
        if self.threshold_s <= 0:
            raise ObservabilityError("threshold_s must be > 0")
        if not (0.0 < self.short_window_s <= self.long_window_s):
            raise ObservabilityError(
                "need 0 < short_window_s <= long_window_s"
            )

    def matches(self, stage: str, tenant: str | None) -> bool:
        return self.stage == stage and (
            self.tenant is None or self.tenant == tenant
        )


#: a sane default set for stacks that just want the plane on
DEFAULT_OBJECTIVES = (
    LatencyObjective(
        name="job-latency", stage="job", threshold_s=600.0, objective=0.95
    ),
    LatencyObjective(
        name="queue-wait", stage="queue-wait", threshold_s=120.0, objective=0.90
    ),
)


class SLOTracker:
    """Classifies stage-latency samples against objectives and keeps
    multi-window burn-rate state.

    Samples arrive either from a lifecycle bus (:meth:`attach_bus`, the
    production path — stage derivation is identical to
    ``FederationMetrics``, with tenant attribution through the enriched
    ``job_submitted`` payload) or directly via :meth:`observe` (the
    synthetic-test path).  :meth:`evaluate` recomputes burn rates,
    writes the ``slo_*`` series, and caches results for the exporter.
    """

    def __init__(self, objectives=DEFAULT_OBJECTIVES, tsdb: Any = None) -> None:
        self.objectives = list(objectives)
        names = [o.name for o in self.objectives]
        if len(set(names)) != len(names):
            raise ObservabilityError("duplicate SLO objective names")
        self.tsdb = tsdb
        #: per objective: deque of (time, is_bad) pruned to long_window
        self._events: dict[str, deque] = {o.name: deque() for o in self.objectives}
        #: objective name -> last evaluate() results (exporter cache)
        self.last_results: dict[str, dict[str, float]] = {}
        self._last_eval_at: float | None = None
        # bus stage tracking (tenant rides the job, tasks bind via placement)
        self._jobs: dict[str, dict[str, Any]] = {}
        self._task_to_job: dict[tuple[str, str], str] = {}
        self._task_times: dict[tuple[str, str], dict[str, float]] = {}

    # -- sample intake -----------------------------------------------------

    def observe(
        self, stage: str, latency_s: float, now: float, tenant: str | None = None
    ) -> None:
        """Classify one stage-latency sample against every matching
        objective."""
        if stage not in STAGES:
            raise ObservabilityError(f"unknown SLO stage {stage!r}")
        for objective in self.objectives:
            if objective.matches(stage, tenant):
                self._events[objective.name].append(
                    (now, latency_s > objective.threshold_s)
                )

    def attach_bus(self, bus: Any) -> None:
        bus.subscribe(self._on_event, batch=self.deliver_batch)

    def deliver_batch(self, events: list[Any]) -> None:
        """Batched-bus delivery: burn-rate windows classify every
        stage-latency sample, so the stream replays in publish order."""
        for event in events:
            self._on_event(event)

    def _on_event(self, event: Any) -> None:
        kind = event.kind
        if event.task_id and not kind.startswith("job_"):
            key = (event.site, event.task_id)
            tenant = self._tenant_of(key)
            times = self._task_times.setdefault(key, {})
            if kind == "queued":
                times["queued"] = event.time
            elif kind == "running":
                queued_at = times.pop("queued", None)
                if queued_at is not None:
                    self.observe(
                        "queue-wait", event.time - queued_at, event.time, tenant
                    )
                times["running"] = event.time
            elif kind in ("completed", "failed", "cancelled"):
                started_at = times.pop("running", None)
                if started_at is not None:
                    self.observe(
                        "execute", event.time - started_at, event.time, tenant
                    )
                self._task_times.pop(key, None)
                self._task_to_job.pop(key, None)
            elif kind == "preempted":
                times.pop("running", None)
            return
        if kind in ("job_submitted", "job_held"):
            self._jobs.setdefault(
                event.job_id,
                {
                    "submitted_at": event.time,
                    "tenant": event.payload.get("tenant"),
                },
            )
        elif kind == "job_placed":
            if event.site and event.task_id and event.job_id in self._jobs:
                self._task_to_job[(event.site, event.task_id)] = event.job_id
        elif kind in ("job_completed", "job_failed"):
            job = self._jobs.pop(event.job_id, None)
            if job is not None:
                self.observe(
                    "job",
                    event.time - job["submitted_at"],
                    event.time,
                    job["tenant"],
                )

    def _tenant_of(self, key: tuple[str, str]) -> str | None:
        job_id = self._task_to_job.get(key)
        if job_id is None:
            return None
        job = self._jobs.get(job_id)
        return None if job is None else job.get("tenant")

    # -- evaluation --------------------------------------------------------

    def evaluate(self, now: float) -> dict[str, dict[str, float]]:
        """Recompute burn rates at ``now`` and publish the ``slo_*``
        series (call at nondecreasing ``now`` — TSDB appends are
        monotone per series)."""
        results: dict[str, dict[str, float]] = {}
        for objective in self.objectives:
            events = self._events[objective.name]
            horizon = now - objective.long_window_s
            while events and events[0][0] < horizon:
                events.popleft()
            budget = 1.0 - objective.objective
            short_err = self._error_rate(
                events, now - objective.short_window_s
            )
            long_err = self._error_rate(events, horizon)
            burn = min(short_err / budget, long_err / budget)
            remaining = 1.0 - long_err / budget
            results[objective.name] = {
                "burn_rate": burn,
                "short_burn": short_err / budget,
                "long_burn": long_err / budget,
                "error_budget_remaining": remaining,
                "events": float(len(events)),
            }
            if self.tsdb is not None:
                labels = {"slo": objective.name}
                self.tsdb.write("slo_burn_rate", now, burn, labels=labels)
                self.tsdb.write(
                    "slo_error_budget_remaining", now, remaining, labels=labels
                )
        self.last_results = results
        self._last_eval_at = now
        return results

    @staticmethod
    def _error_rate(events, since: float) -> float:
        total = bad = 0
        for t, is_bad in reversed(events):
            if t < since:
                break
            total += 1
            bad += is_bad
        return bad / total if total else 0.0

    # -- alert integration -------------------------------------------------

    def compile_rules(self, alerts: AlertManager) -> list[AlertRule]:
        """Register one burn-rate threshold rule per objective on the
        existing manager (which must read this tracker's TSDB)."""
        rules = []
        for objective in self.objectives:
            rule = AlertRule(
                name=f"slo-burn:{objective.name}",
                measurement="slo_burn_rate",
                op=">",
                threshold=objective.burn_threshold,
                for_seconds=objective.for_seconds,
                labels={"slo": objective.name},
                severity=objective.severity,
            )
            alerts.add_rule(rule)
            rules.append(rule)
        return rules

    # -- summaries ---------------------------------------------------------

    def summary(self) -> dict[str, dict[str, float]]:
        """Last evaluation results (empty until :meth:`evaluate` runs)."""
        return {name: dict(vals) for name, vals in self.last_results.items()}
