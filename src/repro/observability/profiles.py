"""Per-workload phase profiles: what does this *kind* of job look like?

The profile-guided co-scheduling arc (ROADMAP, after Uberun) needs a
measured signature per workload class before any packing algorithm can
use one: how long does this tenant's VQE wait in queue, how much
classical time passes between submit and placement, how long does the
QPU hold it, how often does the resize loop churn it.  This module
derives exactly that from streams the stack already produces — the
:class:`~repro.federation.events.LifecycleBus` on the federation side,
the middleware queue's transition listeners on the daemon side — so
profiling adds no new instrumentation points to the schedulers.

A :class:`ProfileStore` keys profiles by ``(tenant, program signature)``
where the signature is ``<program name>/q<qubit count>`` — distinct
program classes (VQE vs SQD vs QAA, 4-qubit vs 16-qubit) land in
distinct profiles even under one tenant.  Phase estimates update by
EWMA so the profile tracks the workload as it drifts, without storing
per-job history.  Exposure: ``broker.stats()["profiles"]`` carries the
summary, the daemon's ``GET /profiles`` REST route serves the full
snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import ObservabilityError

__all__ = ["PhaseProfile", "ProfileStore", "program_signature"]

#: phases a profile tracks (per-job observations, EWMA-smoothed)
PHASES = (
    "queue_wait_s",     # site queue: QUEUED -> RUNNING
    "classical_pre_s",  # broker intake -> first placement (admission etc.)
    "execute_s",        # RUNNING -> terminal (QPU + classical shot loop)
    "job_s",            # end to end, submit -> terminal
    "resize_churn",     # resize events the job attracted
)


def program_signature(program: Any) -> str:
    """``<name>/q<qubits>`` for any program shape the stack submits
    (AnalogProgram, IR dict, or anything register-bearing)."""
    name = getattr(program, "name", None)
    register = getattr(program, "register", None)
    if isinstance(program, dict):
        name = program.get("name", name)
        register = program.get("register", register)
    try:
        qubits = len(register)
    except TypeError:
        qubits = 0
    return f"{name or 'program'}/q{qubits}"


@dataclass
class PhaseProfile:
    """EWMA phase estimates of one (tenant, signature) workload class."""

    tenant: str
    signature: str
    samples: int = 0
    phases: dict[str, float] = field(default_factory=dict)
    #: per-phase observation counts (phases arrive independently: a job
    #: that failed before running contributes queue_wait but no execute)
    counts: dict[str, int] = field(default_factory=dict)

    def observe(self, phase: str, value: float, alpha: float) -> None:
        if phase not in PHASES:
            raise ObservabilityError(f"unknown profile phase {phase!r}")
        prev = self.phases.get(phase)
        self.phases[phase] = (
            value if prev is None else alpha * value + (1.0 - alpha) * prev
        )
        self.counts[phase] = self.counts.get(phase, 0) + 1

    def to_dict(self) -> dict[str, Any]:
        return {
            "tenant": self.tenant,
            "signature": self.signature,
            "samples": self.samples,
            "phases": dict(self.phases),
            "counts": dict(self.counts),
        }


class ProfileStore:
    """Phase-signature registry fed by lifecycle events.

    Two equivalent inputs:

    * :meth:`attach_bus` — federation side: job identity rides the
      broker's enriched ``job_submitted`` payload, task transitions
      resolve through the ``job_placed`` (site, task_id) binding,
    * :meth:`queue_listener` — daemon side: every middleware-queue task
      transition maps directly (tenant from the task's spec metadata,
      falling back to the session user).
    """

    def __init__(self, alpha: float = 0.3) -> None:
        if not (0.0 < alpha <= 1.0):
            raise ObservabilityError("EWMA alpha must be in (0, 1]")
        self.alpha = alpha
        self._profiles: dict[tuple[str, str], PhaseProfile] = {}
        #: live fixed-size/malleable jobs: job_id -> mutable tracking
        self._jobs: dict[str, dict[str, Any]] = {}
        #: (site, task_id) -> job_id for bus task transitions
        self._task_to_job: dict[tuple[str, str], str] = {}
        #: open task-stage timestamps, buffered independently of the
        #: job binding: sites publish the "queued" transition *before*
        #: the broker's "job_placed" establishes the binding
        self._task_times: dict[tuple[str, str], dict[str, float]] = {}
        #: daemon-side per-task tracking: task_id -> (tenant, signature)
        self._queue_tasks: dict[str, tuple[str, str]] = {}

    # -- core -------------------------------------------------------------

    def observe(self, tenant: str, signature: str, phase: str, value: float) -> None:
        """One phase observation (also the synthetic-test entry point)."""
        key = (tenant, signature)
        profile = self._profiles.get(key)
        if profile is None:
            profile = self._profiles[key] = PhaseProfile(tenant, signature)
        profile.observe(phase, float(value), self.alpha)

    def _finish_job(self, tenant: str, signature: str) -> None:
        key = (tenant, signature)
        profile = self._profiles.get(key)
        if profile is not None:
            profile.samples += 1

    # -- LifecycleBus adapter ---------------------------------------------

    def attach_bus(self, bus: Any) -> None:
        """Subscribe to a federation lifecycle bus (idempotent per
        store-and-bus pair is not tracked — subscribe once)."""
        bus.subscribe(self._on_event, batch=self.deliver_batch)

    def deliver_batch(self, events: list[Any]) -> None:
        """Batched-bus delivery: EWMA phase estimates fold over every
        observation, so the whole per-flush stream replays in publish
        order — never coalesce this subscriber."""
        for event in events:
            self._on_event(event)

    def _on_event(self, event: Any) -> None:
        kind = event.kind
        if event.task_id and not kind.startswith("job_"):
            self._on_task_event(event, kind)
            return
        if kind in ("job_submitted", "job_held"):
            tenant = event.payload.get("tenant")
            if tenant is None:
                return  # pre-enrichment publisher: nothing to key on
            signature = (
                f"{event.payload.get('program', 'program')}"
                f"/q{int(event.payload.get('qubits', 0))}"
            )
            self._jobs.setdefault(
                event.job_id,
                {
                    "tenant": tenant,
                    "signature": signature,
                    "submitted_at": event.time,
                    "placed": False,
                    "resizes": 0,
                },
            )
        elif kind == "job_placed":
            job = self._jobs.get(event.job_id)
            if job is None:
                return
            if not job["placed"]:
                job["placed"] = True
                self.observe(
                    job["tenant"],
                    job["signature"],
                    "classical_pre_s",
                    event.time - job["submitted_at"],
                )
            if event.site and event.task_id:
                self._task_to_job[(event.site, event.task_id)] = event.job_id
        elif kind == "resize":
            job = self._jobs.get(event.job_id)
            if job is not None:
                job["resizes"] += 1
        elif kind in ("job_completed", "job_failed"):
            job = self._jobs.pop(event.job_id, None)
            if job is None:
                return
            tenant, signature = job["tenant"], job["signature"]
            self.observe(tenant, signature, "job_s", event.time - job["submitted_at"])
            self.observe(tenant, signature, "resize_churn", float(job["resizes"]))
            self._finish_job(tenant, signature)

    def _job_for(self, key: tuple[str, str]) -> dict[str, Any] | None:
        job_id = self._task_to_job.get(key)
        return None if job_id is None else self._jobs.get(job_id)

    def _on_task_event(self, event: Any, kind: str) -> None:
        key = (event.site, event.task_id)
        times = self._task_times.setdefault(key, {})
        if kind == "queued":
            times["queued"] = event.time
            return
        job = self._job_for(key)
        if kind == "running":
            queued_at = times.pop("queued", None)
            if job is not None and queued_at is not None:
                self.observe(
                    job["tenant"], job["signature"], "queue_wait_s",
                    event.time - queued_at,
                )
            times["running"] = event.time
        elif kind == "preempted":
            times.pop("running", None)
        elif kind in ("completed", "failed", "cancelled"):
            running_at = times.pop("running", None)
            if job is not None and running_at is not None:
                self.observe(
                    job["tenant"], job["signature"], "execute_s",
                    event.time - running_at,
                )
            self._task_times.pop(key, None)
            self._task_to_job.pop(key, None)

    # -- middleware-queue adapter -----------------------------------------

    def queue_listener(self):
        """A :meth:`MiddlewareQueue.add_transition_listener` callback
        feeding this store from daemon task transitions."""

        def on_transition(task: Any, old: Any, new: Any) -> None:
            state = getattr(new, "value", new)
            if state == "queued":
                tenant = task.metadata.get("tenant", task.user)
                self._queue_tasks[task.task_id] = (
                    tenant, program_signature(task.program)
                )
                return
            ident = self._queue_tasks.get(task.task_id)
            if ident is None:
                return
            tenant, signature = ident
            if state == "running":
                wait = task.wait_time()
                if wait is not None:
                    self.observe(tenant, signature, "queue_wait_s", wait)
            elif state in ("completed", "failed", "cancelled"):
                if task.started_at is not None and task.finished_at is not None:
                    self.observe(
                        tenant, signature, "execute_s",
                        task.finished_at - task.started_at,
                    )
                if task.finished_at is not None:
                    self.observe(
                        tenant, signature, "job_s",
                        task.finished_at - task.enqueued_at,
                    )
                self._finish_job(tenant, signature)
                self._queue_tasks.pop(task.task_id, None)

        return on_transition

    # -- queries -----------------------------------------------------------

    def get(self, tenant: str, signature: str) -> PhaseProfile:
        key = (tenant, signature)
        if key not in self._profiles:
            raise ObservabilityError(
                f"no profile for tenant {tenant!r} signature {signature!r}"
            )
        return self._profiles[key]

    def signatures(self) -> list[str]:
        """Distinct program signatures seen (across all tenants)."""
        return sorted({sig for _, sig in self._profiles})

    def keys(self) -> list[tuple[str, str]]:
        return sorted(self._profiles)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """JSON-able view keyed ``tenant|signature`` (the ``GET
        /profiles`` payload)."""
        return {
            f"{tenant}|{signature}": profile.to_dict()
            for (tenant, signature), profile in sorted(self._profiles.items())
        }

    def summary(self) -> dict[str, int]:
        """O(profiles) roll-up for ``broker.stats()``."""
        return {
            "keys": len(self._profiles),
            "signatures": len(self.signatures()),
            "jobs_profiled": sum(p.samples for p in self._profiles.values()),
            "live_jobs": len(self._jobs),
        }
