"""Grafana-style dashboards: named panels over TSDB queries.

A panel binds a measurement + aggregation + window; a dashboard
evaluates all panels at a point in time and renders a text table.
This is the admin's "track current and historical device status using
familiar tools" surface (paper §1).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from ..errors import ObservabilityError, TSDBError
from .tsdb import TimeSeriesDB

__all__ = ["Dashboard", "Panel", "render_trace_timeline"]


@dataclass(frozen=True)
class Panel:
    """One dashboard cell: an aggregation over a trailing window."""

    title: str
    measurement: str
    func: str = "last"
    window_seconds: float | None = 3600.0
    labels: Mapping[str, str] | None = None
    unit: str = ""

    def evaluate(self, tsdb: TimeSeriesDB, now: float) -> float:
        since = None if self.window_seconds is None else now - self.window_seconds
        try:
            return tsdb.aggregate(
                self.measurement, self.func, labels=self.labels, since=since, until=now
            )
        except TSDBError:
            return float("nan")


@dataclass
class Dashboard:
    """Named collection of panels."""

    title: str
    panels: list[Panel] = field(default_factory=list)

    def add_panel(self, panel: Panel) -> None:
        if any(p.title == panel.title for p in self.panels):
            raise ObservabilityError(f"panel {panel.title!r} already on dashboard")
        self.panels.append(panel)

    def evaluate(self, tsdb: TimeSeriesDB, now: float) -> dict[str, float]:
        return {panel.title: panel.evaluate(tsdb, now) for panel in self.panels}

    def render_text(self, tsdb: TimeSeriesDB, now: float) -> str:
        """Plain-text rendering (the terminal-Grafana of this testbed)."""
        values = self.evaluate(tsdb, now)
        width = max((len(t) for t in values), default=10)
        lines = [f"== {self.title} (t={now:.0f}s) =="]
        for panel in self.panels:
            value = values[panel.title]
            shown = "n/a" if value != value else f"{value:.4g}{panel.unit}"
            lines.append(f"  {panel.title:<{width}}  {shown}")
        return "\n".join(lines)

    @classmethod
    def qpu_overview(cls, device_label: str) -> "Dashboard":
        """The default QPU health dashboard shipped with the stack."""
        labels = {"device": device_label}
        dash = cls(title=f"QPU overview: {device_label}")
        for panel in (
            Panel("fidelity", "qpu_fidelity_proxy", "last", None, labels),
            Panel("fidelity 1h min", "qpu_fidelity_proxy", "min", 3600.0, labels),
            Panel("online", "qpu_online", "last", None, labels),
            Panel("queue length", "qpu_queue_length", "last", None, labels),
            Panel("shots/s (1h)", "qpu_shots_served_total", "rate", 3600.0, labels),
            Panel("tasks done", "qpu_tasks_completed_total", "last", None, labels),
            Panel("busy seconds", "qpu_busy_seconds_total", "last", None, labels),
            Panel("eps detection", "qpu_calibration_detection_epsilon", "last", None, labels),
        ):
            dash.add_panel(panel)
        return dash


def render_trace_timeline(tracer, trace_id: str, width: int = 48) -> str:
    """Text timeline of one job's span tree (the terminal-Jaeger view).

    Each line is one span, indented by tree depth, with a proportional
    bar over the trace's simulated time range and the per-stage
    duration.  Spans on the critical path are marked ``*``.  Open spans
    render as running to the end of the range.
    """
    tree = tracer.span_tree(trace_id)
    critical = {s.span_id for s in tracer.critical_path(trace_id)}
    spans_flat: list[tuple[int, object]] = []

    def walk(node, depth: int) -> None:
        spans_flat.append((depth, node["span"]))
        for child in sorted(node["children"], key=lambda n: (n["span"].start, n["span"].span_id)):
            walk(child, depth + 1)

    walk(tree, 0)
    t0 = tree["span"].start
    t1 = max(
        (s.end for _, s in spans_flat if s.end is not None), default=t0
    )
    horizon = max(t1 - t0, 1e-9)
    label_width = max(len(s.name) + 2 * d for d, s in spans_flat) + 2
    lines = [f"== trace {trace_id} ({t1 - t0:.3f}s simulated) =="]
    for depth, span in spans_flat:
        end = span.end if span.end is not None else t1
        lo = int((span.start - t0) / horizon * width)
        hi = max(int((end - t0) / horizon * width), lo + 1)
        bar = " " * lo + "█" * (hi - lo) + " " * (width - hi)
        mark = "*" if span.span_id in critical else " "
        label = "  " * depth + span.name
        dur = "..." if span.end is None else f"{span.duration:.3f}s"
        status = "" if span.status == "ok" else f" [{span.status}]"
        lines.append(f" {mark}{label:<{label_width}}|{bar}| {dur}{status}")
    return "\n".join(lines)
