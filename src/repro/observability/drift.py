"""Calibration-drift detectors.

The paper's future-work item made concrete (§4: "extending beyond
basic telemetry toward per-job metadata and automated drift detection
would further improve system reliability").  Two standard online
change detectors over a telemetry series:

* :class:`EwmaDetector` — exponentially weighted moving average with a
  control band; robust to noise, detects sustained drift,
* :class:`CusumDetector` — cumulative-sum test; faster on abrupt
  changes (the jump events in :class:`~repro.qpu.calibration.DriftModel`).

Both consume points one at a time (online), so the scraper can feed
them live; both report the detection time for the latency experiment
(C6 in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ObservabilityError

__all__ = ["CusumDetector", "DriftDetector", "EwmaDetector"]


@dataclass
class Detection:
    """One detected drift event."""

    time: float
    value: float
    statistic: float


class DriftDetector:
    """Base online detector: feed points, collect detections."""

    def __init__(self) -> None:
        self.detections: list[Detection] = []
        self._armed = True

    def update(self, time: float, value: float) -> bool:
        """Feed one point; returns True if drift is signalled at this point."""
        raise NotImplementedError

    def reset(self) -> None:
        """Re-arm after maintenance/recalibration."""
        self._armed = True

    def first_detection_after(self, t0: float) -> float | None:
        for det in self.detections:
            if det.time >= t0:
                return det.time
        return None


class EwmaDetector(DriftDetector):
    """EWMA control chart, one-sided (drift = value falling).

    Signal when the smoothed value falls below ``baseline - k * sigma``.
    Baseline and sigma are learned from the first ``warmup`` points.
    """

    def __init__(self, alpha: float = 0.2, k: float = 4.0, warmup: int = 10) -> None:
        super().__init__()
        if not (0 < alpha <= 1):
            raise ObservabilityError(f"alpha must be in (0,1], got {alpha}")
        if warmup < 2:
            raise ObservabilityError("warmup must be >= 2")
        self.alpha = alpha
        self.k = k
        self.warmup = warmup
        self._ewma: float | None = None
        self._warm: list[float] = []
        self._baseline = 0.0
        self._sigma = 0.0

    def update(self, time: float, value: float) -> bool:
        if len(self._warm) < self.warmup:
            self._warm.append(value)
            if len(self._warm) == self.warmup:
                arr = np.asarray(self._warm)
                self._baseline = float(arr.mean())
                # sigma floor avoids zero-variance warmups triggering on noise
                self._sigma = max(float(arr.std()), 1e-4)
                self._ewma = self._baseline
            return False
        assert self._ewma is not None
        self._ewma = self.alpha * value + (1 - self.alpha) * self._ewma
        # EWMA variance correction factor
        sigma_ewma = self._sigma * np.sqrt(self.alpha / (2 - self.alpha))
        threshold = self._baseline - self.k * sigma_ewma
        if self._armed and self._ewma < threshold:
            self.detections.append(Detection(time, value, self._ewma))
            self._armed = False
            return True
        if not self._armed and self._ewma >= self._baseline - sigma_ewma:
            self._armed = True  # recovered; re-arm automatically
        return False


class CusumDetector(DriftDetector):
    """One-sided CUSUM for downward shifts.

    S_t = max(0, S_{t-1} + (baseline - x_t - slack)); signal when
    S_t > h.  Baseline learned over ``warmup`` points; ``slack`` and
    ``h`` in units of the learned sigma.
    """

    def __init__(self, slack: float = 0.5, h: float = 8.0, warmup: int = 10) -> None:
        super().__init__()
        if warmup < 2:
            raise ObservabilityError("warmup must be >= 2")
        self.slack = slack
        self.h = h
        self.warmup = warmup
        self._warm: list[float] = []
        self._baseline = 0.0
        self._sigma = 0.0
        self._s = 0.0

    def update(self, time: float, value: float) -> bool:
        if len(self._warm) < self.warmup:
            self._warm.append(value)
            if len(self._warm) == self.warmup:
                arr = np.asarray(self._warm)
                self._baseline = float(arr.mean())
                self._sigma = max(float(arr.std()), 1e-4)
            return False
        z = (self._baseline - value) / self._sigma  # positive when degraded
        self._s = max(0.0, self._s + z - self.slack)
        if self._armed and self._s > self.h:
            self.detections.append(Detection(time, value, self._s))
            self._armed = False
            return True
        if not self._armed and self._s == 0.0:
            self._armed = True
        return False

    def reset(self) -> None:
        super().reset()
        self._s = 0.0
