"""Prometheus text exposition format renderer.

Output matches the format scraped by a real Prometheus server::

    # HELP qpu_fidelity_proxy Device health score
    # TYPE qpu_fidelity_proxy gauge
    qpu_fidelity_proxy{device="fresnel"} 0.98

so the daemon's ``/metrics`` endpoint returns drop-in compatible text
(paper §3.6: "Using such standard tools makes it easy to integrate the
QPU metrics into existing observability stacks at the data center").
"""

from __future__ import annotations

import math

from .metrics import MetricRegistry

__all__ = ["render_exposition"]


def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    # coerce first: numpy scalars repr as "np.float64(...)" otherwise
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


#: gauge encoding of alert states in the exposition output
_ALERT_STATE_VALUES = {"inactive": 0, "pending": 1, "firing": 2}


def render_exposition(registry: MetricRegistry, alerts=None, slo=None) -> str:
    """Render the whole registry in exposition format.

    ``alerts`` (an :class:`~repro.observability.alerts.AlertManager`)
    adds an ``alert_state`` gauge per rule (0=inactive, 1=pending,
    2=firing); ``slo`` (an :class:`~repro.observability.slo.SLOTracker`)
    adds ``slo_burn_rate`` / ``slo_error_budget_remaining`` gauges from
    its last evaluation.
    """
    lines: list[str] = []
    for instrument in registry.instruments():
        if instrument.help_text:
            lines.append(f"# HELP {instrument.name} {instrument.help_text}")
        lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        for suffix, labels, value in instrument.samples():
            lines.append(
                f"{instrument.name}{suffix}{_format_labels(labels)} {_format_value(value)}"
            )
    if alerts is not None:
        lines.append("# HELP alert_state Alert rule state (0=inactive, 1=pending, 2=firing)")
        lines.append("# TYPE alert_state gauge")
        for name in alerts.names():
            alert = alerts.get(name)
            labels = {"rule": name, "severity": alert.rule.severity}
            value = _ALERT_STATE_VALUES[alert.state.value]
            lines.append(f"alert_state{_format_labels(labels)} {_format_value(value)}")
    if slo is not None and slo.last_results:
        lines.append("# HELP slo_burn_rate Min multi-window error-budget burn rate")
        lines.append("# TYPE slo_burn_rate gauge")
        for name in sorted(slo.last_results):
            value = slo.last_results[name]["burn_rate"]
            lines.append(
                f"slo_burn_rate{_format_labels({'slo': name})} {_format_value(value)}"
            )
        lines.append(
            "# HELP slo_error_budget_remaining Long-window error budget left (1=untouched, <0=overdrawn)"
        )
        lines.append("# TYPE slo_error_budget_remaining gauge")
        for name in sorted(slo.last_results):
            value = slo.last_results[name]["error_budget_remaining"]
            lines.append(
                f"slo_error_budget_remaining{_format_labels({'slo': name})} "
                f"{_format_value(value)}"
            )
    return "\n".join(lines) + "\n"
