"""Prometheus text exposition format renderer.

Output matches the format scraped by a real Prometheus server::

    # HELP qpu_fidelity_proxy Device health score
    # TYPE qpu_fidelity_proxy gauge
    qpu_fidelity_proxy{device="fresnel"} 0.98

so the daemon's ``/metrics`` endpoint returns drop-in compatible text
(paper §3.6: "Using such standard tools makes it easy to integrate the
QPU metrics into existing observability stacks at the data center").
"""

from __future__ import annotations

import math

from .metrics import MetricRegistry

__all__ = ["render_exposition"]


def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    # coerce first: numpy scalars repr as "np.float64(...)" otherwise
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_exposition(registry: MetricRegistry) -> str:
    """Render the whole registry in exposition format."""
    lines: list[str] = []
    for instrument in registry.instruments():
        if instrument.help_text:
            lines.append(f"# HELP {instrument.name} {instrument.help_text}")
        lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        for suffix, labels, value in instrument.samples():
            lines.append(
                f"{instrument.name}{suffix}{_format_labels(labels)} {_format_value(value)}"
            )
    return "\n".join(lines) + "\n"
