"""Analysis helpers for the benchmark harness: statistics + tables."""

from .stats import bootstrap_ci, summary_stats
from .tables import format_table, markdown_table

__all__ = ["bootstrap_ci", "format_table", "markdown_table", "summary_stats"]
