"""Analysis: bench statistics/tables + the archlint static analyzer.

``python -m repro.analysis <paths>`` runs archlint — the AST-based
architecture-invariant analyzer (see :mod:`repro.analysis.engine` and
the rule catalog in README "Static analysis")."""

from .baseline import load_baseline, write_baseline
from .engine import Engine, FileContext, Finding, Report, Rule
from .rules import default_rules
from .stats import bootstrap_ci, summary_stats
from .tables import format_table, markdown_table

__all__ = [
    "Engine",
    "FileContext",
    "Finding",
    "Report",
    "Rule",
    "bootstrap_ci",
    "default_rules",
    "format_table",
    "load_baseline",
    "markdown_table",
    "summary_stats",
    "write_baseline",
]
