"""``python -m repro.analysis`` — run archlint over the tree.

Usage::

    PYTHONPATH=src python -m repro.analysis src benchmarks \
        --baseline archlint_baseline.json --json archlint_report.json

Exit status 0 when every finding is suppressed or baselined, 1 when
anything new surfaced, 2 on usage errors.  ``--write-baseline``
records the current findings as the new baseline (use sparingly: the
committed baseline is pinned by tests/analysis/test_baseline.py, so
growing it is a reviewed decision, not a side effect).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .baseline import load_baseline, write_baseline
from .engine import Engine
from .rules import default_rules

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="archlint: AST-based architecture-invariant analyzer",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files/directories to scan (default: src)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON of grandfathered findings "
        "(default: archlint_baseline.json next to the scan root, "
        "when present)",
    )
    parser.add_argument(
        "--json",
        dest="json_out",
        default=None,
        help="also write the full report as JSON to this path",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the text report (summary line only)",
    )
    args = parser.parse_args(argv)

    root = Path.cwd()
    baseline_path = args.baseline
    if baseline_path is None:
        candidate = root / "archlint_baseline.json"
        baseline_path = str(candidate) if candidate.exists() else None

    engine = Engine(default_rules(), root=root)
    baseline = load_baseline(baseline_path) if baseline_path else set()
    report = engine.run(args.paths, baseline=baseline)

    if args.write_baseline:
        target = baseline_path or str(root / "archlint_baseline.json")
        count = write_baseline(target, report.findings + report.baselined)
        print(f"archlint: wrote {count} baseline entr(ies) to {target}")
        return 0

    if args.json_out:
        Path(args.json_out).write_text(json.dumps(report.to_dict(), indent=2) + "\n", encoding="utf-8")

    text = report.render_text()
    print(text.splitlines()[-1] if args.quiet else text)
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
