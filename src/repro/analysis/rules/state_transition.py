"""state-transition: job/task state moves only through blessed points.

PR 4 made broker and malleable job tables state-indexed: ``_set_state``
moves the record between per-state dicts as it flips ``job.state``.  A
direct ``job.state = ...`` write anywhere else leaves the job filed
under its old state — reconcile then sweeps a terminal job forever (or
never sees a live one), and nothing crashes.  The daemon queue's
:class:`QueuedTask` guards itself with a ``__setattr__`` transition
hook and the cluster's :class:`Job` has ``transition()``, so their own
modules are blessed; everyone else goes through the API.
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Rule

__all__ = ["StateTransitionRule"]

#: directories whose ``.state =`` writes this rule polices
STATE_SCOPED_DIRS = ("federation/", "daemon/", "cluster/")

#: arch_path -> function names allowed to assign ``.state`` there
#: (``None`` = the whole module is a blessed transition owner)
BLESSED: dict[str, frozenset[str] | None] = {
    # the single indexed-table transition points (PR 4)
    "federation/broker.py": frozenset({"_set_state"}),
    "federation/malleable.py": frozenset({"_set_state"}),
    # QueuedTask.__setattr__ maintains the queued-count index on every
    # assignment, so the queue machinery itself is safe by construction
    "daemon/queue.py": None,
    "daemon/scheduler.py": None,
    # cluster jobs route through Job.transition(); nodes own their enum
    "cluster/job.py": frozenset({"__init__", "transition"}),
    "cluster/node.py": None,
}


class StateTransitionRule(Rule):
    id = "state-transition"
    description = (
        "job/task .state assignments outside the blessed _set_state "
        "transition points corrupt the state-indexed tables"
    )
    interests = (ast.Assign, ast.AnnAssign, ast.AugAssign)

    def visit(self, ctx: FileContext, node: ast.AST) -> None:
        if not ctx.arch_path.startswith(STATE_SCOPED_DIRS):
            return
        targets: list[ast.AST]
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        else:
            targets = [node.target]  # type: ignore[attr-defined]
        hits = [t for t in targets if isinstance(t, ast.Attribute) and t.attr == "state"]
        if not hits:
            return
        allowed = BLESSED.get(ctx.arch_path, frozenset())
        if allowed is None:
            return  # whole module blessed
        func = ctx.enclosing_function()
        if func is not None and func.name in allowed:
            return
        for target in hits:
            owner = ast.unparse(target.value)
            self.emit(
                ctx,
                node,
                f"direct state write {owner}.state = ... outside a "
                "blessed transition point — route through _set_state "
                "(or the owning object's transition API) so the "
                "state-indexed tables stay consistent",
            )
