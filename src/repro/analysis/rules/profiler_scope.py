"""profiler-scope: every manifest-listed hot path opens its scope.

PR 8's continuous-profiling plane only answers "what got slow" if the
hot paths actually open their scopes — a refactor that splits
``reconcile`` and forgets the ``with profiler.scope(...)`` silently
blinds the flamegraphs, the C6 walltime ratio gates, and the SLO
burn-rate inputs that are calibrated against them.  ``HOT_PATHS`` is
the manifest: (file, qualified function, scope name).  The rule checks
each listed function still exists and somewhere in its body opens the
named scope — via ``with <x>.scope("name")`` or the simulator's paired
``<x>.push("name")`` form.  Manifest drift (a listed function that no
longer exists) is a finding too: stale manifests are how contracts rot.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from ..engine import FileContext, Rule

__all__ = ["ProfilerScopeRule", "HOT_PATHS"]

#: (arch_path, qualified name, scope-name literal) — one entry per
#: hot path the profiling plane promises to cover (see ROADMAP PR 8)
HOT_PATHS: tuple[tuple[str, str, str], ...] = (
    ("simkernel/process.py", "Simulator.step", "sim.step"),
    ("simkernel/process.py", "Simulator.step_batch", "sim.step"),
    ("federation/broker.py", "FederationBroker.reconcile", "broker.reconcile"),
    ("federation/broker.py", "FederationBroker._reconcile", "malleable.tick"),
    ("federation/broker.py", "FederationBroker._choose_site", "algorithm.schedule"),
    ("daemon/scheduler.py", "SecondLevelScheduler._select", "scheduler.select"),
    ("observability/scrape.py", "Scraper.scrape_once", "tsdb.flush"),
)


def _opens_scope(func: ast.AST, scope_name: str) -> bool:
    """True if the function body opens ``scope_name`` via a
    ``with <x>.scope("...")`` item or a ``<x>.push("...")`` call."""
    for node in ast.walk(func):
        if isinstance(node, ast.withitem):
            call = node.context_expr
            if (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == "scope"
                and call.args
                and isinstance(call.args[0], ast.Constant)
                and call.args[0].value == scope_name
            ):
                return True
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "push"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value == scope_name
        ):
            return True
    return False


class ProfilerScopeRule(Rule):
    id = "profiler-scope"
    description = (
        "hot-path functions named in the manifest must open their "
        "Profiler scope (with profiler.scope(...) / push)"
    )
    interests = (ast.FunctionDef, ast.AsyncFunctionDef)

    def __init__(self, manifest: Iterable[tuple[str, str, str]] | None = None) -> None:
        super().__init__()
        self.manifest = tuple(HOT_PATHS if manifest is None else manifest)
        self._seen: set[tuple[str, str]] = set()

    def visit(self, ctx: FileContext, node: ast.AST) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        qualname = ctx.qualname(node)
        for arch_path, target, scope_name in self.manifest:
            if ctx.arch_path != arch_path or qualname != target:
                continue
            self._seen.add((arch_path, target))
            if not _opens_scope(node, scope_name):
                self.emit(
                    ctx,
                    node,
                    f"hot path {target} must open profiler scope "
                    f"{scope_name!r} (with profiler.scope(...) guarded "
                    "by the usual `if profiler is None` fast path) — "
                    "the flamegraphs and walltime CI gates depend on it",
                )

    def finalize(self) -> None:
        for arch_path, target, scope_name in self.manifest:
            if (arch_path, target) not in self._seen:
                self.emit_at(
                    arch_path,
                    1,
                    f"hot-path manifest drift: {target} (scope "
                    f"{scope_name!r}) not found in {arch_path} — move "
                    "the manifest entry with the refactor or re-open "
                    "the scope in the new location",
                )
