"""no-direct-metrics: counters derive from bus subscriptions, not calls.

PR 6 deleted every ``record_*`` call site: :class:`FederationMetrics`
folds its counters and stage-latency histograms over the lifecycle
bus, so a resurrected direct ``metrics.record_x(...)`` call would
double-count under push delivery and drift from the traced/batched
flavors.  New measurements are new *event kinds* (declare them in
``EVENT_SCHEMAS``) or ``observe_*`` snapshot refreshes — never a
``record_*`` imperative call outside ``federation/metrics.py``.
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Rule

__all__ = ["NoDirectMetricsRule"]


class NoDirectMetricsRule(Rule):
    id = "no-direct-metrics"
    description = (
        "record_* metric calls outside federation/metrics.py are banned "
        "— publish an event and let the bus subscription count it"
    )
    interests = (ast.Call,)

    def visit(self, ctx: FileContext, node: ast.AST) -> None:
        assert isinstance(node, ast.Call)
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if not func.attr.startswith("record_"):
            return
        in_federation = ctx.arch_path.startswith("federation/") and ctx.arch_path != "federation/metrics.py"
        receiver = ast.unparse(func.value)
        if in_federation or "metrics" in receiver.lower():
            self.emit(
                ctx,
                node,
                f"direct metrics call {receiver}.{func.attr}(...) — "
                "counters derive from LifecycleBus subscriptions "
                "(federation/metrics.py); publish an event instead",
            )
