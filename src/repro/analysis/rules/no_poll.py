"""no-poll: the broker's reconcile paths must not resurrect polling.

PR 5 replaced the per-job/per-unit ``task_status`` sweep with the
:class:`~repro.federation.events.LifecycleBus` push plane — sites
publish transitions, the refresh paths consume what was pushed.  A
reintroduced poll call site costs O(live placements) daemon round trips
per tick and silently diverges from the event-driven flavors the C6
bench holds bit-identical.  The one sanctioned exception is the legacy
non-push fallback kept for brokers that never called
``attach_events()``; those sites carry inline suppressions with that
justification.
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Rule

__all__ = ["NoPollRule"]

#: the reconcile-path modules where a task_status call means polling
POLL_SCOPED_FILES = (
    "federation/broker.py",
    "federation/malleable.py",
)


class NoPollRule(Rule):
    id = "no-poll"
    description = (
        "broker/malleable reconcile paths consume pushed lifecycle "
        "events — task_status polling is banned there"
    )
    interests = (ast.Call,)

    def visit(self, ctx: FileContext, node: ast.AST) -> None:
        if ctx.arch_path not in POLL_SCOPED_FILES:
            return
        assert isinstance(node, ast.Call)
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "task_status":
            self.emit(
                ctx,
                node,
                "task_status poll in a reconcile path — task transitions "
                "arrive on the LifecycleBus (attach_events); polling "
                "belongs only behind the legacy non-push fallback",
            )
