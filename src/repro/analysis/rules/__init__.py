"""The archlint rule suite: one module per architecture invariant."""

from .bus_schema import BusSchemaRule
from .determinism import SimDeterminismRule
from .layering import Contract, LayeringRule
from .no_direct_metrics import NoDirectMetricsRule
from .no_poll import NoPollRule
from .profiler_scope import HOT_PATHS, ProfilerScopeRule
from .state_transition import StateTransitionRule

__all__ = [
    "BusSchemaRule",
    "Contract",
    "HOT_PATHS",
    "LayeringRule",
    "NoDirectMetricsRule",
    "NoPollRule",
    "ProfilerScopeRule",
    "SimDeterminismRule",
    "default_rules",
]


def default_rules():
    """Fresh instances of every shipped rule (rules hold per-run state,
    so each Engine gets its own set)."""
    return [
        SimDeterminismRule(),
        NoPollRule(),
        NoDirectMetricsRule(),
        StateTransitionRule(),
        BusSchemaRule(),
        LayeringRule(),
        ProfilerScopeRule(),
    ]
