"""layering: the package import graph honors its contracts, acyclically.

The stack is layered: ``simkernel`` at the bottom knows nothing of what
runs on it; ``spec`` is a leaf every door can consume; ``observability``
watches the daemon without ever importing it.  Those contracts are what
keep the ROADMAP's sharded-broker arc tractable — a shard must be able
to load the sim core and the spec without dragging in the whole
federation.  This rule records every ``repro``-internal import edge
(noting whether it is *deferred* — inside a function body or a
``TYPE_CHECKING`` block, the sanctioned lazy escape hatch), checks the
per-package contracts, and rejects any cycle in the module-import-time
package graph.
"""

from __future__ import annotations

import ast
from collections.abc import Mapping
from dataclasses import dataclass

from ..engine import FileContext, Rule

__all__ = ["LayeringRule", "DEFAULT_CONTRACTS", "Contract"]


@dataclass(frozen=True)
class Contract:
    """Allowed ``repro``-internal import targets for one package.

    ``include_deferred=True`` makes the contract absolute: even a lazy
    function-local import of anything outside ``allowed`` is a finding.
    ``False`` polices only module-import-time edges (``spec`` defers its
    per-backend adapters inside ``validate()`` by design).
    """

    allowed: frozenset[str]
    include_deferred: bool = False


#: package -> contract; packages not listed are bound only by the
#: cycle check.  "errors" is the universal leaf and always allowed.
DEFAULT_CONTRACTS: dict[str, Contract] = {
    # the sim core is the foundation: nothing above it, ever
    "simkernel": Contract(frozenset(), include_deferred=True),
    # the declarative submission surface is a leaf at import time;
    # validate() lazily pulls adapters (daemon priority classes,
    # algorithm registry) — that deferral is the sanctioned design
    "spec": Contract(frozenset()),
    # observability watches everything through buses and snapshots —
    # it never imports the daemon/federation it observes
    "observability": Contract(frozenset({"simkernel"}), include_deferred=True),
    # emulators are physics + numerics; qpu owns the device model
    "emulators": Contract(frozenset({"qpu"}), include_deferred=True),
    # accounting is ledger arithmetic over plain records
    "accounting": Contract(frozenset(), include_deferred=True),
    # the linter must stay a leaf so the code it checks can't break it
    "analysis": Contract(frozenset(), include_deferred=True),
}


@dataclass(frozen=True)
class _Edge:
    src: str
    dst: str
    deferred: bool
    file: str
    line: int


class LayeringRule(Rule):
    id = "layering"
    description = "repro package import graph: per-package contracts plus no cycles at module import time"
    interests = (ast.Import, ast.ImportFrom)

    def __init__(self, contracts: Mapping[str, Contract] | None = None) -> None:
        super().__init__()
        self.contracts = dict(DEFAULT_CONTRACTS if contracts is None else contracts)
        self._edges: list[_Edge] = []

    # -- walk ----------------------------------------------------------
    def visit(self, ctx: FileContext, node: ast.AST) -> None:
        if ctx.arch_path == ctx.display:
            return  # not inside a repro package tree
        src = ctx.arch_path.split("/")[0].removesuffix(".py")
        for dst, line in self._targets(ctx, node):
            if dst and dst != src:
                self._edges.append(_Edge(src, dst, ctx.deferred, ctx.display, line))

    def _targets(self, ctx: FileContext, node: ast.AST) -> list[tuple[str, int]]:
        out: list[tuple[str, int]] = []
        if isinstance(node, ast.Import):
            for alias in node.names:
                parts = alias.name.split(".")
                if parts[0] == "repro" and len(parts) > 1:
                    out.append((parts[1], node.lineno))
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                parts = (node.module or "").split(".")
                if parts[0] == "repro":
                    if len(parts) > 1:
                        out.append((parts[1], node.lineno))
                    else:  # from repro import x, y
                        out.extend((alias.name, node.lineno) for alias in node.names)
            else:
                # relative import: resolve against the file's location
                # inside the repro package
                anchor = ctx.arch_path.split("/")[:-1]
                up = node.level - 1
                if up > len(anchor):
                    return out  # escapes the package: not ours to judge
                base = anchor[: len(anchor) - up]
                module_parts = node.module.split(".") if node.module else []
                full = base + module_parts
                if full:
                    out.append((full[0].removesuffix(".py"), node.lineno))
                else:  # from .. import x  at the package root
                    out.extend((alias.name, node.lineno) for alias in node.names)
        return out

    # -- verdicts ------------------------------------------------------
    def finalize(self) -> None:
        self._check_contracts()
        self._check_cycles()

    def _check_contracts(self) -> None:
        for edge in self._edges:
            contract = self.contracts.get(edge.src)
            if contract is None:
                continue
            if edge.dst == "errors":
                continue
            if edge.deferred and not contract.include_deferred:
                continue
            if edge.dst in contract.allowed:
                continue
            how = "deferred import of" if edge.deferred else "imports"
            self.emit_at(
                edge.file,
                edge.line,
                f"layering contract: {edge.src!r} {how} {edge.dst!r} "
                f"(allowed: errors"
                + (
                    ", " + ", ".join(sorted(contract.allowed))
                    if contract.allowed
                    else ""
                )
                + ")",
            )

    def _check_cycles(self) -> None:
        graph: dict[str, set[str]] = {}
        where: dict[tuple[str, str], tuple[str, int]] = {}
        for edge in self._edges:
            if edge.deferred:
                continue  # lazy imports don't run at module import time
            graph.setdefault(edge.src, set()).add(edge.dst)
            where.setdefault((edge.src, edge.dst), (edge.file, edge.line))

        state: dict[str, int] = {}  # 0 visiting, 1 done
        stack: list[str] = []
        reported: set[frozenset[str]] = set()

        def dfs(pkg: str) -> None:
            state[pkg] = 0
            stack.append(pkg)
            for dst in sorted(graph.get(pkg, ())):
                if state.get(dst) == 1:
                    continue
                if state.get(dst) == 0:
                    cycle = stack[stack.index(dst):] + [dst]
                    key = frozenset(cycle)
                    if key not in reported:
                        reported.add(key)
                        file, line = where[(pkg, dst)]
                        self.emit_at(
                            file,
                            line,
                            "package import cycle at module import time: "
                            + " -> ".join(cycle)
                            + " — defer one edge (function-local or "
                            "TYPE_CHECKING import) or invert the "
                            "dependency",
                        )
                    continue
                dfs(dst)
            stack.pop()
            state[pkg] = 1

        for pkg in sorted(graph):
            if pkg not in state:
                dfs(pkg)
