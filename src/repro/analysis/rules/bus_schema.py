"""bus-schema: every published/subscribed event kind is declared.

The :class:`LifecycleBus` is stringly-typed by design — cheap, and the
dispatch path stays trivial — which means a typo'd kind
(``"job_compelted"``) publishes into the void and every subscriber
silently under-counts.  ``EVENT_SCHEMAS`` in ``federation/events.py``
is the declared vocabulary: this rule collects every literal kind at
``bus.publish(JobEvent(kind=...))`` / ``broker._publish("kind", ...)``
call sites, every ``subscribe(kinds=(...))`` filter, and every
``kind == "literal"`` branch in subscriber handlers, and fails on any
kind the registry doesn't declare — plus on payload keys the kind's
schema never listed.  Dynamic kinds (f-strings, variables) are outside
a static check's reach and are skipped.

The registry is read from the *AST* of ``federation/events.py`` during
the same walk (or injected via the constructor for fixture tests), so
the analysis package imports nothing above ``errors`` and cannot be
broken by the code it checks.
"""

from __future__ import annotations

import ast
from collections.abc import Mapping

from ..engine import FileContext, Rule

__all__ = ["BusSchemaRule"]

#: the module that must declare the registry
REGISTRY_FILE = "federation/events.py"

#: JobEvent constructor fields that are not payload keys
_EVENT_FIELDS = ("time", "kind", "job_id", "site", "task_id", "payload")

#: _publish(...) keyword args that map to JobEvent fields, not payload
_PUBLISH_FIELD_KWARGS = {"site", "task_id"}

#: directories whose ``kind == "..."`` comparisons are subscriber
#: handlers (elsewhere ``.kind`` means Decision.kind and the like)
_HANDLER_DIRS = ("federation/", "observability/")


def _kind_literals(node: ast.AST) -> list[tuple[str, int]] | None:
    """Literal kind strings (with lines) for an expression, or None if
    the expression is dynamic and unverifiable statically."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [(node.value, node.lineno)]
    if isinstance(node, ast.IfExp):
        body = _kind_literals(node.body)
        orelse = _kind_literals(node.orelse)
        if body is not None and orelse is not None:
            return body + orelse
    return None


def _str_elements(node: ast.AST) -> list[tuple[str, int]] | None:
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        out: list[tuple[str, int]] = []
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                out.append((element.value, element.lineno))
            else:
                return None
        return out
    return None


class BusSchemaRule(Rule):
    id = "bus-schema"
    description = (
        "published/subscribed event kinds and payload keys must match "
        "the EVENT_SCHEMAS registry in federation/events.py"
    )
    interests = (ast.Call, ast.Compare, ast.Assign, ast.AnnAssign)

    def __init__(self, schemas: Mapping[str, tuple[str, ...]] | None = None) -> None:
        super().__init__()
        self._injected = schemas is not None
        self._schemas: dict[str, tuple[str, ...]] = dict(schemas) if schemas else {}
        #: (file, line, kind, context) sites awaiting the registry
        self._kind_sites: list[tuple[str, int, str, str]] = []
        #: (file, line, kind, key) payload keys awaiting the registry
        self._payload_sites: list[tuple[str, int, str, str]] = []
        #: module-level tuple constants in the registry file
        self._symbols: dict[str, tuple[str, ...]] = {}

    # -- walk ----------------------------------------------------------
    def visit(self, ctx: FileContext, node: ast.AST) -> None:
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            if ctx.arch_path == REGISTRY_FILE and not self._injected:
                self._collect_registry(node)
            return
        if isinstance(node, ast.Compare):
            self._visit_compare(ctx, node)
            return
        assert isinstance(node, ast.Call)
        func = node.func
        if isinstance(func, ast.Name) and func.id == "JobEvent":
            self._visit_job_event(ctx, node)
        elif isinstance(func, ast.Attribute) and func.attr == "_publish":
            self._visit_publish_helper(ctx, node)
        elif isinstance(func, ast.Attribute) and func.attr == "subscribe":
            self._visit_subscribe(ctx, node)

    def _collect_registry(self, node: ast.Assign | ast.AnnAssign) -> None:
        if isinstance(node, ast.Assign):
            if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
                return
            name, value = node.targets[0].id, node.value
        else:
            if not isinstance(node.target, ast.Name):
                return
            name, value = node.target.id, node.value
        if value is None:
            return
        elements = _str_elements(value)
        if elements is not None:
            self._symbols[name] = tuple(v for v, _ in elements)
            return
        if name != "EVENT_SCHEMAS" or not isinstance(value, ast.Dict):
            return
        for key, entry in zip(value.keys, value.values, strict=True):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                continue
            keys = _str_elements(entry)
            if keys is not None:
                self._schemas[key.value] = tuple(v for v, _ in keys)
            elif isinstance(entry, ast.Name) and entry.id in self._symbols:
                self._schemas[key.value] = self._symbols[entry.id]
            else:
                self._schemas[key.value] = ()

    def _visit_job_event(self, ctx: FileContext, node: ast.Call) -> None:
        kind_expr: ast.AST | None = None
        payload_expr: ast.AST | None = None
        for idx, arg in enumerate(node.args):
            if idx == 1:
                kind_expr = arg
            elif idx == 5:
                payload_expr = arg
        for kw in node.keywords:
            if kw.arg == "kind":
                kind_expr = kw.value
            elif kw.arg == "payload":
                payload_expr = kw.value
        kinds = _kind_literals(kind_expr) if kind_expr is not None else None
        if kinds is None:
            return  # dynamic kind: statically unverifiable
        for kind, line in kinds:
            self._kind_sites.append((ctx.display, line, kind, "JobEvent(kind=...)"))
        if isinstance(payload_expr, ast.Dict):
            for key in payload_expr.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    for kind, _ in kinds:
                        self._payload_sites.append((ctx.display, key.lineno, kind, key.value))

    def _visit_publish_helper(self, ctx: FileContext, node: ast.Call) -> None:
        if not node.args:
            return
        kinds = _kind_literals(node.args[0])
        if kinds is None:
            return
        for kind, line in kinds:
            self._kind_sites.append((ctx.display, line, kind, "_publish(...)"))
        for kw in node.keywords:
            if kw.arg is None or kw.arg in _PUBLISH_FIELD_KWARGS:
                continue
            for kind, _ in kinds:
                self._payload_sites.append((ctx.display, kw.value.lineno, kind, kw.arg))

    def _visit_subscribe(self, ctx: FileContext, node: ast.Call) -> None:
        for kw in node.keywords:
            if kw.arg != "kinds":
                continue
            elements = _str_elements(kw.value)
            if elements is None:
                continue
            for kind, line in elements:
                self._kind_sites.append((ctx.display, line, kind, "subscribe(kinds=...)"))

    def _visit_compare(self, ctx: FileContext, node: ast.Compare) -> None:
        if not ctx.arch_path.startswith(_HANDLER_DIRS):
            return
        left = node.left
        if (
            isinstance(left, ast.Attribute)
            and left.attr == "kind"
            and isinstance(left.value, ast.Name)
            and left.value.id == "event"
        ):
            is_kind = True
        elif isinstance(left, ast.Name) and left.id == "kind":
            # a bare `kind` is only an *event* kind when the enclosing
            # handler bound it from event.kind — resize actions and
            # Decision.kind locals share the name but not the registry
            is_kind = self._binds_event_kind(ctx.enclosing_function())
        else:
            is_kind = False
        if not is_kind:
            return
        if not all(isinstance(op, (ast.Eq, ast.NotEq, ast.In, ast.NotIn)) for op in node.ops):
            return
        for comparator in node.comparators:
            literals = (
                [(comparator.value, comparator.lineno)]
                if isinstance(comparator, ast.Constant)
                and isinstance(comparator.value, str)
                else _str_elements(comparator)
            )
            if literals is None:
                continue
            for kind, line in literals:
                self._kind_sites.append((ctx.display, line, kind, "subscriber handler"))

    @staticmethod
    def _binds_event_kind(func: ast.AST | None) -> bool:
        if func is None:
            return False
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "kind"
                    for t in node.targets
                )
                and isinstance(node.value, ast.Attribute)
                and node.value.attr == "kind"
                and isinstance(node.value.value, ast.Name)
                and node.value.value.id == "event"
            ):
                return True
        return False

    # -- verdicts ------------------------------------------------------
    def finalize(self) -> None:
        if not self._schemas:
            if self._kind_sites:
                file, line, _, _ = self._kind_sites[0]
                self.emit_at(
                    file,
                    line,
                    "event kinds are used but no EVENT_SCHEMAS registry "
                    f"was found in {REGISTRY_FILE} (is it in the scan "
                    "paths?)",
                )
            return
        for file, line, kind, context in self._kind_sites:
            if kind not in self._schemas:
                self.emit_at(
                    file,
                    line,
                    f"unknown event kind {kind!r} at {context} — declare "
                    f"it (and its payload keys) in EVENT_SCHEMAS "
                    f"({REGISTRY_FILE}) first",
                )
        for file, line, kind, key in self._payload_sites:
            allowed = self._schemas.get(kind)
            if allowed is None:
                continue  # unknown kind already reported above
            if key not in allowed:
                self.emit_at(
                    file,
                    line,
                    f"payload key {key!r} not declared for event kind "
                    f"{kind!r} in EVENT_SCHEMAS — subscribers can't rely "
                    "on undeclared keys",
                )
