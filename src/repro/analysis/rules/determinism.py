"""sim-determinism: no wall clock, no global RNG in the sim plane.

Scheduling decisions replay bit-for-bit only because every timestamp
comes from the simulation clock and every random draw from a named,
seeded :class:`numpy.random.Generator` stream
(:mod:`repro.simkernel.rng`).  One stray ``time.time()`` or legacy
``np.random.rand()`` in the sim plane silently breaks the
bit-identical-scheduling guarantees the C6/C7 benches gate — and the
ROADMAP's sharded-broker arc multiplies that surface across shards.

Scope: ``simkernel/``, ``federation/``, ``scheduling/``, ``emulators/``.
The daemon/observability wall-clock edges (span wall fields, scope
profiler, scrape timing) are deliberately outside the scope — that is
the allowlist.  ``time.perf_counter`` is allowed everywhere: wall
*measurement* that never feeds a scheduling decision is the profiling
plane's sanctioned business.
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Rule

__all__ = ["SimDeterminismRule"]

#: package-relative directories forming the deterministic sim plane
SIM_SCOPED_DIRS = ("simkernel/", "federation/", "scheduling/", "emulators/")

#: wall-clock calls that leak host time into simulated decisions
_BANNED_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.localtime",
    "time.gmtime",
}

#: ``datetime``-flavoured wall clocks (matched on the trailing segments
#: so both ``datetime.now()`` and ``datetime.datetime.now()`` hit)
_BANNED_DATETIME_TAILS = (
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)

#: the only attributes of the legacy ``random`` module that don't touch
#: its hidden global state (seeded instances are fine)
_RANDOM_ALLOWED = {"Random", "SystemRandom", "getstate", "setstate"}

#: np.random attributes that construct explicit generators/seeds rather
#: than drawing from the legacy global RandomState
_NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
    "RandomState",  # explicit instance: seeded at construction
}


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for attribute chains rooted at a Name, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class SimDeterminismRule(Rule):
    id = "sim-determinism"
    description = (
        "sim-plane code must use the simulation clock and seeded "
        "Generator streams — no wall clock, no global RNG"
    )
    interests = (ast.Call, ast.ImportFrom)

    def _in_scope(self, ctx: FileContext) -> bool:
        return ctx.arch_path.startswith(SIM_SCOPED_DIRS)

    def visit(self, ctx: FileContext, node: ast.AST) -> None:
        if not self._in_scope(ctx):
            return
        if isinstance(node, ast.ImportFrom):
            self._check_import(ctx, node)
            return
        assert isinstance(node, ast.Call)
        dotted = _dotted(node.func)
        if dotted is None:
            return
        if dotted in _BANNED_CALLS:
            self.emit(
                ctx,
                node,
                f"wall clock {dotted}() in sim-scoped code — use the "
                "simulation clock (sim.now); wall measurement belongs to "
                "the profiling plane (perf_counter) or outside "
                f"{'/'.join(d.rstrip('/') for d in SIM_SCOPED_DIRS)}",
            )
            return
        if dotted.endswith(_BANNED_DATETIME_TAILS):
            self.emit(
                ctx,
                node,
                f"wall clock {dotted}() in sim-scoped code — simulated "
                "time comes from the clock, not the host calendar",
            )
            return
        if dotted.startswith("random."):
            tail = dotted.split(".", 1)[1]
            if tail.split(".")[0] not in _RANDOM_ALLOWED:
                self.emit(
                    ctx,
                    node,
                    f"global-state RNG {dotted}() in sim-scoped code — "
                    "draw from a named seeded stream "
                    "(simkernel.rng / random.Random(seed))",
                )
            return
        for prefix in ("np.random.", "numpy.random."):
            if dotted.startswith(prefix):
                tail = dotted[len(prefix):].split(".")[0]
                if tail not in _NP_RANDOM_ALLOWED:
                    self.emit(
                        ctx,
                        node,
                        f"legacy numpy global RNG {dotted}() in sim-scoped "
                        "code — use np.random.default_rng / a passed-in "
                        "Generator",
                    )
                return

    def _check_import(self, ctx: FileContext, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in ("time", "monotonic", "time_ns", "monotonic_ns"):
                    self.emit(
                        ctx,
                        node,
                        f"'from time import {alias.name}' in sim-scoped code "
                        "— wall clocks don't belong in the sim plane",
                    )
        elif node.module == "random":
            for alias in node.names:
                if alias.name not in _RANDOM_ALLOWED:
                    self.emit(
                        ctx,
                        node,
                        f"'from random import {alias.name}' in sim-scoped "
                        "code — global-state RNG breaks replay; use seeded "
                        "Generator streams",
                    )
