"""archlint engine: one AST walk per file, pluggable architecture rules.

Nine PRs of this reproduction accumulated load-bearing invariants —
deterministic simulation time, the push-only lifecycle plane, indexed
state-transition points, the bus event vocabulary, the package layering
and the profiler-scope contract — that equivalence tests only catch
*after* a regression lands.  archlint makes them machine-checked at
lint time: the :class:`Engine` parses every target file once, walks the
tree once (tracking lexical scope and ``TYPE_CHECKING`` blocks), and
dispatches each node to every registered :class:`Rule` that declared an
interest in its type.  Whole-program rules (layering, bus-schema)
accumulate during the walk and report from :meth:`Rule.finalize`.

Two escape hatches, both deliberately noisy:

* **inline suppressions** — ``# archlint: disable=<rule> -- <reason>``
  on the offending line (or a standalone comment on the line above).
  The justification is mandatory, mirroring ruff.toml's "no exemption
  without a comment" policy: a suppression without ``-- reason`` does
  not suppress anything and is itself reported.
* **a committed baseline** — grandfathered findings recorded by
  ``--write-baseline`` (see :mod:`repro.analysis.baseline`).  Baselined
  findings don't fail the run; *new* findings always do, and the test
  suite pins the committed baseline so it cannot silently grow.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable
from typing import Any

__all__ = [
    "Engine",
    "FileContext",
    "Finding",
    "Report",
    "Rule",
    "SUPPRESSION_RULE_ID",
]

#: rule id under which malformed / unknown suppression comments are
#: reported (they are findings like any other)
SUPPRESSION_RULE_ID = "suppression"

_SUPPRESS_RE = re.compile(r"#\s*archlint:\s*disable=([A-Za-z0-9_,\s-]+?)(?:\s*--\s*(.*?))?\s*$")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a concrete source location."""

    file: str  # posix path, as reported
    line: int
    rule: str
    message: str

    def fingerprint(self) -> tuple[str, str, str]:
        """Line-number-free identity used by the baseline (line numbers
        drift with unrelated edits; file/rule/message do not)."""
        return (self.file, self.rule, self.message)

    def to_dict(self) -> dict[str, Any]:
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class FileContext:
    """Everything a rule may want to know about the file being walked."""

    path: Path
    #: path as reported in findings (posix, relative to the scan cwd)
    display: str
    #: path relative to the ``repro`` package root when the file lives
    #: inside it (``federation/broker.py``), else same as ``display`` —
    #: rules scope themselves on this, so fixture trees under any
    #: ``.../repro/`` directory exercise them identically
    arch_path: str
    tree: ast.Module
    source: str
    lines: list[str] = field(default_factory=list)
    #: innermost-last stack of enclosing ClassDef/FunctionDef nodes,
    #: maintained by the engine during the walk
    scope: list[ast.AST] = field(default_factory=list)
    #: > 0 while walking inside an ``if TYPE_CHECKING:`` block
    type_checking: int = 0

    def enclosing_function(self) -> ast.AST | None:
        for node in reversed(self.scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return node
        return None

    def qualname(self, node: ast.AST | None = None) -> str:
        parts = [s.name for s in self.scope if hasattr(s, "name")]
        if node is not None and hasattr(node, "name"):
            parts.append(node.name)  # type: ignore[attr-defined]
        return ".".join(parts)

    @property
    def deferred(self) -> bool:
        """True where an import would not run at module import time
        (inside a function body or a ``TYPE_CHECKING`` block) — the
        sanctioned lazy escape hatch the layering rule tolerates."""
        return self.type_checking > 0 or self.enclosing_function() is not None


class Rule:
    """Base class: subclasses set ``id``/``description`` and receive
    every node whose type appears in ``interests`` during the single
    walk.  Findings are appended to :attr:`findings` (location-bearing
    ones during the walk, whole-program ones from :meth:`finalize`)."""

    id: str = ""
    description: str = ""
    #: AST node classes this rule wants to see (empty = none)
    interests: tuple[type, ...] = ()

    def __init__(self) -> None:
        self.findings: list[Finding] = []

    # -- hooks ---------------------------------------------------------
    def begin_file(self, ctx: FileContext) -> None:  # pragma: no cover
        pass

    def visit(self, ctx: FileContext, node: ast.AST) -> None:  # pragma: no cover
        pass

    def end_file(self, ctx: FileContext) -> None:  # pragma: no cover
        pass

    def finalize(self) -> None:
        """Called once after every file was walked; cross-file rules
        emit their findings here."""

    # -- helpers -------------------------------------------------------
    def emit(self, ctx: FileContext, node: ast.AST | int, message: str) -> None:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        self.findings.append(Finding(ctx.display, line, self.id, message))

    def emit_at(self, file: str, line: int, message: str) -> None:
        self.findings.append(Finding(file, line, self.id, message))


@dataclass
class Report:
    """Outcome of one engine run, JSON- and text-renderable."""

    findings: list[Finding]  # new (actionable) findings
    baselined: list[Finding]
    suppressed: list[Finding]
    stale_baseline: list[tuple[str, str, str]]
    files_scanned: int
    rule_ids: list[str]

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": 1,
            "files_scanned": self.files_scanned,
            "rules": self.rule_ids,
            "findings": [f.to_dict() for f in self.findings],
            "baselined": [f.to_dict() for f in self.baselined],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "stale_baseline": [list(fp) for fp in self.stale_baseline],
            "summary": {
                "new": len(self.findings),
                "baselined": len(self.baselined),
                "suppressed": len(self.suppressed),
                "ok": self.ok,
            },
        }

    def render_text(self) -> str:
        out: list[str] = []
        for finding in self.findings:
            out.append(finding.render())
        for finding in self.baselined:
            out.append(f"{finding.render()}  (baselined)")
        for fp in self.stale_baseline:
            out.append(f"note: baseline entry no longer found " f"(remove it): {fp[0]} [{fp[1]}] {fp[2]}")
        out.append(
            f"archlint: {len(self.findings)} finding(s) "
            f"({len(self.baselined)} baselined, "
            f"{len(self.suppressed)} suppressed) "
            f"across {self.files_scanned} file(s)"
        )
        return "\n".join(out)


def _arch_path(posix: str) -> str:
    """Path relative to the innermost ``repro/`` package directory, or
    the display path unchanged for files outside one."""
    marker = "/repro/"
    if posix.startswith("repro/"):
        return posix[len("repro/"):]
    idx = posix.rfind(marker)
    if idx >= 0:
        return posix[idx + len(marker):]
    return posix


def _is_type_checking_test(test: ast.AST) -> bool:
    names = {
        n.id if isinstance(n, ast.Name) else getattr(n, "attr", "")
        for n in ast.walk(test)
        if isinstance(n, (ast.Name, ast.Attribute))
    }
    return "TYPE_CHECKING" in names


class Engine:
    """Parses + walks each file once, dispatching to the rules."""

    def __init__(self, rules: Iterable[Rule], root: Path | None = None) -> None:
        self.rules = list(rules)
        self.root = Path(root) if root is not None else Path.cwd()
        self._by_interest: dict[type, list[Rule]] = {}
        for rule in self.rules:
            for node_type in rule.interests:
                self._by_interest.setdefault(node_type, []).append(rule)

    # -- discovery -----------------------------------------------------
    def discover(self, paths: Iterable[str | Path]) -> list[Path]:
        files: list[Path] = []
        for raw in paths:
            path = Path(raw)
            if not path.is_absolute():
                path = self.root / path
            if path.is_dir():
                files.extend(
                    p
                    for p in sorted(path.rglob("*.py"))
                    if "__pycache__" not in p.parts
                    and not any(part.startswith(".") for part in p.parts[1:])
                )
            elif path.suffix == ".py":
                files.append(path)
        # stable order, no duplicates
        seen: set[Path] = set()
        unique = []
        for f in files:
            if f not in seen:
                seen.add(f)
                unique.append(f)
        return unique

    # -- run -----------------------------------------------------------
    def run(
        self,
        paths: Iterable[str | Path],
        baseline: set[tuple[str, str, str]] | None = None,
    ) -> Report:
        files = self.discover(paths)
        suppress_notes: list[Finding] = []
        allow: dict[str, dict[int, set[str]]] = {}
        known_ids = {rule.id for rule in self.rules} | {SUPPRESSION_RULE_ID}

        for path in files:
            display = self._display(path)
            source = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source)
            except SyntaxError as err:
                suppress_notes.append(
                    Finding(
                        display,
                        err.lineno or 1,
                        SUPPRESSION_RULE_ID,
                        f"file does not parse: {err.msg}",
                    )
                )
                continue
            ctx = FileContext(
                path=path,
                display=display,
                arch_path=_arch_path(display),
                tree=tree,
                source=source,
                lines=source.splitlines(),
            )
            allow[display] = self._suppressions(ctx, known_ids, suppress_notes)
            for rule in self.rules:
                rule.begin_file(ctx)
            self._walk(ctx, tree)
            for rule in self.rules:
                rule.end_file(ctx)

        for rule in self.rules:
            rule.finalize()

        collected: list[Finding] = list(suppress_notes)
        for rule in self.rules:
            collected.extend(rule.findings)
        collected.sort(key=lambda f: (f.file, f.line, f.rule, f.message))

        active: list[Finding] = []
        suppressed: list[Finding] = []
        for finding in collected:
            if finding.rule in allow.get(finding.file, {}).get(finding.line, ()):
                suppressed.append(finding)
            else:
                active.append(finding)

        baseline = baseline or set()
        new = [f for f in active if f.fingerprint() not in baseline]
        baselined = [f for f in active if f.fingerprint() in baseline]
        matched = {f.fingerprint() for f in baselined}
        stale = sorted(baseline - matched)

        return Report(
            findings=new,
            baselined=baselined,
            suppressed=suppressed,
            stale_baseline=stale,
            files_scanned=len(files),
            rule_ids=sorted(r.id for r in self.rules),
        )

    # -- internals -----------------------------------------------------
    def _display(self, path: Path) -> str:
        try:
            return path.relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()

    def _suppressions(
        self,
        ctx: FileContext,
        known_ids: set[str],
        notes: list[Finding],
    ) -> dict[int, set[str]]:
        """Per-line rule ids disabled by ``# archlint: disable=`` comments.

        A suppression on a standalone comment line also covers the next
        line; one missing its ``-- reason`` suppresses nothing and is
        reported, enforcing the no-exemption-without-a-comment policy.
        """
        allow: dict[int, set[str]] = {}
        for lineno, text in enumerate(ctx.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
            reason = (match.group(2) or "").strip()
            if not reason:
                notes.append(
                    Finding(
                        ctx.display,
                        lineno,
                        SUPPRESSION_RULE_ID,
                        "suppression missing justification: write "
                        "'# archlint: disable=<rule> -- <reason>'",
                    )
                )
                continue
            unknown = ids - known_ids
            for rule_id in sorted(unknown):
                notes.append(
                    Finding(
                        ctx.display,
                        lineno,
                        SUPPRESSION_RULE_ID,
                        f"suppression names unknown rule {rule_id!r}",
                    )
                )
            ids &= known_ids
            if not ids:
                continue
            allow.setdefault(lineno, set()).update(ids)
            if text.lstrip().startswith("#"):
                allow.setdefault(lineno + 1, set()).update(ids)
        return allow

    def _walk(self, ctx: FileContext, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            scoped = isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            type_checked = isinstance(child, ast.If) and _is_type_checking_test(child.test)
            for rule in self._by_interest.get(type(child), ()):
                rule.visit(ctx, child)
            if scoped:
                ctx.scope.append(child)
            if type_checked:
                ctx.type_checking += 1
            self._walk(ctx, child)
            if type_checked:
                ctx.type_checking -= 1
            if scoped:
                ctx.scope.pop()
