"""Table rendering for benchmark output (paper-style rows)."""

from __future__ import annotations

from ..errors import ReproError

__all__ = ["format_table", "markdown_table"]


def _stringify(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(rows: list[dict], title: str = "") -> str:
    """Fixed-width text table from a list of uniform dicts."""
    if not rows:
        raise ReproError("no rows to format")
    columns = list(rows[0].keys())
    widths = {col: max(len(col), *(len(_stringify(r.get(col, ""))) for r in rows)) for col in columns}
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("  ".join("-" * widths[col] for col in columns))
    for row in rows:
        lines.append("  ".join(_stringify(row.get(col, "")).ljust(widths[col]) for col in columns))
    return "\n".join(lines)


def markdown_table(rows: list[dict], title: str = "") -> str:
    """GitHub-markdown table (for EXPERIMENTS.md)."""
    if not rows:
        raise ReproError("no rows to format")
    columns = list(rows[0].keys())
    lines = []
    if title:
        lines.append(f"**{title}**")
        lines.append("")
    lines.append("| " + " | ".join(columns) + " |")
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_stringify(row.get(col, "")) for col in columns) + " |")
    return "\n".join(lines)
