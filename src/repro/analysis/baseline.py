"""Committed-baseline support for archlint.

The baseline is a sorted JSON list of ``{file, rule, message}`` entries
— findings that predate a rule and were consciously grandfathered
instead of fixed.  CI runs with ``--baseline archlint_baseline.json``:
baselined findings don't fail the run, anything new does, and
``tests/analysis/test_baseline.py`` pins the committed file so the
baseline cannot grow without the diff saying so in two places.

Entries are line-number-free on purpose: unrelated edits move code, and
a baseline that churns on every edit stops being reviewable.
"""

from __future__ import annotations

import json
from pathlib import Path
from collections.abc import Iterable

from .engine import Finding

__all__ = ["load_baseline", "write_baseline"]

Fingerprint = tuple[str, str, str]


def load_baseline(path: str | Path) -> set[Fingerprint]:
    """Read a baseline file into the fingerprint set the engine takes.
    A missing file is an empty baseline, not an error."""
    path = Path(path)
    if not path.exists():
        return set()
    entries = json.loads(path.read_text(encoding="utf-8"))
    return {(entry["file"], entry["rule"], entry["message"]) for entry in entries}


def write_baseline(path: str | Path, findings: Iterable[Finding]) -> int:
    """Record ``findings`` as the new baseline; returns the entry count.
    Deduplicates by fingerprint and sorts so the file diffs cleanly."""
    fingerprints = sorted({f.fingerprint() for f in findings})
    entries = [{"file": file, "rule": rule, "message": message} for file, rule, message in fingerprints]
    Path(path).write_text(json.dumps(entries, indent=2) + "\n", encoding="utf-8")
    return len(entries)
