"""Statistics utilities for experiment reporting."""

from __future__ import annotations

import numpy as np

from ..errors import ReproError

__all__ = ["bootstrap_ci", "summary_stats"]


def summary_stats(values) -> dict[str, float]:
    """Mean / std / quantiles of a sample."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ReproError("cannot summarize an empty sample")
    return {
        "n": int(arr.size),
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        "min": float(arr.min()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "max": float(arr.max()),
    }


def bootstrap_ci(
    values,
    statistic=np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval, vectorized resampling."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ReproError("cannot bootstrap an empty sample")
    if not (0 < confidence < 1):
        raise ReproError("confidence must be in (0,1)")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    stats = statistic(arr[idx], axis=1)
    alpha = (1 - confidence) / 2
    lo, hi = np.percentile(stats, [100 * alpha, 100 * (1 - alpha)])
    return float(lo), float(hi)
