"""Emulator suite for the analog neutral-atom QPU.

Reimplementation of the role played by ``pasqal-io/emulators`` (paper
ref [5]): a ladder of backends trading accuracy for reach, all behind
one interface so the runtime can swap them for the QPU transparently
(paper §3.2):

* :class:`StateVectorEmulator` — exact dense evolution, small qubit
  counts ("run their program locally on their laptop"),
* :class:`MPSEmulator` — tensor-network (matrix-product-state) TEBD
  with a bond-dimension cap; the "large tensor network emulators" run
  on HPC nodes,
* ``MPSEmulator(max_bond_dim=1)`` — the paper's product-state trick
  (footnote 3): "it can be used for mocking the QPU in end-to-end
  tests",
* :class:`NoiseModel` — SPAM + amplitude/detuning fluctuation noise,
  shared with the QPU device model so emulator-vs-QPU discrepancies
  come only from calibration drift, exactly the failure mode the paper
  wants surfaced.
"""

from .base import EmulationResult, EmulatorBackend
from .faults import FaultInjectingBackend, FaultPolicy, ProfilingBackend
from .mps import MPSEmulator
from .noise import NoiseModel
from .resources import EMULATOR_CATALOG, EmulatorSpec, make_emulator
from .sampling import counts_from_samples, sample_bitstrings
from .statevector import StateVectorEmulator

__all__ = [
    "EMULATOR_CATALOG",
    "EmulationResult",
    "EmulatorBackend",
    "EmulatorSpec",
    "FaultInjectingBackend",
    "FaultPolicy",
    "ProfilingBackend",
    "MPSEmulator",
    "NoiseModel",
    "StateVectorEmulator",
    "counts_from_samples",
    "make_emulator",
    "sample_bitstrings",
]
