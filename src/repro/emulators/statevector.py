"""Dense state-vector emulator (EMU-SV analogue).

Numerically exact (up to Trotter error) evolution of the Rydberg
Hamiltonian using second-order Strang splitting:

    U(dt) ~= D(dt/2) * R(dt) * D(dt/2)

* ``D`` — the diagonal part (interactions + detuning): one elementwise
  complex phase over the 2^n amplitudes, with the interaction energies
  and per-state occupation counts precomputed once,
* ``R`` — the global drive: the same 2x2 rotation applied to every
  qubit axis (the single-qubit terms commute), implemented as n
  reshaped matmuls.

Everything in the inner loop is vectorized; the only Python loop is
over time steps and qubit axes (per the hpc-parallel guide: no
per-amplitude Python work).
"""

from __future__ import annotations

import numpy as np

from ..errors import EmulatorError
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import, breaks a cycle
    from ..qpu.hamiltonian import RydbergHamiltonian
from .base import EmulationResult, EmulatorBackend
from .noise import NoiseModel
from .sampling import counts_from_samples, sample_bitstrings

__all__ = ["StateVectorEmulator"]


class StateVectorEmulator(EmulatorBackend):
    """Exact dense emulator, practical to ~14 qubits."""

    name = "emu-sv"

    def __init__(self, max_qubits: int = 14) -> None:
        if max_qubits < 1:
            raise EmulatorError("max_qubits must be >= 1")
        self.max_qubits = max_qubits
        self._last_fidelity = 1.0

    # -- evolution ---------------------------------------------------------

    def evolve(
        self,
        ham: "RydbergHamiltonian",
        rabi_scale: float = 1.0,
        detuning_offset: float = 0.0,
    ) -> np.ndarray:
        """Final state vector from |00...0>, optionally with coherent
        noise (scaled Rabi amplitude, shifted detuning)."""
        self.check_size(ham)
        n = ham.num_qubits
        dim = 1 << n
        psi = np.zeros(dim, dtype=np.complex128)
        psi[0] = 1.0

        e_int = ham.diagonal_energies()
        # popcount per basis state for the detuning term.
        occ_count = ham.occupation_counts()

        omega = ham.omega * rabi_scale
        delta = ham.delta + detuning_offset
        phase = ham.phase
        steps = ham.steps

        for k in range(ham.num_steps):
            dt = steps[k]
            diag = e_int - delta[k] * occ_count
            half = np.exp(-0.5j * dt * diag)
            psi *= half
            theta = omega[k] * dt
            if theta != 0.0:
                psi = _apply_global_rotation(psi, n, theta, phase[k])
            psi *= half
        return psi

    def probabilities(
        self,
        ham: "RydbergHamiltonian",
        rabi_scale: float = 1.0,
        detuning_offset: float = 0.0,
    ) -> np.ndarray:
        psi = self.evolve(ham, rabi_scale, detuning_offset)
        return np.abs(psi) ** 2

    def evolve_many(
        self,
        ham: "RydbergHamiltonian",
        rabi_scales: np.ndarray,
        detuning_offsets: np.ndarray,
    ) -> np.ndarray:
        """Evolve one state per (rabi_scale, detuning_offset) pair in a
        single batched pass; returns an (R, 2^n) array of final states.

        All realizations share the time grid, so the diagonal half-step
        phases for every (realization, step) land in one ``exp`` call
        and the per-step drive rotations become batched 2x2 matmuls —
        the per-realization Python round-trip the coherent-noise path
        used to pay is gone.  Numerically identical to calling
        :meth:`evolve` per pair.
        """
        self.check_size(ham)
        scales = np.atleast_1d(np.asarray(rabi_scales, dtype=np.float64))
        offsets = np.atleast_1d(np.asarray(detuning_offsets, dtype=np.float64))
        if scales.shape != offsets.shape:
            raise EmulatorError(
                f"rabi_scales {scales.shape} and detuning_offsets "
                f"{offsets.shape} must align"
            )
        n = ham.num_qubits
        dim = 1 << n
        reals = scales.shape[0]
        num_steps = ham.num_steps
        steps = ham.steps

        e_int = ham.diagonal_energies()
        occ_count = ham.occupation_counts()
        delta = ham.delta[None, :] + offsets[:, None]            # (R, K)
        theta = np.outer(scales, ham.omega) * steps[None, :]     # (R, K)
        rotate = np.any(theta != 0.0, axis=0)                    # per step

        # drive rotations for every (realization, step) up front
        c = np.cos(0.5 * theta)
        s = np.sin(0.5 * theta)
        eip = np.exp(1j * ham.phase)
        u = np.empty((reals, num_steps, 2, 2), dtype=np.complex128)
        u[..., 0, 0] = c
        u[..., 1, 1] = c
        u[..., 0, 1] = (-1j * eip)[None, :] * s
        u[..., 1, 0] = (-1j * eip.conj())[None, :] * s

        psi = np.zeros((reals, dim), dtype=np.complex128)
        psi[:, 0] = 1.0
        # all (R, K, dim) half-step diagonal phases in one exp when the
        # block is small; stream per step otherwise to bound memory
        bulk = reals * num_steps * dim <= (1 << 22)
        if bulk:
            halves = np.exp(
                (-0.5j * steps)[None, :, None]
                * (e_int[None, None, :] - delta[:, :, None] * occ_count[None, None, :])
            )
        for k in range(num_steps):
            if bulk:
                half = halves[:, k, :]
            else:
                diag = e_int[None, :] - delta[:, k, None] * occ_count[None, :]
                half = np.exp(-0.5j * steps[k] * diag)
            psi *= half
            if rotate[k]:
                uk = u[:, k][:, None]  # (R, 1, 2, 2) broadcast over axes
                for qubit in range(n):
                    shaped = psi.reshape(reals, 1 << qubit, 2, 1 << (n - qubit - 1))
                    psi = np.matmul(uk, shaped).reshape(reals, dim)
            psi *= half
        return psi

    def probabilities_many(
        self,
        ham: "RydbergHamiltonian",
        rabi_scales: np.ndarray,
        detuning_offsets: np.ndarray,
    ) -> np.ndarray:
        psi = self.evolve_many(ham, rabi_scales, detuning_offsets)
        return np.abs(psi) ** 2

    # -- execution -----------------------------------------------------------

    def run(
        self,
        ham: "RydbergHamiltonian",
        shots: int,
        rng: np.random.Generator,
        noise: NoiseModel | None = None,
    ) -> EmulationResult:
        self.check_size(ham)
        n = ham.num_qubits
        if noise is None or noise.is_trivial:
            probs = self.probabilities(ham)
            samples = sample_bitstrings(probs, shots, rng, n)
        elif not noise.has_coherent_noise:
            probs = self.probabilities(ham)
            samples = sample_bitstrings(probs, shots, rng, n)
            samples = noise.apply_spam(samples, rng)
        elif shots == 0:
            samples = np.zeros((0, n), dtype=np.uint8)
        else:
            # Split the shot budget across coherent noise realizations:
            # one batched evolution, one batched multinomial.  Counts
            # are order-invariant and SPAM errors are i.i.d. per shot,
            # so no per-chunk shuffle is needed.
            reals = min(noise.noise_realizations, shots)
            base, extra = divmod(shots, reals)
            chunk_shots = np.full(reals, base, dtype=np.int64)
            chunk_shots[:extra] += 1
            scales, offsets = noise.draw_realizations(rng, reals)
            probs = self.probabilities_many(ham, scales, offsets)
            probs = np.clip(probs, 0.0, None)
            totals = probs.sum(axis=1, keepdims=True)
            if np.any(totals <= 0):
                raise EmulatorError("probability vector sums to zero")
            counts = rng.multinomial(chunk_shots, probs / totals)
            states = np.repeat(
                np.arange(1 << n, dtype=np.uint64), counts.sum(axis=0)
            )
            shifts = np.arange(n - 1, -1, -1, dtype=np.uint64)
            samples = ((states[:, None] >> shifts[None, :]) & 1).astype(np.uint8)
            samples = noise.apply_spam(samples, rng)
        self._last_fidelity = 1.0
        return EmulationResult(
            counts=counts_from_samples(samples),
            shots=shots,
            backend=self.name,
            duration_us=ham.total_duration,
            metadata={"num_steps": ham.num_steps, "exact": noise is None or noise.is_trivial},
        )

    def fidelity_estimate(self) -> float:
        return self._last_fidelity


def _apply_global_rotation(psi: np.ndarray, n: int, theta: float, phi: float) -> np.ndarray:
    """Apply exp(-i (theta/2) (cos(phi) X - sin(phi) Y)) to every qubit.

    The matrix is su(2):  [[cos(t/2), -i e^{i phi} sin(t/2)],
                           [-i e^{-i phi} sin(t/2), cos(t/2)]].
    Applied axis-by-axis via reshape to (left, 2, right) and one matmul.
    """
    c = np.cos(theta / 2.0)
    s = np.sin(theta / 2.0)
    u = np.array(
        [
            [c, -1j * np.exp(1j * phi) * s],
            [-1j * np.exp(-1j * phi) * s, c],
        ],
        dtype=np.complex128,
    )
    for qubit in range(n):
        # qubit 0 is the MSB: axis of size 2 at position `qubit` of shape (2,)*n.
        shaped = psi.reshape((1 << qubit), 2, (1 << (n - qubit - 1)))
        psi = np.einsum("ab,ibj->iaj", u, shaped).reshape(-1)
    return psi
