"""Dense state-vector emulator (EMU-SV analogue).

Numerically exact (up to Trotter error) evolution of the Rydberg
Hamiltonian using second-order Strang splitting:

    U(dt) ~= D(dt/2) * R(dt) * D(dt/2)

* ``D`` — the diagonal part (interactions + detuning): one elementwise
  complex phase over the 2^n amplitudes, with the interaction energies
  and per-state occupation counts precomputed once,
* ``R`` — the global drive: the same 2x2 rotation applied to every
  qubit axis (the single-qubit terms commute), implemented as n
  reshaped matmuls.

Everything in the inner loop is vectorized; the only Python loop is
over time steps and qubit axes (per the hpc-parallel guide: no
per-amplitude Python work).
"""

from __future__ import annotations

import numpy as np

from ..errors import EmulatorError
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import, breaks a cycle
    from ..qpu.hamiltonian import RydbergHamiltonian
from .base import EmulationResult, EmulatorBackend
from .noise import NoiseModel
from .sampling import counts_from_samples, sample_bitstrings

__all__ = ["StateVectorEmulator"]


class StateVectorEmulator(EmulatorBackend):
    """Exact dense emulator, practical to ~14 qubits."""

    name = "emu-sv"

    def __init__(self, max_qubits: int = 14) -> None:
        if max_qubits < 1:
            raise EmulatorError("max_qubits must be >= 1")
        self.max_qubits = max_qubits
        self._last_fidelity = 1.0

    # -- evolution ---------------------------------------------------------

    def evolve(
        self,
        ham: "RydbergHamiltonian",
        rabi_scale: float = 1.0,
        detuning_offset: float = 0.0,
    ) -> np.ndarray:
        """Final state vector from |00...0>, optionally with coherent
        noise (scaled Rabi amplitude, shifted detuning)."""
        self.check_size(ham)
        n = ham.num_qubits
        dim = 1 << n
        psi = np.zeros(dim, dtype=np.complex128)
        psi[0] = 1.0

        e_int = ham.diagonal_energies()
        # popcount per basis state for the detuning term.
        occ_count = ham.occupation_table().sum(axis=1)

        omega = ham.omega * rabi_scale
        delta = ham.delta + detuning_offset
        phase = ham.phase
        steps = ham.steps

        for k in range(ham.num_steps):
            dt = steps[k]
            diag = e_int - delta[k] * occ_count
            half = np.exp(-0.5j * dt * diag)
            psi *= half
            theta = omega[k] * dt
            if theta != 0.0:
                psi = _apply_global_rotation(psi, n, theta, phase[k])
            psi *= half
        return psi

    def probabilities(
        self,
        ham: "RydbergHamiltonian",
        rabi_scale: float = 1.0,
        detuning_offset: float = 0.0,
    ) -> np.ndarray:
        psi = self.evolve(ham, rabi_scale, detuning_offset)
        return np.abs(psi) ** 2

    # -- execution -----------------------------------------------------------

    def run(
        self,
        ham: "RydbergHamiltonian",
        shots: int,
        rng: np.random.Generator,
        noise: NoiseModel | None = None,
    ) -> EmulationResult:
        self.check_size(ham)
        n = ham.num_qubits
        if noise is None or noise.is_trivial:
            probs = self.probabilities(ham)
            samples = sample_bitstrings(probs, shots, rng, n)
        elif not noise.has_coherent_noise:
            probs = self.probabilities(ham)
            samples = sample_bitstrings(probs, shots, rng, n)
            samples = noise.apply_spam(samples, rng)
        else:
            # Split the shot budget across coherent noise realizations.
            reals = min(noise.noise_realizations, max(1, shots))
            base, extra = divmod(shots, reals)
            chunks = []
            for r in range(reals):
                chunk_shots = base + (1 if r < extra else 0)
                if chunk_shots == 0:
                    continue
                scale, offset = noise.draw_realization(rng)
                probs = self.probabilities(ham, scale, offset)
                chunks.append(sample_bitstrings(probs, chunk_shots, rng, n))
            samples = (
                np.concatenate(chunks) if chunks else np.zeros((0, n), dtype=np.uint8)
            )
            samples = noise.apply_spam(samples, rng)
        self._last_fidelity = 1.0
        return EmulationResult(
            counts=counts_from_samples(samples),
            shots=shots,
            backend=self.name,
            duration_us=ham.total_duration,
            metadata={"num_steps": ham.num_steps, "exact": noise is None or noise.is_trivial},
        )

    def fidelity_estimate(self) -> float:
        return self._last_fidelity


def _apply_global_rotation(psi: np.ndarray, n: int, theta: float, phi: float) -> np.ndarray:
    """Apply exp(-i (theta/2) (cos(phi) X - sin(phi) Y)) to every qubit.

    The matrix is su(2):  [[cos(t/2), -i e^{i phi} sin(t/2)],
                           [-i e^{-i phi} sin(t/2), cos(t/2)]].
    Applied axis-by-axis via reshape to (left, 2, right) and one matmul.
    """
    c = np.cos(theta / 2.0)
    s = np.sin(theta / 2.0)
    u = np.array(
        [
            [c, -1j * np.exp(1j * phi) * s],
            [-1j * np.exp(-1j * phi) * s, c],
        ],
        dtype=np.complex128,
    )
    for qubit in range(n):
        # qubit 0 is the MSB: axis of size 2 at position `qubit` of shape (2,)*n.
        shaped = psi.reshape((1 << qubit), 2, (1 << (n - qubit - 1)))
        psi = np.einsum("ab,ibj->iaj", u, shaped).reshape(-1)
    return psi
