"""Fault injection and profiling for emulator backends (paper §4).

"Future efforts could enrich the emulator interface with profiling,
fault injection, or simulated QPU timing to enable more realistic
development."  This module implements that future-work item:

* :class:`FaultInjectingBackend` — wraps any backend and injects the
  failure modes a real QPU service exhibits: task failures, transient
  errors that succeed on retry, result corruption (bit flips beyond the
  physical noise model), and latency spikes (exposed as metadata so the
  daemon's timing model can consume it),
* :class:`ProfilingBackend` — wraps any backend and records per-run
  wall-clock, qubit count and shot count, aggregated into a profile
  report developers can read before moving to scarce hardware.

Both wrappers preserve the :class:`~repro.emulators.base.EmulatorBackend`
interface, so they compose with QRMI resources transparently — the
whole point of the paper's "same interface everywhere" design.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import EmulatorError
from .base import EmulationResult, EmulatorBackend
from .noise import NoiseModel

if TYPE_CHECKING:  # pragma: no cover
    from ..qpu.hamiltonian import RydbergHamiltonian

__all__ = ["FaultInjectingBackend", "FaultPolicy", "ProfilingBackend"]


class InjectedFault(EmulatorError):
    """Raised when the fault policy decides this run fails."""


@dataclass(frozen=True)
class FaultPolicy:
    """Probabilities of each injected failure mode, per run."""

    failure_rate: float = 0.0            # hard task failure
    transient_rate: float = 0.0          # fails, but a retry succeeds
    corruption_rate: float = 0.0         # result bits scrambled
    latency_spike_rate: float = 0.0      # slow response
    latency_spike_seconds: float = 30.0
    max_retries: int = 2

    def __post_init__(self) -> None:
        for name in ("failure_rate", "transient_rate", "corruption_rate", "latency_spike_rate"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise EmulatorError(f"{name} must be a probability, got {value}")
        if self.max_retries < 0:
            raise EmulatorError("max_retries must be >= 0")


class FaultInjectingBackend(EmulatorBackend):
    """Backend decorator injecting service-level failures."""

    def __init__(
        self,
        inner: EmulatorBackend,
        policy: FaultPolicy,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.inner = inner
        self.policy = policy
        self.fault_rng = rng if rng is not None else np.random.default_rng(0)
        self.name = f"faulty({inner.name})"
        self.max_qubits = inner.max_qubits
        self.injected: dict[str, int] = {
            "failure": 0, "transient": 0, "corruption": 0, "latency_spike": 0,
        }

    def run(
        self,
        ham: "RydbergHamiltonian",
        shots: int,
        rng: np.random.Generator,
        noise: NoiseModel | None = None,
    ) -> EmulationResult:
        policy = self.policy
        attempts = 0
        while True:
            attempts += 1
            roll = self.fault_rng.random()
            if roll < policy.failure_rate:
                self.injected["failure"] += 1
                raise InjectedFault(f"{self.name}: injected hard failure")
            if roll < policy.failure_rate + policy.transient_rate:
                self.injected["transient"] += 1
                if attempts <= policy.max_retries:
                    continue  # the retry path: next attempt may succeed
                raise InjectedFault(
                    f"{self.name}: transient fault persisted past "
                    f"{policy.max_retries} retries"
                )
            break
        result = self.inner.run(ham, shots, rng, noise=noise)
        result.metadata["fault_attempts"] = attempts
        if self.fault_rng.random() < policy.corruption_rate:
            self.injected["corruption"] += 1
            result = self._corrupt(result, ham.num_qubits)
            result.metadata["injected_corruption"] = True
        if self.fault_rng.random() < policy.latency_spike_rate:
            self.injected["latency_spike"] += 1
            result.metadata["injected_latency_s"] = policy.latency_spike_seconds
        return result

    def _corrupt(self, result: EmulationResult, n: int) -> EmulationResult:
        """Scramble the counts: redistribute a third of the shots uniformly.

        Models a mis-labeled detector image — recognizably wrong results,
        the failure drift detection and QA are supposed to catch."""
        corrupted: dict[str, int] = dict(result.counts)
        to_move = result.shots // 3
        keys = sorted(corrupted, key=lambda k: -corrupted[k])
        moved = 0
        for key in keys:
            take = min(corrupted[key], to_move - moved)
            corrupted[key] -= take
            moved += take
            if moved >= to_move:
                break
        random_states = self.fault_rng.integers(0, 1 << n, size=moved)
        for state in random_states:
            bits = format(int(state), f"0{n}b")
            corrupted[bits] = corrupted.get(bits, 0) + 1
        corrupted = {k: v for k, v in corrupted.items() if v > 0}
        return EmulationResult(
            counts=corrupted,
            shots=result.shots,
            backend=result.backend,
            duration_us=result.duration_us,
            metadata=dict(result.metadata),
        )

    def fidelity_estimate(self) -> float:
        return self.inner.fidelity_estimate()


@dataclass
class _ProfileEntry:
    num_qubits: int
    shots: int
    wall_seconds: float
    backend: str


class ProfilingBackend(EmulatorBackend):
    """Backend decorator recording per-run performance."""

    def __init__(self, inner: EmulatorBackend) -> None:
        self.inner = inner
        self.name = f"profiled({inner.name})"
        self.max_qubits = inner.max_qubits
        self.entries: list[_ProfileEntry] = []

    def run(
        self,
        ham: "RydbergHamiltonian",
        shots: int,
        rng: np.random.Generator,
        noise: NoiseModel | None = None,
    ) -> EmulationResult:
        start = time.perf_counter()
        result = self.inner.run(ham, shots, rng, noise=noise)
        elapsed = time.perf_counter() - start
        self.entries.append(
            _ProfileEntry(
                num_qubits=ham.num_qubits,
                shots=shots,
                wall_seconds=elapsed,
                backend=result.backend,
            )
        )
        result.metadata["profile_wall_seconds"] = elapsed
        return result

    def report(self) -> dict:
        """Aggregate profile: totals and per-size breakdown."""
        if not self.entries:
            return {"runs": 0}
        by_size: dict[int, list[float]] = {}
        for entry in self.entries:
            by_size.setdefault(entry.num_qubits, []).append(entry.wall_seconds)
        return {
            "runs": len(self.entries),
            "total_wall_seconds": sum(e.wall_seconds for e in self.entries),
            "total_shots": sum(e.shots for e in self.entries),
            "by_qubits": {
                n: {
                    "runs": len(times),
                    "mean_wall_seconds": float(np.mean(times)),
                    "max_wall_seconds": float(np.max(times)),
                }
                for n, times in sorted(by_size.items())
            },
        }

    def fidelity_estimate(self) -> float:
        return self.inner.fidelity_estimate()
