"""Measurement sampling utilities (vectorized)."""

from __future__ import annotations

import numpy as np

from ..errors import EmulatorError

__all__ = ["bits_to_strings", "counts_from_samples", "sample_bitstrings"]


def sample_bitstrings(
    probabilities: np.ndarray, shots: int, rng: np.random.Generator, num_qubits: int
) -> np.ndarray:
    """Draw ``shots`` basis states from a 2^n distribution.

    Returns an (shots, n) uint8 array of bits (qubit 0 = MSB = column 0).
    Uses a single multinomial draw + repeat expansion instead of
    per-shot choice calls (one RNG call, no Python loop).
    """
    if shots < 0:
        raise EmulatorError(f"shots must be >= 0, got {shots}")
    dim = probabilities.shape[0]
    if dim != 1 << num_qubits:
        raise EmulatorError(
            f"distribution has {dim} entries, expected {1 << num_qubits}"
        )
    p = np.clip(probabilities.real, 0.0, None)
    total = p.sum()
    if total <= 0:
        raise EmulatorError("probability vector sums to zero")
    p = p / total
    if shots == 0:
        return np.zeros((0, num_qubits), dtype=np.uint8)
    counts = rng.multinomial(shots, p)
    states = np.repeat(np.arange(dim, dtype=np.uint64), counts)
    rng.shuffle(states)
    shifts = np.arange(num_qubits - 1, -1, -1, dtype=np.uint64)
    return ((states[:, None] >> shifts[None, :]) & 1).astype(np.uint8)


def bits_to_strings(samples: np.ndarray) -> list[str]:
    """Convert an (shots, n) bit array to '0101' strings, vectorized."""
    if samples.ndim != 2:
        raise EmulatorError(f"samples must be 2-D, got shape {samples.shape}")
    if samples.shape[0] == 0:
        return []
    chars = (samples + ord("0")).astype(np.uint8)
    return [row.tobytes().decode("ascii") for row in chars]


def counts_from_samples(samples: np.ndarray) -> dict[str, int]:
    """Histogram an (shots, n) bit array into a counts dict."""
    if samples.shape[0] == 0:
        return {}
    # Pack rows into integers for fast unique counting.  A plain Python
    # ``1 << 63`` cast through int64 would overflow, so the weights are
    # built in uint64 from the start; that covers exactly n <= 64.
    n = samples.shape[1]
    if n <= 64:
        weights = np.uint64(1) << np.arange(n - 1, -1, -1, dtype=np.uint64)
        keys = samples.astype(np.uint64) @ weights
        unique, counts = np.unique(keys, return_counts=True)
        result: dict[str, int] = {}
        for key, count in zip(unique.tolist(), counts.tolist(), strict=True):
            bits = format(int(key), f"0{n}b")
            result[bits] = count
        return result
    # Beyond 64 qubits no integer key fits a machine word: dedupe whole
    # rows instead of packing them.
    unique_rows, counts = np.unique(samples, axis=0, return_counts=True)
    return dict(zip(bits_to_strings(unique_rows), counts.tolist(), strict=True))
