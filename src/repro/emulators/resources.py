"""Catalog of emulator configurations advertised through QRMI.

The paper exposes emulators as QRMI devices next to real QPUs
("Additionally, we implement as a QRMIBackend the emulator suite from
Ref. [5]. The user-exposed backend module will default to using the
tensor network backend, if installed.", §3.2).  This module is that
catalog: named configurations with spec documents the runtime can
compare against QPU specs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import EmulatorError
from .base import EmulatorBackend
from .mps import MPSEmulator
from .statevector import StateVectorEmulator

__all__ = ["EMULATOR_CATALOG", "EmulatorSpec", "make_emulator"]


@dataclass(frozen=True)
class EmulatorSpec:
    """Descriptor of one catalog entry."""

    name: str
    kind: str              # "statevector" | "mps"
    max_qubits: int
    max_bond_dim: int = 0  # 0 = n/a
    description: str = ""

    def build(self) -> EmulatorBackend:
        if self.kind == "statevector":
            return StateVectorEmulator(max_qubits=self.max_qubits)
        if self.kind == "mps":
            return MPSEmulator(max_bond_dim=self.max_bond_dim, max_qubits=self.max_qubits)
        raise EmulatorError(f"unknown emulator kind {self.kind!r}")


#: Default catalog: the fidelity ladder from laptop to HPC to mock.
EMULATOR_CATALOG: dict[str, EmulatorSpec] = {
    spec.name: spec
    for spec in (
        EmulatorSpec(
            name="emu-sv",
            kind="statevector",
            max_qubits=14,
            description="Exact dense state-vector emulator (laptop scale).",
        ),
        EmulatorSpec(
            name="emu-mps",
            kind="mps",
            max_qubits=128,
            max_bond_dim=16,
            description="Tensor-network emulator, the HPC default backend.",
        ),
        EmulatorSpec(
            name="emu-mps-large",
            kind="mps",
            max_qubits=128,
            max_bond_dim=64,
            description="High-accuracy tensor-network emulator for HPC nodes.",
        ),
        EmulatorSpec(
            name="emu-product",
            kind="mps",
            max_qubits=1024,
            max_bond_dim=1,
            description=(
                "Product-state (chi=1) mock: wrong physics, full code path; "
                "for end-to-end tests against arbitrarily large registers."
            ),
        ),
    )
}


def make_emulator(name: str, **overrides) -> EmulatorBackend:
    """Instantiate a catalog emulator, optionally overriding fields.

    >>> emu = make_emulator("emu-mps", max_bond_dim=32)
    """
    if name not in EMULATOR_CATALOG:
        raise EmulatorError(
            f"unknown emulator {name!r}; available: {sorted(EMULATOR_CATALOG)}"
        )
    spec = EMULATOR_CATALOG[name]
    if overrides:
        from dataclasses import replace

        spec = replace(spec, **overrides)
    return spec.build()
