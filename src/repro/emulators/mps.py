"""Matrix-product-state (tensor network) emulator — EMU-MPS analogue.

TEBD evolution of the Rydberg Hamiltonian with a hard bond-dimension
cap ``max_bond_dim`` (chi).  This is the emulator the paper leans on
for the portability story (§3.2):

* large chi on HPC nodes — accurate results for 1-D-like registers far
  beyond state-vector reach,
* **chi = 1** — a pure product state: "it can be used for mocking the
  QPU in end-to-end tests" (paper footnote 3).  Results are physically
  wrong but every code path (validation, scheduling, telemetry) runs.

Approximations (documented, and measured by
``benchmarks/bench_ablation_bond_dimension.py``):

1. bond-dimension truncation (tracked as accumulated discarded weight,
   reported via :meth:`fidelity_estimate`),
2. interactions are kept only between atoms *adjacent in the MPS
   ordering* (atoms sorted by position); longer-range tails of the
   1/r^6 potential are dropped.  For chain registers this keeps the
   dominant nearest-neighbour blockade physics.

Algorithm per Trotter step (second order):

    U1(dt/2) on every site  ->  diagonal bond gates (dt)  ->  U1(dt/2)

where ``U1 = exp(-i dt (Omega/2 (cos phi X - sin phi Y) - delta n))`` is
an exact 2x2 exponential and the bond gates
``exp(-i dt U_ij n (x) n)`` are diagonal, hence mutually commuting — no
even/odd sublattice split is needed.
"""

from __future__ import annotations

import numpy as np

from ..errors import BondDimensionError, EmulatorError
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import, breaks a cycle
    from ..qpu.hamiltonian import RydbergHamiltonian
from .base import EmulationResult, EmulatorBackend
from .noise import NoiseModel
from .sampling import counts_from_samples

__all__ = ["MPSEmulator"]


class MPSEmulator(EmulatorBackend):
    """TEBD tensor-network emulator with capped bond dimension."""

    name = "emu-mps"

    def __init__(self, max_bond_dim: int = 16, max_qubits: int = 128) -> None:
        if max_bond_dim < 1:
            raise BondDimensionError(f"max_bond_dim must be >= 1, got {max_bond_dim}")
        self.max_bond_dim = max_bond_dim
        self.max_qubits = max_qubits
        self._last_discarded_weight = 0.0

    # -- state initialisation ------------------------------------------------

    @staticmethod
    def _initial_state(n: int) -> list[np.ndarray]:
        """Product state |0...0> as trivial chi=1 MPS."""
        tensor = np.zeros((1, 2, 1), dtype=np.complex128)
        tensor[0, 0, 0] = 1.0
        return [tensor.copy() for _ in range(n)]

    @staticmethod
    def _site_order(ham: "RydbergHamiltonian") -> np.ndarray:
        """Map MPS position -> atom index, ordering atoms along their
        dominant spatial axis so neighbours in space are neighbours in
        the chain."""
        pos = ham.register.positions
        spread = pos.max(axis=0) - pos.min(axis=0)
        axis = int(np.argmax(spread))
        other = 1 - axis
        keys = np.lexsort((pos[:, other], pos[:, axis]))
        return keys

    def _bond_strengths(self, ham: "RydbergHamiltonian", order: np.ndarray) -> np.ndarray:
        """U_{k,k+1} between MPS-adjacent atoms."""
        n = ham.num_qubits
        strengths = np.empty(max(0, n - 1))
        for k in range(n - 1):
            strengths[k] = ham.interactions[order[k], order[k + 1]]
        return strengths

    # -- gates -----------------------------------------------------------------

    @staticmethod
    def _single_site_gate(omega: float, delta: float, phase: float, dt: float) -> np.ndarray:
        """Exact 2x2 exponential of the single-site generator.

        H1 = (omega/2)(cos(phi) X - sin(phi) Y) - delta n
           = -delta/2 I + hx X + hy Y + (delta/2) Z  with
        hx = (omega/2) cos(phi), hy = -(omega/2) sin(phi).
        exp(-i dt H1) computed from the su(2) decomposition.
        """
        hx = 0.5 * omega * np.cos(phase)
        hy = -0.5 * omega * np.sin(phase)
        hz = 0.5 * delta
        h0 = -0.5 * delta
        r = np.sqrt(hx * hx + hy * hy + hz * hz)
        if r < 1e-300:
            return np.exp(-1j * dt * h0) * np.eye(2, dtype=np.complex128)
        c = np.cos(r * dt)
        s = np.sin(r * dt) / r
        x = np.array([[0, 1], [1, 0]], dtype=np.complex128)
        y = np.array([[0, -1j], [1j, 0]], dtype=np.complex128)
        z = np.array([[1, 0], [0, -1]], dtype=np.complex128)
        u = c * np.eye(2) - 1j * s * (hx * x + hy * y + hz * z)
        return np.exp(-1j * dt * h0) * u

    def _apply_single_site(self, mps: list[np.ndarray], gate: np.ndarray) -> None:
        for k, tensor in enumerate(mps):
            mps[k] = np.einsum("ab,ibj->iaj", gate, tensor)

    def _apply_bond_gate(
        self, mps: list[np.ndarray], k: int, coupling: float, dt: float
    ) -> None:
        """Apply exp(-i dt U n(x)n) to sites (k, k+1) with SVD truncation."""
        a, b = mps[k], mps[k + 1]
        dl, _, dm = a.shape
        _, _, dr = b.shape
        theta = np.einsum("iaj,jbk->iabk", a, b)
        # Diagonal gate: phase only on the |11> component.
        theta[:, 1, 1, :] *= np.exp(-1j * dt * coupling)
        matrix = theta.reshape(dl * 2, 2 * dr)
        u, s, vh = np.linalg.svd(matrix, full_matrices=False)
        keep = min(self.max_bond_dim, s.shape[0])
        total = float((s**2).sum())
        discarded = float((s[keep:] ** 2).sum())
        if total > 0:
            self._last_discarded_weight += discarded / total
        u, s, vh = u[:, :keep], s[:keep], vh[:keep]
        norm = np.sqrt(float((s**2).sum()))
        if norm > 0:
            s = s / norm
        mps[k] = u.reshape(dl, 2, keep)
        mps[k + 1] = (s[:, None] * vh).reshape(keep, 2, dr)

    # -- evolution -----------------------------------------------------------

    def evolve(
        self,
        ham: "RydbergHamiltonian",
        rabi_scale: float = 1.0,
        detuning_offset: float = 0.0,
    ) -> tuple[list[np.ndarray], np.ndarray]:
        """Evolve |0...0>; returns (mps, site_order)."""
        self.check_size(ham)
        n = ham.num_qubits
        order = self._site_order(ham)
        bonds = self._bond_strengths(ham, order)
        mps = self._initial_state(n)
        self._last_discarded_weight = 0.0

        omega = ham.omega * rabi_scale
        delta = ham.delta + detuning_offset
        phase = ham.phase
        steps = ham.steps
        for step_idx in range(ham.num_steps):
            dt = steps[step_idx]
            half = self._single_site_gate(
                omega[step_idx], delta[step_idx], phase[step_idx], dt / 2.0
            )
            self._apply_single_site(mps, half)
            for k in range(n - 1):
                if bonds[k] != 0.0:
                    self._apply_bond_gate(mps, k, bonds[k], dt)
            self._apply_single_site(mps, half)
        _normalize(mps)
        return mps, order

    # -- sampling ------------------------------------------------------------

    def sample(
        self, mps: list[np.ndarray], order: np.ndarray, shots: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sequential conditional sampling, vectorized over shots;
        returns (shots, n) bits in *atom* order (inverse of the MPS
        site permutation).

        Every shot walks the chain site by site, but all shots advance
        together: the per-shot prefix vectors form a (shots, chi)
        matrix, so each site costs two matmuls and a masked select
        instead of a Python loop per shot.  Uniform variates are drawn
        as one (shots, n) block up front.
        """
        n = len(mps)
        if shots == 0:
            return np.empty((0, n), dtype=np.uint8)
        right_env = _right_environments(mps)
        samples_chain = np.empty((shots, n), dtype=np.uint8)
        uniforms = rng.random((shots, n))
        # prefix amplitude vectors, one row per shot
        v = np.ones((shots, 1), dtype=np.complex128)
        for k, tensor in enumerate(mps):
            # amplitude vectors for bit 0 / 1 given each shot's prefix
            v0 = v @ tensor[:, 0, :]
            v1 = v @ tensor[:, 1, :]
            r = right_env[k + 1]
            # P(prefix + b) = v_b R v_b^dagger per shot (rows of v_b).
            p0 = np.einsum("si,ij,sj->s", v0, r, v0.conj()).real
            p1 = np.einsum("si,ij,sj->s", v1, r, v1.conj()).real
            total = p0 + p1
            ok = total > 0
            bit = np.zeros(shots, dtype=bool)
            bit[ok] = uniforms[ok, k] < (p1[ok] / total[ok])
            v = np.where(bit[:, None], v1, v0)
            # degenerate rows (total <= 0) keep the unnormalized v0
            chosen = np.where(bit, p1, p0)
            scale = np.ones(shots)
            scale[ok] = 1.0 / np.sqrt(np.maximum(chosen[ok], 1e-300))
            v = v * scale[:, None]
            samples_chain[:, k] = bit
        # un-permute chain positions back to atom indices
        samples = np.empty_like(samples_chain)
        samples[:, order] = samples_chain
        return samples

    def run(
        self,
        ham: "RydbergHamiltonian",
        shots: int,
        rng: np.random.Generator,
        noise: NoiseModel | None = None,
    ) -> EmulationResult:
        self.check_size(ham)
        if shots < 0:
            raise EmulatorError(f"shots must be >= 0, got {shots}")
        n = ham.num_qubits
        if noise is None or not noise.has_coherent_noise:
            mps, order = self.evolve(ham)
            samples = self.sample(mps, order, shots, rng)
        else:
            reals = min(noise.noise_realizations, max(1, shots))
            base, extra = divmod(shots, reals)
            chunks = []
            for r in range(reals):
                chunk_shots = base + (1 if r < extra else 0)
                if chunk_shots == 0:
                    continue
                scale, offset = noise.draw_realization(rng)
                mps, order = self.evolve(ham, scale, offset)
                chunks.append(self.sample(mps, order, chunk_shots, rng))
            samples = (
                np.concatenate(chunks) if chunks else np.zeros((0, n), dtype=np.uint8)
            )
        if noise is not None:
            samples = noise.apply_spam(samples, rng)
        return EmulationResult(
            counts=counts_from_samples(samples),
            shots=shots,
            backend=self.name,
            duration_us=ham.total_duration,
            metadata={
                "max_bond_dim": self.max_bond_dim,
                "discarded_weight": self._last_discarded_weight,
                "product_state_mode": self.max_bond_dim == 1,
            },
        )

    def fidelity_estimate(self) -> float:
        """Crude fidelity proxy: product of kept weights across truncations."""
        return float(np.exp(-self._last_discarded_weight))


def _right_environments(mps: list[np.ndarray]) -> list[np.ndarray]:
    """R[k] = contraction of sites k..n-1 with their conjugates.

    R[n] = [[1]]; R[k] = sum_b A_k[b] R[k+1] A_k[b]^dagger.
    """
    n = len(mps)
    envs: list[np.ndarray] = [np.zeros((0, 0))] * (n + 1)
    envs[n] = np.ones((1, 1), dtype=np.complex128)
    for k in range(n - 1, -1, -1):
        tensor = mps[k]
        r = envs[k + 1]
        # sum over physical index: (Dl,2,Dr) x (Dr,Dr') x conj(Dl',2,Dr')
        tmp = np.einsum("ibj,jk->ibk", tensor, r)
        envs[k] = np.einsum("ibk,lbk->il", tmp, tensor.conj())
    return envs


def _normalize(mps: list[np.ndarray]) -> None:
    """Scale the MPS to unit norm (global factor on the first tensor)."""
    env = _right_environments(mps)[0]
    norm2 = float(np.real(env[0, 0])) if env.size else 1.0
    if norm2 > 0:
        mps[0] = mps[0] / np.sqrt(norm2)
