"""Common emulator interface and result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..errors import EmulatorError
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import, breaks a cycle
    from ..qpu.hamiltonian import RydbergHamiltonian
from .noise import NoiseModel

__all__ = ["EmulationResult", "EmulatorBackend"]


@dataclass
class EmulationResult:
    """Outcome of one emulated execution.

    ``counts`` maps bitstrings (``'0110'``, qubit 0 leftmost) to shot
    counts.  ``metadata`` carries backend-specific diagnostics (e.g.
    accumulated MPS truncation error) surfaced to the user as per-job
    metadata by the observability layer.
    """

    counts: dict[str, int]
    shots: int
    backend: str
    duration_us: float
    metadata: dict[str, Any] = field(default_factory=dict)

    def probabilities(self) -> dict[str, float]:
        if self.shots == 0:
            return {}
        return {bits: c / self.shots for bits, c in self.counts.items()}

    def expectation_occupation(self) -> np.ndarray:
        """Mean Rydberg occupation per qubit, estimated from counts."""
        if not self.counts:
            raise EmulatorError("no counts to compute occupations from")
        n = len(next(iter(self.counts)))
        occ = np.zeros(n)
        for bits, count in self.counts.items():
            digits = np.frombuffer(bits.encode(), dtype=np.uint8).astype(np.float64)
            occ += count * (digits - ord("0"))
        return occ / max(1, self.shots)

    def most_frequent(self) -> str:
        if not self.counts:
            raise EmulatorError("no counts recorded")
        return max(self.counts.items(), key=lambda kv: (kv[1], kv[0]))[0]


class EmulatorBackend:
    """Abstract emulator: evolve a Rydberg Hamiltonian and sample.

    Subclasses implement :meth:`final_state_probabilities` (or override
    :meth:`run` wholesale for backends that sample without forming the
    full distribution, like the MPS emulator).
    """

    name = "abstract"
    max_qubits = 0

    def check_size(self, ham: "RydbergHamiltonian") -> None:
        if ham.num_qubits > self.max_qubits:
            raise EmulatorError(
                f"{self.name} supports up to {self.max_qubits} qubits, "
                f"got {ham.num_qubits}"
            )

    def run(
        self,
        ham: "RydbergHamiltonian",
        shots: int,
        rng: np.random.Generator,
        noise: NoiseModel | None = None,
    ) -> EmulationResult:
        raise NotImplementedError

    def fidelity_estimate(self) -> float:
        """Backend's own estimate of result fidelity for the last run
        (1.0 = numerically exact)."""
        return 1.0
