"""Noise model shared by the emulators and the QPU device.

Covers the dominant error channels of analog neutral-atom hardware at
the level relevant to this paper (result distributions, not process
tomography):

* **SPAM**: state-preparation error ``eta`` (an atom starts in the
  Rydberg state / is lost), detection false positive ``epsilon``
  (ground read as excited) and false negative ``epsilon_prime``,
* **amplitude fluctuation**: per-realization relative Rabi scale error,
* **detuning offset**: per-realization additive detuning error.

Amplitude/detuning noise requires re-evolving the state; emulators
amortize this by drawing ``noise_realizations`` parameter sets and
splitting the shot budget across them.

The QPU device derives a NoiseModel from its *current calibration
state* (see :mod:`repro.qpu.calibration`), which is how calibration
drift becomes visible in user results.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..errors import EmulatorError

__all__ = ["NoiseModel"]


@dataclass(frozen=True)
class NoiseModel:
    """Parametrized hardware noise; all rates dimensionless, offsets rad/us."""

    state_prep_error: float = 0.0
    detection_epsilon: float = 0.0        # P(read 1 | actual 0)
    detection_epsilon_prime: float = 0.0  # P(read 0 | actual 1)
    amplitude_rel_std: float = 0.0        # relative sigma of Rabi scale
    detuning_std: float = 0.0             # additive detuning sigma (rad/us)
    noise_realizations: int = 4

    def __post_init__(self) -> None:
        for name in ("state_prep_error", "detection_epsilon", "detection_epsilon_prime"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise EmulatorError(f"{name} must be a probability, got {value}")
        if self.amplitude_rel_std < 0 or self.detuning_std < 0:
            raise EmulatorError("noise sigmas must be non-negative")
        if self.noise_realizations < 1:
            raise EmulatorError("noise_realizations must be >= 1")

    @property
    def is_trivial(self) -> bool:
        return (
            self.state_prep_error == 0.0
            and self.detection_epsilon == 0.0
            and self.detection_epsilon_prime == 0.0
            and self.amplitude_rel_std == 0.0
            and self.detuning_std == 0.0
        )

    @property
    def has_coherent_noise(self) -> bool:
        """True when per-realization re-evolution is required."""
        return self.amplitude_rel_std > 0.0 or self.detuning_std > 0.0

    def draw_realization(self, rng: np.random.Generator) -> tuple[float, float]:
        """Sample (rabi_scale, detuning_offset) for one coherent realization."""
        scale = 1.0
        if self.amplitude_rel_std > 0:
            scale = max(0.0, 1.0 + rng.normal(0.0, self.amplitude_rel_std))
        offset = rng.normal(0.0, self.detuning_std) if self.detuning_std > 0 else 0.0
        return scale, offset

    def draw_realizations(
        self, rng: np.random.Generator, count: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sample ``count`` (rabi_scale, detuning_offset) pairs in two
        vectorized draws (all scales, then all offsets) — the batched
        emulator paths consume whole realization sets at once."""
        if count < 1:
            raise EmulatorError(f"realization count must be >= 1, got {count}")
        if self.amplitude_rel_std > 0:
            scales = np.maximum(
                0.0, 1.0 + rng.normal(0.0, self.amplitude_rel_std, count)
            )
        else:
            scales = np.ones(count)
        if self.detuning_std > 0:
            offsets = rng.normal(0.0, self.detuning_std, count)
        else:
            offsets = np.zeros(count)
        return scales, offsets

    def apply_spam(self, samples: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Apply SPAM errors to an (shots, n) 0/1 sample array, vectorized.

        State-prep errors are modeled as pre-measurement bit resets to 0
        followed by detection confusion (a lost atom reads as ground).
        """
        if samples.size == 0:
            return samples
        out = samples.astype(np.uint8, copy=True)
        if self.state_prep_error > 0:
            lost = rng.random(out.shape) < self.state_prep_error
            out[lost] = 0
        if self.detection_epsilon > 0:
            flips_up = (out == 0) & (rng.random(out.shape) < self.detection_epsilon)
            out[flips_up] = 1
        if self.detection_epsilon_prime > 0:
            flips_down = (out == 1) & (rng.random(out.shape) < self.detection_epsilon_prime)
            out[flips_down] = 0
        return out

    def scaled(self, factor: float) -> "NoiseModel":
        """A proportionally degraded copy (used by drift experiments)."""
        if factor < 0:
            raise EmulatorError("scale factor must be non-negative")
        clamp = lambda p: min(1.0, p * factor)  # noqa: E731
        return replace(
            self,
            state_prep_error=clamp(self.state_prep_error),
            detection_epsilon=clamp(self.detection_epsilon),
            detection_epsilon_prime=clamp(self.detection_epsilon_prime),
            amplitude_rel_std=self.amplitude_rel_std * factor,
            detuning_std=self.detuning_std * factor,
        )
