"""Resource selection: the ``--qpu=<resource>`` switch.

Resolution order (paper §3.2 — "a single configuration change with the
--qpu option instead sends the job to physical hardware"):

1. explicit ``qpu=`` argument to :meth:`RuntimeEnvironment.run`,
2. ``QRMI_DEFAULT_RESOURCE`` from the environment (what the Slurm SPANK
   plugin injects for ``--qpu``),
3. the development default: prefer emulators ("By defaulting to
   execution on our open-source emulators the user is able ... to run
   their program locally on their laptop"), most capable first.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..errors import ResourceNotFound
from ..qrmi.resources import ResourceType

__all__ = ["select_resource", "DEFAULT_PREFERENCE"]

#: development-mode preference: emulators before hardware
DEFAULT_PREFERENCE = (
    ResourceType.LOCAL_EMULATOR,
    ResourceType.CLOUD_EMULATOR,
    ResourceType.ONPREM_QPU,
    ResourceType.CLOUD_QPU,
)


def select_resource(
    available: Mapping[str, str],
    requested: str | None = None,
    env_default: str | None = None,
    preference: tuple[ResourceType, ...] = DEFAULT_PREFERENCE,
) -> str:
    """Pick the resource name to execute on.

    ``available`` maps resource name -> resource type string.
    """
    if requested is not None:
        if requested not in available:
            raise ResourceNotFound(
                f"--qpu={requested}: not configured (have {sorted(available)})"
            )
        return requested
    if env_default:
        if env_default not in available:
            raise ResourceNotFound(
                f"QRMI_DEFAULT_RESOURCE={env_default}: not configured "
                f"(have {sorted(available)})"
            )
        return env_default
    if not available:
        raise ResourceNotFound("no QRMI resources configured")
    for wanted in preference:
        for name in sorted(available):
            if available[name] == wanted.value:
                return name
    # unknown types: deterministic fallback
    return sorted(available)[0]
