"""Resource selection: the ``--qpu=<resource>`` switch.

Resolution order (paper §3.2 — "a single configuration change with the
--qpu option instead sends the job to physical hardware"):

1. explicit ``qpu=`` argument to :meth:`RuntimeEnvironment.run`,
2. ``QRMI_DEFAULT_RESOURCE`` from the environment (what the Slurm SPANK
   plugin injects for ``--qpu``),
3. the development default: prefer emulators ("By defaulting to
   execution on our open-source emulators the user is able ... to run
   their program locally on their laptop"), most capable first.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..errors import ResourceNotFound
from ..qrmi.resources import ResourceType

__all__ = ["DEFAULT_PREFERENCE", "select_resource", "spec_request"]


def spec_request(spec) -> str | tuple[str, ...] | None:
    """The ``--qpu``-shaped request a :class:`~repro.spec.JobSpec`
    declares: a multi-site placement when ``sites`` is set, else the
    hard ``pin``, else the explicit ``resource``, else ``None`` (let
    the environment default / preference order decide).  The session
    facade and the runtime both resolve specs through this so the
    resolution order cannot fork between surfaces."""
    if spec.sites is not None:
        return tuple(spec.sites)
    if spec.pin is not None:
        return spec.pin
    if spec.resource is not None:
        return spec.resource
    return None

#: development-mode preference: emulators before hardware
DEFAULT_PREFERENCE = (
    ResourceType.LOCAL_EMULATOR,
    ResourceType.CLOUD_EMULATOR,
    ResourceType.ONPREM_QPU,
    ResourceType.CLOUD_QPU,
)


def select_resource(
    available: Mapping[str, str],
    requested: str | tuple[str, ...] | list[str] | None = None,
    env_default: str | None = None,
    preference: tuple[ResourceType, ...] = DEFAULT_PREFERENCE,
    federation=None,
) -> str | tuple[str, ...]:
    """Pick the resource name to execute on.

    ``available`` maps resource name -> resource type string.

    ``federation`` is an optional handle exposing
    ``available_resources() -> Mapping[name, type]`` (duck-typed; the
    :class:`~repro.federation.FederationBroker` qualifies).  When the
    *local* catalog is empty the resolution falls through to the remote
    sites' aggregate catalog instead of raising :class:`ResourceNotFound`
    immediately — the 3-step order (explicit > env > preference) is then
    re-applied unchanged over the remote catalog.  An explicit request
    (or env default) naming a ``site/resource`` the federation exports
    also resolves when it is missing locally; local names always win.

    ``requested`` may also be a *multi-site placement*: a non-empty
    tuple/list of names.  Every member must resolve individually (the
    ``--qpu`` contract applies to each leg) and the placement comes back
    as a tuple — the runtime feeds it to the federation's malleable
    path, which spreads the job's iterations across those sites.
    """
    if requested is not None and not isinstance(requested, str):
        names = tuple(requested)
        if not names:
            raise ResourceNotFound("multi-site placement cannot be empty")
        return tuple(
            select_resource(
                available,
                requested=name,
                env_default=None,
                preference=preference,
                federation=federation,
            )
            for name in names
        )
    if not available and federation is not None:
        remote = dict(federation.available_resources())
        if remote:
            return select_resource(
                remote,
                requested=requested,
                env_default=env_default,
                preference=preference,
            )

    def known_remotely(name: str) -> bool:
        if federation is None:
            return False
        checker = getattr(federation, "has_resource", None)
        if checker is not None:
            return bool(checker(name))
        return name in dict(federation.available_resources())

    if requested is not None:
        if requested in available:
            return requested
        if known_remotely(requested):
            return requested
        raise ResourceNotFound(
            f"--qpu={requested}: not configured (have {sorted(available)})"
        )
    if env_default:
        if env_default in available:
            return env_default
        if known_remotely(env_default):
            return env_default
        raise ResourceNotFound(
            f"QRMI_DEFAULT_RESOURCE={env_default}: not configured "
            f"(have {sorted(available)})"
        )
    if not available:
        raise ResourceNotFound("no QRMI resources configured")
    for wanted in preference:
        for name in sorted(available):
            if available[name] == wanted.value:
                return name
    # unknown types: deterministic fallback
    return sorted(available)[0]
