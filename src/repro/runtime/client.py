"""REST client for daemon mode.

Wraps a :class:`~repro.daemon.http.Router` (the in-process transport)
with the call conventions a real HTTP client would use: base token
handling, JSON bodies, error mapping.  Every method corresponds to one
route in :mod:`repro.daemon.api`.
"""

from __future__ import annotations

from typing import Any

from ..daemon.http import Request, Response, Router
from ..errors import DaemonError, ValidationError

__all__ = ["DaemonClient"]


class DaemonClient:
    """Typed client over the daemon's REST surface."""

    def __init__(self, router: Router, token: str = "") -> None:
        self.router = router
        self.token = token

    def _call(
        self, method: str, path: str, body: dict | None = None, token: str | None = None
    ) -> Response:
        headers = {}
        bearer = self.token if token is None else token
        if bearer:
            headers["Authorization"] = f"Bearer {bearer}"
        response = self.router.dispatch(
            Request(method=method, path=path, body=body or {}, headers=headers)
        )
        if not response.ok:
            error = response.body.get("error", "unknown error")
            if response.status == 422:
                raise ValidationError(error, violations=response.body.get("violations", []))
            raise DaemonError(f"{response.status}: {error}")
        return response

    # -- sessions -----------------------------------------------------------

    def open_session(
        self,
        user: str,
        priority_class: str = "development",
        slurm_partition: str | None = None,
        slurm_job_id: int | None = None,
    ) -> dict[str, Any]:
        body: dict[str, Any] = {"user": user, "priority_class": priority_class}
        if slurm_partition is not None:
            body["slurm_partition"] = slurm_partition
        if slurm_job_id is not None:
            body["slurm_job_id"] = slurm_job_id
        response = self._call("POST", "/sessions", body)
        self.token = response.body["token"]
        return response.body

    # -- tasks --------------------------------------------------------------

    def submit(
        self,
        program: Any,
        resource: str | None = None,
        shots: int | None = None,
    ) -> str:
        """Submit one task.  ``program`` may be a
        :class:`~repro.spec.JobSpec` — the one declarative payload every
        surface accepts — whose resolved IR/shots/resource fill the REST
        body (``resource=`` then only serves as a fallback target).  The
        (program dict, resource, shots) form is the deprecated legacy
        shape."""
        from ..spec import JobSpec

        if isinstance(program, JobSpec):
            spec = program.validate()
            if spec.is_multi:
                raise ValidationError(
                    "the daemon runs fixed-size tasks; a multi-unit spec "
                    "(iterations/sites) needs the federation broker or a "
                    "Session"
                )
            target = spec.resource if spec.resource is not None else resource
            if target is None:
                raise ValidationError(
                    "daemon submission needs a target: set spec.resource "
                    "(or pass resource=)"
                )
            body: dict[str, Any] = {
                "program": spec.program.to_dict(),
                "resource": target,
                "shots": spec.shots,
            }
        else:
            if resource is None:
                raise ValidationError("legacy submit needs resource=")
            body = {"program": program, "resource": resource}
            if shots is not None:
                body["shots"] = shots
        response = self._call("POST", "/tasks", body)
        return response.body["task_id"]

    def submit_spec(self, spec: Any) -> dict[str, Any]:
        """``POST /jobs``: ship one :class:`~repro.spec.JobSpec` (or its
        ``to_dict`` payload) as the request body.  Unlike :meth:`submit`,
        the whole spec travels — tenant, metadata, and the scheduling
        ``algorithm`` selection arrive on the daemon task, and resource
        fallback (single-resource daemons) happens server-side."""
        from ..spec import JobSpec

        body = spec.to_dict() if isinstance(spec, JobSpec) else dict(spec)
        return self._call("POST", "/jobs", body).body

    def status(self, task_id: str) -> dict[str, Any]:
        return self._call("GET", f"/tasks/{task_id}").body

    def result(self, task_id: str) -> dict[str, Any]:
        return self._call("GET", f"/tasks/{task_id}/result").body

    def job_metadata(self, task_id: str) -> dict[str, Any]:
        return self._call("GET", f"/tasks/{task_id}/metadata").body

    # -- discovery -------------------------------------------------------------

    def resources(self) -> list[dict[str, Any]]:
        return self._call("GET", "/resources").body["resources"]

    def target(self, resource: str) -> dict[str, Any]:
        return self._call("GET", f"/resources/{resource}/target").body

    def sdks(self) -> list[str]:
        return self._call("GET", "/sdks").body["sdks"]

    def metrics_text(self) -> str:
        return self._call("GET", "/metrics").body["text"]
