"""RuntimeEnvironment: one interface from laptop to QPU.

The object a user's hybrid program holds.  The *same* calls work in
every environment of Figure 1:

* **direct mode** (:meth:`from_config`) — resources come from QRMI
  environment variables and execute in-process.  This is the developer
  laptop and also what a Slurm job uses when it talks to QRMI without
  the daemon.
* **daemon mode** (:meth:`with_daemon`) — calls go through the
  middleware's REST API with a session token; the second-level
  scheduler decides when the QPU runs the task.

In both modes ``run()``:

1. resolves the target via the ``--qpu`` switching policy,
2. fetches the target's *current* spec document,
3. validates the program against it (point-of-execution validation),
4. executes, returning a uniform :class:`RunResult`.
"""

from __future__ import annotations

from typing import Any

from ..config import ConfigSource
from ..errors import QRMIError, TaskError
from ..qrmi.env import load_resources
from ..qrmi.interface import QuantumResource, TaskStatus
from ..sdk.registry import SDKRegistry, default_registry
from ..simkernel import Timeout
from ..spec import JobSpec
from .backend_select import select_resource, spec_request
from .client import DaemonClient
from .results import RunResult
from .validation import ensure_valid

__all__ = ["RuntimeEnvironment"]


class RuntimeEnvironment:
    """Portable execution environment for hybrid programs."""

    def __init__(
        self,
        resources: dict[str, QuantumResource] | None = None,
        client: DaemonClient | None = None,
        default_resource: str | None = None,
        sdk_registry: SDKRegistry | None = None,
        federation=None,
    ) -> None:
        if resources is None and client is None:
            raise QRMIError("runtime needs QRMI resources or a daemon client")
        self.resources = resources or {}
        self.client = client
        self.default_resource = default_resource
        self.sdk_registry = sdk_registry or default_registry()
        #: optional FederationBroker-shaped handle; lets resolution fall
        #: through to remote sites when the local catalog is empty
        self.federation = federation

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_config(cls, config: ConfigSource, devices: dict | None = None) -> "RuntimeEnvironment":
        """Direct mode from QRMI environment variables."""
        return cls(
            resources=load_resources(config, devices),
            default_resource=config.get("QRMI_DEFAULT_RESOURCE") or None,
        )

    @classmethod
    def with_daemon(
        cls,
        client: DaemonClient,
        user: str = "user",
        priority_class: str = "development",
        slurm_partition: str | None = None,
        slurm_job_id: int | None = None,
        default_resource: str | None = None,
    ) -> "RuntimeEnvironment":
        """Daemon mode: opens a session immediately."""
        client.open_session(
            user,
            priority_class=priority_class,
            slurm_partition=slurm_partition,
            slurm_job_id=slurm_job_id,
        )
        return cls(client=client, default_resource=default_resource)

    # -- discovery --------------------------------------------------------------

    def available_resources(self) -> dict[str, str]:
        """name -> type for everything this environment can execute on."""
        if self.client is not None:
            return {m["name"]: m["type"] for m in self.client.resources()}
        return {name: res.resource_type for name, res in self.resources.items()}

    def fetch_target(self, resource: str) -> dict[str, Any]:
        """Fresh spec document for a resource."""
        if self.client is not None:
            return self.client.target(resource)
        if resource in self.resources:
            return self.resources[resource].target()
        if self._is_federated(resource):
            return self.federation.target(resource)
        raise QRMIError(f"unknown resource {resource!r}")

    def _is_federated(self, resource: str) -> bool:
        """Does ``resource`` resolve through the federation fall-through
        rather than the local catalog / daemon?"""
        if (
            self.federation is None
            or self.client is not None
            or resource in self.resources
        ):
            return False
        checker = getattr(self.federation, "has_resource", None)
        if checker is not None:
            # membership probe — avoids materializing full site
            # snapshots on every fetch_target/run call
            return bool(checker(resource))
        return resource in self.federation.available_resources()

    def resolve(
        self, qpu: str | tuple[str, ...] | list[str] | None = None
    ) -> str | tuple[str, ...]:
        """Resolve ``--qpu``; a tuple/list request resolves every leg
        and returns a multi-site placement (see :meth:`run_process`)."""
        return select_resource(
            self.available_resources(),
            requested=qpu,
            env_default=self.default_resource,
            federation=self.federation,
        )

    # -- execution ---------------------------------------------------------------

    def _as_spec(self, program: Any, shots: int | None) -> JobSpec:
        """Normalize any submission payload to a validated
        :class:`~repro.spec.JobSpec` — the one place IR lowering and
        shot resolution happen (an explicit ``shots=`` argument wins
        over the spec's own request)."""
        if isinstance(program, JobSpec):
            spec = program
            if shots is not None and spec.shots != shots:
                from dataclasses import replace

                spec = replace(spec, shots=shots)
        else:
            spec = JobSpec(program=program, shots=shots)
        return spec.validate()

    def run(self, program: Any, qpu: str | None = None, shots: int | None = None) -> RunResult:
        """Execute a program (any SDK object / IR / dict / JobSpec) and
        block for the result.  In daemon mode this requires the task to
        complete within the daemon's simulation — for long QPU queues
        use :meth:`run_process` from inside a simulated job instead."""
        spec = self._as_spec(program, shots)
        if spec.is_multi:
            raise TaskError(
                "multi-unit specs are asynchronous by construction; "
                "use run_process() from a simulated job (or Session.submit)"
            )
        ir = spec.program
        resource = self.resolve(qpu if qpu is not None else spec_request(spec))
        if isinstance(resource, tuple):
            raise TaskError(
                "multi-site placements are asynchronous by construction; "
                "use run_process() from a simulated job"
            )
        target = self.fetch_target(resource)
        ensure_valid(ir, target)
        if self._is_federated(resource):
            # federated execution is asynchronous across site daemons —
            # same constraint as daemon mode inside a simulation
            raise TaskError(
                f"resource {resource!r} lives on a federated site; use "
                "run_process() from a simulated job (or a FederatedClient)"
            )
        if self.client is None:
            return self._run_direct(ir, resource)
        return self._run_daemon(ir, resource)

    def _run_direct(self, ir, resource: str) -> RunResult:
        backend = self.resources[resource]
        task_id = backend.task_start(ir)
        status = backend.task_status(task_id)
        if status is not TaskStatus.COMPLETED:
            task = backend.tasks[task_id]
            raise TaskError(f"task {task_id} ended {status.value}: {task.error}")
        emulation = backend.task_result(task_id)
        return RunResult.from_emulation(emulation, resource, ir.content_hash())

    def _run_daemon(self, ir, resource: str) -> RunResult:
        assert self.client is not None
        task_id = self.client.submit(ir.to_dict(), resource, shots=ir.shots)
        status = self.client.status(task_id)
        if status["state"] != "completed":
            raise TaskError(
                f"task {task_id} not complete (state {status['state']}); "
                "in simulations, drive the simulator or use run_process()"
            )
        return self._daemon_result(task_id, ir, resource)

    def _daemon_result(self, task_id: str, ir, resource: str) -> RunResult:
        assert self.client is not None
        body = self.client.result(task_id)
        status = self.client.status(task_id)
        wait = 0.0
        if status["started_at"] is not None:
            wait = status["started_at"] - status["enqueued_at"]
        return RunResult(
            counts=dict(body["counts"]),
            shots=body["shots"],
            backend=body["backend"],
            resource=resource,
            program_hash=ir.content_hash(),
            queue_wait_s=wait,
            execution_s=float(body["metadata"].get("execution_seconds", 0.0)),
            metadata=dict(body["metadata"]),
        )

    def run_process(
        self,
        program: Any,
        qpu: str | tuple[str, ...] | list[str] | None = None,
        shots: int | None = None,
        poll_interval: float = 1.0,
        iterations: int | None = None,
    ):
        """Generator form of :meth:`run` for daemon/federated mode inside
        a simulation: submits, then polls on the simulated clock until
        the task reaches a terminal state.  Yield it from a job payload.
        In direct mode it completes synchronously (no yields).

        A tuple/list ``qpu`` is a *multi-site placement*: the program
        runs as a malleable federated job of ``iterations`` burst units
        (default: two per named site) spread over exactly those
        ``site/resource`` legs, with the broker's resize loop shifting
        the remaining units between them as load and health move.

        ``program`` may be a :class:`~repro.spec.JobSpec`: its
        ``resource``/``pin``/``sites`` fields stand in for ``qpu=`` and
        its ``iterations`` for ``iterations=`` (explicit arguments
        win)."""
        spec = self._as_spec(program, shots)
        ir = spec.program
        if qpu is None:
            qpu = spec_request(spec)
            if iterations is None and spec.sites is not None:
                iterations = spec.iterations
        resource = self.resolve(qpu)
        if spec.iterations is not None and not isinstance(resource, tuple):
            # a declared multi-unit job must not silently run as one
            # fixed execution — the broker path honors the declaration
            raise TaskError(
                "spec declares iterations but resolves to a single "
                "resource; give sites=('site/resource', ...) legs or "
                "submit through Session/FederationBroker"
            )
        if isinstance(resource, tuple):
            if self.federation is None:
                raise TaskError(
                    "multi-site placements need a federation= handle"
                )
            for name in resource:
                if not self._is_federated(name):
                    # a local catalog name resolves, but it is not a
                    # site the broker can hold a share on — rejecting
                    # beats silently running every unit elsewhere
                    raise TaskError(
                        f"multi-site placement leg {name!r} is not a "
                        "federated site/resource"
                    )
                ensure_valid(ir, self.fetch_target(name))
            from ..federation.client import FederatedClient

            result = yield from FederatedClient(self.federation).run_malleable_process(
                ir,
                iterations if iterations is not None else 2 * len(resource),
                shots=ir.shots,
                sites=resource,
                poll_interval=poll_interval,
            )
            return result
        if iterations is not None:
            raise TaskError(
                "iterations= only applies to multi-site (tuple) placements"
            )
        target = self.fetch_target(resource)
        ensure_valid(ir, target)
        if self._is_federated(resource):
            from ..federation.client import FederatedClient

            # pin to the resolved site/resource: the --qpu contract means
            # the job runs exactly where it was validated, not wherever
            # the routing policy would send it
            result = yield from FederatedClient(self.federation).run_process(
                ir, shots=ir.shots, poll_interval=poll_interval, pin=resource
            )
            return result
        if self.client is None:
            # direct mode: synchronous, but keep the generator protocol
            return self._run_direct(ir, resource)
        task_id = self.client.submit(ir.to_dict(), resource, shots=ir.shots)
        while True:
            status = self.client.status(task_id)
            if status["state"] in ("completed", "failed", "cancelled"):
                break
            yield Timeout(poll_interval)
        if status["state"] != "completed":
            raise TaskError(f"task {task_id} ended {status['state']}")
        return self._daemon_result(task_id, ir, resource)
