"""Uniform run results, independent of where execution happened."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..errors import ReproError

__all__ = ["RunResult", "total_variation_distance"]


@dataclass(frozen=True)
class RunResult:
    """What :meth:`RuntimeEnvironment.run` returns everywhere.

    The same fields whether the execution was a laptop emulator, an HPC
    tensor-network run, or the QPU behind the daemon — the uniformity
    *is* the feature (Figure 1).
    """

    counts: dict[str, int]
    shots: int
    backend: str
    resource: str
    program_hash: str
    queue_wait_s: float = 0.0
    execution_s: float = 0.0
    metadata: dict[str, Any] = field(default_factory=dict)

    def probabilities(self) -> dict[str, float]:
        if self.shots == 0:
            return {}
        return {bits: c / self.shots for bits, c in self.counts.items()}

    def expectation_occupation(self) -> np.ndarray:
        if not self.counts:
            raise ReproError("empty result")
        n = len(next(iter(self.counts)))
        occ = np.zeros(n)
        for bits, count in self.counts.items():
            digits = np.frombuffer(bits.encode(), dtype=np.uint8).astype(np.float64)
            occ += count * (digits - ord("0"))
        return occ / max(1, self.shots)

    def most_frequent(self) -> str:
        if not self.counts:
            raise ReproError("empty result")
        return max(self.counts.items(), key=lambda kv: (kv[1], kv[0]))[0]

    @classmethod
    def from_emulation(
        cls,
        emulation,
        resource: str,
        program_hash: str,
        queue_wait_s: float = 0.0,
    ) -> "RunResult":
        """Adapt an :class:`~repro.emulators.base.EmulationResult`."""
        return cls(
            counts=dict(emulation.counts),
            shots=emulation.shots,
            backend=emulation.backend,
            resource=resource,
            program_hash=program_hash,
            queue_wait_s=queue_wait_s,
            execution_s=float(emulation.metadata.get("execution_seconds", 0.0)),
            metadata=dict(emulation.metadata),
        )


def total_variation_distance(a: dict[str, int] | dict[str, float], b: dict[str, int] | dict[str, float]) -> float:
    """TV distance between two count/probability dicts.

    The portability experiments use this to quantify how far emulator
    results sit from QPU results (and chi=1 mocks from real physics).
    """

    def normalize(d) -> dict[str, float]:
        total = float(sum(d.values()))
        if total <= 0:
            raise ReproError("cannot normalize empty distribution")
        return {k: v / total for k, v in d.items()}

    pa, pb = normalize(a), normalize(b)
    keys = set(pa) | set(pb)
    return 0.5 * sum(abs(pa.get(k, 0.0) - pb.get(k, 0.0)) for k in keys)
