"""The hybrid runtime environment — the paper's core contribution.

"On top of the QRMI-based Slurm plugin ... we introduce a dedicated
runtime environment tailored for hybrid quantum-classical applications.
... For developers, the runtime provides a consistent interface that
supports transparent switching between high-performance emulators and
physical QPUs." (§3.1)

Pieces:

* :class:`RuntimeEnvironment` — the user-facing object.  Two modes
  with one interface: **direct** (developer laptop: QRMI resources
  executed in-process) and **daemon** (HPC: tasks go through the
  middleware's sessions/queue),
* :mod:`backend_select` — the ``--qpu=<resource>`` switching policy,
* :mod:`validation` — point-of-execution program validation against
  freshly fetched device specs (§2.1),
* :mod:`executor` — closed-loop hybrid programs (variational loops),
* :mod:`portability` — machinery proving the same program ran in every
  environment (Figure 1's claim, made checkable),
* :mod:`results` — the uniform run-result container,
* :mod:`client` — the REST client for daemon mode.
"""

from .backend_select import select_resource
from .client import DaemonClient
from .environment import RuntimeEnvironment
from .executor import HybridProgram, OptimizerLoop
from .portability import EnvironmentFingerprint, PortabilityReport
from .results import RunResult, total_variation_distance
from .validation import compare_targets, ensure_valid, validate_program
from .workflow import Workflow, WorkflowResult

__all__ = [
    "DaemonClient",
    "EnvironmentFingerprint",
    "HybridProgram",
    "OptimizerLoop",
    "PortabilityReport",
    "RunResult",
    "RuntimeEnvironment",
    "Workflow",
    "WorkflowResult",
    "compare_targets",
    "ensure_valid",
    "select_resource",
    "total_variation_distance",
    "validate_program",
]
