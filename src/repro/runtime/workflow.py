"""A small hybrid workflow engine (paper §4 future work).

"Future work should ... through collaboration with partners better
support innovative solutions for scheduling, for example via workflow
engine integrations or malleable jobs."

A :class:`Workflow` is a DAG (networkx) of steps:

* **quantum steps** — an SDK program (or a builder reading upstream
  results) executed through a :class:`RuntimeEnvironment` — so the same
  workflow runs on emulators or the QPU, inheriting all of Figure 1's
  portability,
* **classical steps** — a Python callable over upstream results, with
  an optional ``classical_seconds`` cost so cluster simulations account
  for the time.

Execution is dependency-ordered; independent quantum steps submitted in
the same ready-set share the middleware queue concurrently (in daemon
mode), which is precisely the "fine-grained orchestration" hint of
Table 1's pattern C.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import networkx as nx

from ..errors import ReproError
from ..simkernel import Timeout
from .environment import RuntimeEnvironment
from .results import RunResult

__all__ = ["Workflow", "WorkflowResult"]


@dataclass
class _Step:
    name: str
    kind: str  # "quantum" | "classical"
    build: Callable[[dict[str, Any]], Any] | None = None  # quantum builder
    func: Callable[[dict[str, Any]], Any] | None = None   # classical body
    shots: int = 100
    qpu: str | None = None
    classical_seconds: float = 0.0


@dataclass
class WorkflowResult:
    """Outputs of one workflow execution."""

    outputs: dict[str, Any] = field(default_factory=dict)
    order: list[str] = field(default_factory=list)

    def __getitem__(self, step: str) -> Any:
        if step not in self.outputs:
            raise ReproError(f"no output for step {step!r}")
        return self.outputs[step]


class Workflow:
    """DAG of hybrid steps over one RuntimeEnvironment."""

    def __init__(self, name: str = "workflow") -> None:
        self.name = name
        self.graph = nx.DiGraph()
        self._steps: dict[str, _Step] = {}

    # -- construction ------------------------------------------------------

    def add_quantum(
        self,
        name: str,
        build: Callable[[dict[str, Any]], Any],
        after: tuple[str, ...] = (),
        shots: int = 100,
        qpu: str | None = None,
    ) -> "Workflow":
        """Quantum step: ``build(upstream_outputs) -> SDK object``."""
        self._add(_Step(name, "quantum", build=build, shots=shots, qpu=qpu), after)
        return self

    def add_classical(
        self,
        name: str,
        func: Callable[[dict[str, Any]], Any],
        after: tuple[str, ...] = (),
        classical_seconds: float = 0.0,
    ) -> "Workflow":
        """Classical step: ``func(upstream_outputs) -> anything``."""
        self._add(
            _Step(name, "classical", func=func, classical_seconds=classical_seconds),
            after,
        )
        return self

    def _add(self, step: _Step, after: tuple[str, ...]) -> None:
        if step.name in self._steps:
            raise ReproError(f"step {step.name!r} already in workflow")
        for dep in after:
            if dep not in self._steps:
                raise ReproError(f"step {step.name!r} depends on unknown {dep!r}")
        self._steps[step.name] = step
        self.graph.add_node(step.name)
        for dep in after:
            self.graph.add_edge(dep, step.name)
        if not nx.is_directed_acyclic_graph(self.graph):
            self.graph.remove_node(step.name)
            del self._steps[step.name]
            raise ReproError(f"adding step {step.name!r} would create a cycle")

    def steps(self) -> list[str]:
        return list(nx.topological_sort(self.graph))

    def _upstream(self, name: str, outputs: dict[str, Any]) -> dict[str, Any]:
        return {dep: outputs[dep] for dep in self.graph.predecessors(name)}

    # -- synchronous execution (direct mode) ---------------------------------

    def run(self, env: RuntimeEnvironment) -> WorkflowResult:
        result = WorkflowResult()
        for name in self.steps():
            step = self._steps[name]
            upstream = self._upstream(name, result.outputs)
            if step.kind == "quantum":
                assert step.build is not None
                program = step.build(upstream)
                result.outputs[name] = env.run(program, qpu=step.qpu, shots=step.shots)
            else:
                assert step.func is not None
                result.outputs[name] = step.func(upstream)
            result.order.append(name)
        return result

    # -- simulated execution (daemon mode, concurrent ready-set) --------------

    def as_payload(self, env: RuntimeEnvironment):
        """Payload factory for cluster jobs: executes the DAG level by
        level; quantum steps in the same level run concurrently through
        the middleware queue."""

        def payload(ctx):
            sim = ctx.sim
            result = WorkflowResult()
            remaining = set(self._steps)
            while remaining:
                ready = [
                    name
                    for name in remaining
                    if all(dep in result.outputs for dep in self.graph.predecessors(name))
                ]
                if not ready:
                    raise ReproError("workflow deadlock: no ready steps")
                ready.sort()
                procs: list[tuple[str, Any]] = []
                for name in ready:
                    step = self._steps[name]
                    upstream = self._upstream(name, result.outputs)
                    if step.kind == "quantum":
                        assert step.build is not None
                        program = step.build(upstream)
                        gen = env.run_process(program, qpu=step.qpu, shots=step.shots)
                        procs.append((name, sim.spawn(gen, name=f"wf-{name}")))
                    else:
                        assert step.func is not None
                        if step.classical_seconds > 0:
                            yield Timeout(step.classical_seconds)
                        result.outputs[name] = step.func(upstream)
                        result.order.append(name)
                for name, proc in procs:
                    value = yield proc
                    result.outputs[name] = value
                    result.order.append(name)
                remaining -= set(ready)
            return result

        return payload

    @staticmethod
    def counts_of(output: Any) -> dict[str, int]:
        """Convenience: counts from a quantum step output."""
        if isinstance(output, RunResult):
            return output.counts
        raise ReproError(f"not a quantum step output: {type(output).__name__}")
