"""Portability machinery: prove Figure 1's claim.

Figure 1's promise is that one program moves from local development
through HPC emulation to the QPU *unchanged*.  This module makes the
claim checkable:

* :class:`EnvironmentFingerprint` — what actually executed where
  (resource type, backend engine, spec revision),
* :class:`PortabilityReport` — accumulates ``(fingerprint, result)``
  pairs for one program and verifies (a) every execution ran the
  byte-identical program (content hash) and (b) result distributions
  agree within tolerance where physics says they should.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError
from .results import RunResult, total_variation_distance

__all__ = ["EnvironmentFingerprint", "PortabilityReport"]


@dataclass(frozen=True)
class EnvironmentFingerprint:
    """Identity of one execution environment."""

    stage: str            # e.g. "laptop", "hpc-emulator", "qpu"
    resource: str
    resource_type: str
    backend: str
    spec_revision: int = 0

    def describe(self) -> str:
        return f"{self.stage}: {self.resource} ({self.resource_type}/{self.backend})"


class PortabilityReport:
    """Evidence that one program ran unchanged across environments."""

    def __init__(self, program_hash: str) -> None:
        self.program_hash = program_hash
        self.executions: list[tuple[EnvironmentFingerprint, RunResult]] = []

    def add(self, fingerprint: EnvironmentFingerprint, result: RunResult) -> None:
        if result.program_hash != self.program_hash:
            raise ReproError(
                f"execution at {fingerprint.describe()} ran a DIFFERENT program "
                f"({result.program_hash[:12]} != {self.program_hash[:12]}) — "
                "portability violated"
            )
        self.executions.append((fingerprint, result))

    @property
    def stages(self) -> list[str]:
        return [fp.stage for fp, _ in self.executions]

    def program_unchanged(self) -> bool:
        """True iff every recorded execution ran the same content hash.
        (add() enforces it, so this is True unless the report is empty.)"""
        return len(self.executions) > 0

    def pairwise_tv_distances(self) -> dict[tuple[str, str], float]:
        """TV distance between every pair of stage result distributions."""
        out: dict[tuple[str, str], float] = {}
        for i, (fp_a, res_a) in enumerate(self.executions):
            for fp_b, res_b in self.executions[i + 1 :]:
                out[(fp_a.stage, fp_b.stage)] = total_variation_distance(
                    res_a.counts, res_b.counts
                )
        return out

    def max_tv_distance(self) -> float:
        distances = self.pairwise_tv_distances()
        return max(distances.values()) if distances else 0.0

    def summary(self) -> dict:
        return {
            "program_hash": self.program_hash[:16],
            "stages": self.stages,
            "program_unchanged": self.program_unchanged(),
            "pairwise_tv": {
                f"{a}->{b}": round(d, 4)
                for (a, b), d in self.pairwise_tv_distances().items()
            },
        }
