"""Closed-loop hybrid programs.

A :class:`HybridProgram` is the canonical hybrid workload shape of the
paper's Table 1: a classical optimizer proposing parameters, a quantum
execution evaluating them, repeated to convergence.  The quantum side
goes through a :class:`~repro.runtime.environment.RuntimeEnvironment`,
so the same HybridProgram object runs on a laptop emulator, an HPC
tensor-network node, or the production QPU without modification —
which is exactly Figure 1's lifecycle.

Two execution forms:

* :meth:`run` — synchronous (direct mode),
* :meth:`as_payload` — a generator factory usable as a Slurm job
  payload (daemon mode inside the cluster simulation), where quantum
  tasks wait in the middleware queue and classical post-processing
  takes simulated CPU time.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..errors import ReproError
from ..simkernel import Timeout
from .environment import RuntimeEnvironment
from .results import RunResult

__all__ = ["HybridProgram", "OptimizerLoop"]


@dataclass
class OptimizerLoop:
    """Derivative-free classical optimizer state (coordinate search).

    Deliberately simple and deterministic: the experiments measure the
    *system*, not optimizer quality.  ``propose`` returns the next
    parameter vector; ``observe`` feeds back the objective value.
    """

    initial: np.ndarray
    step: float = 0.2
    shrink: float = 0.6
    min_step: float = 1e-3
    best_params: np.ndarray = field(init=False)
    best_value: float = field(default=float("inf"), init=False)
    evaluations: int = field(default=0, init=False)
    _direction: int = field(default=0, init=False)
    _sign: float = field(default=1.0, init=False)
    _pending: np.ndarray | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        self.initial = np.asarray(self.initial, dtype=float)
        self.best_params = self.initial.copy()

    @property
    def converged(self) -> bool:
        return self.step < self.min_step

    def propose(self) -> np.ndarray:
        if self.evaluations == 0:
            self._pending = self.best_params.copy()
        else:
            candidate = self.best_params.copy()
            candidate[self._direction] += self._sign * self.step
            self._pending = candidate
        return self._pending.copy()

    def observe(self, value: float) -> None:
        if self._pending is None:
            raise ReproError("observe() called before propose()")
        self.evaluations += 1
        improved = value < self.best_value
        if improved:
            self.best_value = value
            self.best_params = self._pending.copy()
        else:
            # flip sign, then advance coordinate, then shrink
            if self._sign > 0:
                self._sign = -1.0
            else:
                self._sign = 1.0
                self._direction += 1
                if self._direction >= len(self.best_params):
                    self._direction = 0
                    self.step *= self.shrink
        self._pending = None


class HybridProgram:
    """Quantum-classical closed loop over a RuntimeEnvironment.

    Parameters
    ----------
    build_program:
        ``(params) -> SDK object / AnalogProgram`` — the quantum ansatz.
    objective:
        ``(RunResult) -> float`` — scalar to minimize.
    optimizer:
        the classical loop state.
    classical_seconds_per_iter:
        simulated CPU post-processing per iteration (drives the Table-1
        pattern classification when run in the cluster).
    max_iterations:
        loop bound.
    """

    def __init__(
        self,
        build_program: Callable[[np.ndarray], Any],
        objective: Callable[[RunResult], float],
        optimizer: OptimizerLoop,
        shots: int = 200,
        max_iterations: int = 20,
        classical_seconds_per_iter: float = 0.0,
        name: str = "hybrid-program",
    ) -> None:
        if max_iterations < 1:
            raise ReproError("max_iterations must be >= 1")
        self.build_program = build_program
        self.objective = objective
        self.optimizer = optimizer
        self.shots = shots
        self.max_iterations = max_iterations
        self.classical_seconds_per_iter = classical_seconds_per_iter
        self.name = name
        self.history: list[tuple[np.ndarray, float]] = []

    # -- synchronous form ------------------------------------------------------

    def run(self, env: RuntimeEnvironment, qpu: str | None = None) -> dict[str, Any]:
        for _ in range(self.max_iterations):
            if self.optimizer.converged:
                break
            params = self.optimizer.propose()
            result = env.run(self.build_program(params), qpu=qpu, shots=self.shots)
            value = self.objective(result)
            self.optimizer.observe(value)
            self.history.append((params, value))
        return self.summary()

    # -- simulated-job form -------------------------------------------------------

    def as_payload(self, env: RuntimeEnvironment, qpu: str | None = None):
        """Payload factory for :class:`~repro.cluster.job.JobSpec`.

        The returned generator submits quantum tasks through the daemon
        (simulated queueing + QPU time) and sleeps for the classical
        post-processing between iterations.
        """

        def payload(ctx):
            for _ in range(self.max_iterations):
                if self.optimizer.converged:
                    break
                params = self.optimizer.propose()
                result = yield from env.run_process(
                    self.build_program(params), qpu=qpu, shots=self.shots
                )
                value = self.objective(result)
                self.optimizer.observe(value)
                self.history.append((params, value))
                if self.classical_seconds_per_iter > 0:
                    yield Timeout(self.classical_seconds_per_iter)
            return self.summary()

        return payload

    def summary(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "best_value": self.optimizer.best_value,
            "best_params": self.optimizer.best_params.tolist(),
            "iterations": len(self.history),
            "evaluations": self.optimizer.evaluations,
        }
