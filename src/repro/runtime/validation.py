"""Point-of-execution program validation.

Paper §2.1: "quantum processors are subject to calibration drift over
time ... Ensuring program validity at the point of execution thus
becomes a key requirement."  The runtime therefore re-fetches the
target's spec document *immediately before* execution and validates the
program against it — development-time validation is never trusted.

:func:`compare_targets` additionally reports *what changed* between the
specs a program was developed against and the specs at execution time,
so users can see why a once-valid program now fails.
"""

from __future__ import annotations

from ..errors import ValidationError
from ..qpu.specs import DeviceSpecs
from ..sdk.ir import AnalogProgram

__all__ = ["compare_targets", "ensure_valid", "validate_program"]


def validate_program(program: AnalogProgram, target: dict | DeviceSpecs) -> list[str]:
    """All violations of ``program`` against ``target`` (empty = valid)."""
    specs = target if isinstance(target, DeviceSpecs) else DeviceSpecs.from_dict(target)
    return (
        specs.validate_register(program.register)
        + specs.validate_schedule(list(program.segments))
        + specs.validate_shots(program.shots)
    )


def ensure_valid(program: AnalogProgram, target: dict | DeviceSpecs) -> None:
    """Raise :class:`ValidationError` listing every violation."""
    violations = validate_program(program, target)
    if violations:
        specs = target if isinstance(target, DeviceSpecs) else DeviceSpecs.from_dict(target)
        raise ValidationError(
            f"program {program.name!r} invalid for {specs.name!r}: "
            f"{len(violations)} violation(s)",
            violations=violations,
        )


_COMPARED_FIELDS = (
    "max_qubits",
    "min_atom_distance",
    "max_radius",
    "max_rabi",
    "min_detuning",
    "max_detuning",
    "max_sequence_duration",
    "max_shots_per_task",
    "shot_rate_hz",
)


def compare_targets(dev: dict | DeviceSpecs, prod: dict | DeviceSpecs) -> dict[str, tuple]:
    """Field-by-field diff of two spec documents: {field: (dev, prod)}.

    Empty dict means the execution target matches the development
    target on every constraint that affects validity.
    """
    dev_specs = dev if isinstance(dev, DeviceSpecs) else DeviceSpecs.from_dict(dev)
    prod_specs = prod if isinstance(prod, DeviceSpecs) else DeviceSpecs.from_dict(prod)
    diff: dict[str, tuple] = {}
    for field_name in _COMPARED_FIELDS:
        a = getattr(dev_specs, field_name)
        b = getattr(prod_specs, field_name)
        if a != b:
            diff[field_name] = (a, b)
    return diff
