"""Exception hierarchy for the repro HPC-QC stack.

Every layer raises subclasses of :class:`ReproError` so callers can catch
layer-specific failures (``SchedulerError``, ``DeviceError`` ...) or the
whole family at once.  Error classes deliberately carry structured fields
(job ids, resource names) so the middleware daemon can serialize them into
REST error bodies without string parsing.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro stack."""


class ConfigError(ReproError):
    """Invalid or missing configuration (environment variables, files)."""


# ---------------------------------------------------------------------------
# Simulation kernel
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for discrete-event simulation kernel errors."""


class ClockError(SimulationError):
    """Attempt to move simulated time backwards or schedule in the past."""


class ProcessError(SimulationError):
    """A simulated process misbehaved (e.g. yielded an unknown command)."""


# ---------------------------------------------------------------------------
# Cluster / resource manager
# ---------------------------------------------------------------------------


class SchedulerError(ReproError):
    """Base class for resource-manager errors."""


class JobError(SchedulerError):
    """Problem with a job definition or lifecycle transition."""

    def __init__(self, message: str, job_id: int | None = None) -> None:
        super().__init__(message)
        self.job_id = job_id


class InvalidJobTransition(JobError):
    """A job state machine transition that is not allowed."""


class ResourceUnavailable(SchedulerError):
    """Requested resources can never be satisfied by the cluster."""


class PartitionError(SchedulerError):
    """Unknown partition or partition misconfiguration."""


class GresError(SchedulerError):
    """Generic-resource (GRES) accounting violation."""


class LicenseError(SchedulerError):
    """License pool accounting violation."""


class AlgorithmError(SchedulerError):
    """Scheduling-algorithm registry misuse (unknown name, bad decision)."""


# ---------------------------------------------------------------------------
# QPU device / emulators
# ---------------------------------------------------------------------------


class DeviceError(ReproError):
    """Base class for QPU device errors."""


class CalibrationError(DeviceError):
    """Device is out of calibration or a calibration run failed."""


class RegisterError(DeviceError):
    """Invalid atom register geometry for the device."""


class PulseError(DeviceError):
    """Pulse/waveform violates device constraints."""


class EmulatorError(ReproError):
    """Base class for emulator backend errors."""


class BondDimensionError(EmulatorError):
    """Requested bond dimension is invalid for the MPS emulator."""


# ---------------------------------------------------------------------------
# QRMI / runtime / daemon
# ---------------------------------------------------------------------------


class QRMIError(ReproError):
    """Base class for Quantum Resource Management Interface errors."""


class ResourceNotFound(QRMIError):
    """The named QRMI resource is not configured in the environment."""


class AcquisitionError(QRMIError):
    """Resource could not be acquired (busy, offline, unauthorized)."""


class TaskError(QRMIError):
    """A QRMI task failed or was addressed with an unknown id."""


class ValidationError(ReproError):
    """A program failed validation against current device specs."""

    def __init__(self, message: str, violations: list[str] | None = None) -> None:
        super().__init__(message)
        self.violations = list(violations or [])


class DaemonError(ReproError):
    """Base class for middleware daemon errors."""


class AuthError(DaemonError):
    """Missing/invalid session token or insufficient privilege."""


class SessionError(DaemonError):
    """Unknown or expired session."""


class QueueError(DaemonError):
    """Middleware queue misuse (unknown job, bad priority class)."""


# ---------------------------------------------------------------------------
# Federation
# ---------------------------------------------------------------------------


class FederationError(ReproError):
    """Base class for multi-site federation errors."""


class SiteUnavailable(FederationError):
    """No registered site can currently accept the job."""

    def __init__(self, message: str, site: str | None = None) -> None:
        super().__init__(message)
        self.site = site


class PlacementError(FederationError):
    """A federated job exhausted its placement attempts."""

    def __init__(self, message: str, job_id: str | None = None) -> None:
        super().__init__(message)
        self.job_id = job_id


# ---------------------------------------------------------------------------
# Accounting
# ---------------------------------------------------------------------------


class AccountingError(ReproError):
    """Base class for federated accounting / quota errors."""


class BudgetExceededError(AccountingError):
    """A tenant's federation-wide budget is exhausted; submission refused."""

    def __init__(self, message: str, tenant: str | None = None) -> None:
        super().__init__(message)
        self.tenant = tenant


# ---------------------------------------------------------------------------
# Submission specs
# ---------------------------------------------------------------------------


class SpecError(ReproError):
    """A declarative :class:`~repro.spec.JobSpec` failed validation."""


# ---------------------------------------------------------------------------
# SDK / IR
# ---------------------------------------------------------------------------


class SDKError(ReproError):
    """Base class for front-end SDK errors."""


class IRError(SDKError):
    """Malformed intermediate representation."""


class TranslationError(SDKError):
    """A program could not be lowered between SDK and IR."""


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------


class ObservabilityError(ReproError):
    """Base class for telemetry stack errors."""


class TSDBError(ObservabilityError):
    """Time-series database misuse (bad timestamps, unknown series)."""


class MetricError(ObservabilityError):
    """Metric registry misuse (duplicate registration, bad labels)."""


class AlertError(ObservabilityError):
    """Alert rule configuration error."""
