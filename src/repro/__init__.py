"""repro — reproduction of *Towards a user-centric HPC-QC environment* (SC'25 workshops).

Top-level convenience re-exports cover the public API a downstream user
needs for the quickstart path:

>>> from repro import RuntimeEnvironment, DictConfig
>>> env = RuntimeEnvironment.from_config(DictConfig({...}))
>>> result = env.run(program, qpu="local-emulator")

Subpackages (bottom-up):

``simkernel``       discrete-event simulation substrate
``cluster``         Slurm-like batch resource manager
``qpu``             neutral-atom QPU device model (specs, drift, telemetry)
``emulators``       state-vector + MPS emulator suite
``qrmi``            vendor-neutral Quantum Resource Management Interface
``sdk``             multi-SDK frontends (pulser-like, qiskit-like) + shared IR
``daemon``          middleware REST daemon with second-level scheduling
``runtime``         THE core contribution: portable hybrid runtime
``spec``            declarative JobSpec: the one submission payload
``session``         Session/JobHandle facade over every backend
``federation``      multi-site broker: route jobs across whole sites
``scheduling``      workload-pattern taxonomy, interleaving, malleability
``observability``   metrics / TSDB / dashboards / alerting / drift detection
``workloads``       synthetic hybrid workload generators
``analysis``        statistics + report tables for the benchmark harness
"""

from .config import DictConfig, EnvConfig, LayeredConfig, ResourceConfig
from .errors import ReproError

__version__ = "0.1.0"

__all__ = [
    "DictConfig",
    "EnvConfig",
    "LayeredConfig",
    "ReproError",
    "ResourceConfig",
    "__version__",
]


def __getattr__(name: str):
    # Lazy import of the heavier layers so `import repro` stays cheap.
    if name == "RuntimeEnvironment":
        from .runtime.environment import RuntimeEnvironment

        return RuntimeEnvironment
    if name == "HybridProgram":
        from .runtime.executor import HybridProgram

        return HybridProgram
    if name == "JobSpec":
        from .spec import JobSpec

        return JobSpec
    if name == "Session":
        from .session import Session

        return Session
    if name == "JobHandle":
        from .session import JobHandle

        return JobHandle
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
