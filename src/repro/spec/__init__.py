"""Declarative submission specs: one payload for every surface.

* :class:`JobSpec` — the frozen job description the daemon client, the
  federation broker, the cloud gateway, and cluster job-script
  generation all accept (see :mod:`repro.session` for the facade that
  routes a spec to the right backend),
* :data:`DEFAULT_SHOTS` — the federation-wide shot fallback.
"""

from .jobspec import DEFAULT_SHOTS, JobSpec, parse_site_leg

__all__ = ["DEFAULT_SHOTS", "JobSpec", "parse_site_leg"]
