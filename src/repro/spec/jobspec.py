"""The declarative job description every submission surface accepts.

Before this module the repo had four independently-evolved ways to hand
work to the system — ``DaemonClient.submit``, ``FederatedClient.submit``
/ ``submit_malleable``, ``CloudGateway.submit``, and cluster batch
scripts — each with its own kwarg soup.  :class:`JobSpec` collapses
them: one frozen dataclass carries the program, the shot request, the
tenant identity, the placement constraints (``pin`` / ``affinity_key``
/ ``sites``), the elasticity declaration (``iterations`` /
``min_units`` / ``max_units`` / ``malleable``), a budget hint, and the
priority class.  Every surface consumes the same object; the legacy
kwarg signatures survive as thin shims over
:meth:`JobSpec.from_legacy_kwargs`.

Two invariants the rest of the stack relies on:

* :meth:`validate` is the **single** place shot counts are resolved
  (explicit request > the program's own shot count > the federation
  default) and programs are normalized to IR — callers never re-derive
  either, so the "silently defaults to 100" class of bug cannot recur,
* ``JobSpec.from_dict(spec.to_dict()) == spec`` holds for every
  validated spec, so specs travel losslessly through REST bodies,
  batch-script comments, and accounting archives.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from ..errors import SpecError

__all__ = ["DEFAULT_SHOTS", "JobSpec"]

#: the federation-wide fallback when neither the spec nor the program
#: carries a shot request (kept equal to the historic intake default)
DEFAULT_SHOTS = 100


def parse_site_leg(leg: str) -> tuple[str, str | None]:
    """``'site'`` or ``'site/resource'`` -> ``(site, resource-or-None)``."""
    site, _, resource = leg.partition("/")
    if not site:
        raise SpecError(f"bad site leg {leg!r}: empty site name")
    return site, (resource or None)


@dataclass(frozen=True)
class JobSpec:
    """One declarative description of a hybrid job.

    Field groups (everything beyond ``program`` is optional):

    * **payload** — ``program`` (any SDK object, IR, or IR dict) and
      ``shots``,
    * **identity** — ``tenant`` (accounting principal + daemon user;
      ``None`` lets the submitting client fill in its own identity)
      and ``priority_class``,
    * **placement** — ``resource`` (explicit target, local name or
      qualified ``site/resource``), ``pin`` (hard ``site/resource``
      placement: honored or failed, never rerouted), ``affinity_key``
      (sticky-routing hint), ``sites`` (restrict a multi-unit job to
      these sites; legs may pin resources as ``site/resource``),
    * **elasticity** — ``iterations`` (``None`` = fixed-size single
      job; an int makes the job a sequence of burst units the broker
      spreads across sites), ``malleable`` (resize the unit split
      mid-flight vs. a rigid round-robin split), ``min_units`` /
      ``max_units`` (bounds on concurrently in-flight units),
    * **cost** — ``budget_hint`` (the declared cost of the whole job;
      admission rejects early when it exceeds the tenant's remaining
      federation budget),
    * **scheduling** — ``algorithm`` (a registered scheduling-algorithm
      name; picks the broker's placement discipline for this job, or
      the elastic negotiation strategy for malleable jobs — see
      :mod:`repro.scheduling.algorithms`).

    On a fixed-size spec, ``min_units`` (with ``malleable=True``, the
    default) declares **convertibility**: a saturated federation may
    convert the job into at least that many malleable units instead of
    queueing it whole (the fixed→malleable knob).
    """

    program: Any
    shots: int | None = None
    tenant: str | None = None
    resource: str | None = None
    pin: str | None = None
    affinity_key: str | None = None
    sites: tuple[str, ...] | None = None
    iterations: int | None = None
    malleable: bool = True
    min_units: int | None = None
    max_units: int | None = None
    priority_class: str = "development"
    budget_hint: float | None = None
    algorithm: str | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    # -- derived views --------------------------------------------------------

    @property
    def is_multi(self) -> bool:
        """Does this spec describe a multi-unit (malleable-path) job?"""
        return self.iterations is not None or self.sites is not None

    def resolved_shots(self) -> int:
        """The shot count this spec executes at (see :meth:`validate`)."""
        return self.validate().shots  # type: ignore[return-value]

    # -- validation -----------------------------------------------------------

    def validate(self, default_tenant: str = "fed-user") -> "JobSpec":
        """Check every field and return the normalized spec.

        Normalization: the program is lowered to IR, ``shots`` becomes
        the resolved integer (explicit request > program's own count >
        :data:`DEFAULT_SHOTS`), ``tenant`` is filled from
        ``default_tenant`` when unset, ``sites`` becomes a tuple, and a
        ``sites``-restricted spec without ``iterations`` defaults to
        two units per leg.  Idempotent — and O(1) on a spec this method
        already produced, so the submit path can re-validate defensively
        at every layer without re-lowering the program.
        """
        if getattr(self, "_validated", False):
            return self
        from ..sdk.translate import to_ir

        ir = to_ir(self.program, shots=self.shots or DEFAULT_SHOTS)
        shots = self.shots if self.shots is not None else ir.shots
        if shots < 1:
            raise SpecError(f"shots must be >= 1, got {shots}")
        if ir.shots != shots:
            ir = ir.with_shots(shots)
        tenant = self.tenant if self.tenant is not None else default_tenant
        if not tenant:
            raise SpecError("tenant must be a non-empty string")
        if self.pin is not None and "/" not in self.pin:
            raise SpecError(
                f"pin must be a qualified 'site/resource' name, got {self.pin!r}"
            )
        if self.pin is not None and self.resource is not None and self.pin != self.resource:
            raise SpecError(
                f"conflicting targets: pin={self.pin!r} vs resource={self.resource!r}"
            )
        sites = self.sites
        if sites is not None:
            sites = tuple(sites)
            if not sites:
                raise SpecError("sites restriction cannot be empty")
            names = [parse_site_leg(leg)[0] for leg in sites]
            if len(set(names)) != len(names):
                raise SpecError(f"duplicate site in placement: {sorted(names)}")
        iterations = self.iterations
        if iterations is None and sites is not None:
            iterations = 2 * len(sites)
        if iterations is not None and iterations < 1:
            raise SpecError(f"iterations must be >= 1, got {iterations}")
        if self.pin is not None and iterations is not None:
            # the malleable path places per-unit through site legs, so a
            # pin would be silently ignored — the --qpu contract says
            # honored or failed, never dropped
            raise SpecError(
                "pin applies to fixed-size jobs only; restrict a "
                "multi-unit job with sites=('site/resource', ...) legs"
            )
        if (
            (self.min_units is not None or self.max_units is not None)
            and iterations is None
            and not self.malleable
        ):
            # on a malleable fixed spec the bounds declare fixed→malleable
            # convertibility; a rigid spec has no use for them
            raise SpecError(
                "min_units/max_units apply to multi-unit jobs or "
                "convertible (malleable) fixed jobs"
            )
        if self.min_units is not None and self.min_units < 1:
            raise SpecError(f"min_units must be >= 1, got {self.min_units}")
        if self.max_units is not None and self.max_units < 1:
            raise SpecError(f"max_units must be >= 1, got {self.max_units}")
        if (
            self.min_units is not None
            and self.max_units is not None
            and self.min_units > self.max_units
        ):
            raise SpecError(
                f"min_units ({self.min_units}) exceeds max_units ({self.max_units})"
            )
        if self.budget_hint is not None and self.budget_hint < 0:
            raise SpecError(f"budget_hint must be >= 0, got {self.budget_hint}")
        # priority classes are owned by the daemon queue; parse to validate
        from ..daemon.queue import PriorityClass

        PriorityClass.parse(self.priority_class)
        if self.algorithm is not None:
            from ..scheduling.algorithms import available

            if self.algorithm not in available():
                raise SpecError(
                    f"unknown scheduling algorithm {self.algorithm!r}; "
                    f"available: {available()}"
                )
        validated = replace(
            self,
            program=ir,
            shots=shots,
            tenant=tenant,
            sites=sites,
            iterations=iterations,
        )
        # frozen dataclass: mark through object.__setattr__ — the flag
        # only short-circuits re-validation, it never travels through
        # to_dict/replace, so equality and round-trips are unaffected
        object.__setattr__(validated, "_validated", True)
        return validated

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form; the program travels as its IR dict."""
        from ..sdk.translate import to_ir

        return {
            "program": to_ir(self.program, shots=self.shots or DEFAULT_SHOTS).to_dict(),
            "shots": self.shots,
            "tenant": self.tenant,
            "resource": self.resource,
            "pin": self.pin,
            "affinity_key": self.affinity_key,
            "sites": list(self.sites) if self.sites is not None else None,
            "iterations": self.iterations,
            "malleable": self.malleable,
            "min_units": self.min_units,
            "max_units": self.max_units,
            "priority_class": self.priority_class,
            "budget_hint": self.budget_hint,
            "algorithm": self.algorithm,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobSpec":
        from ..sdk.ir import AnalogProgram

        try:
            program = data["program"]
        except KeyError as exc:
            raise SpecError("spec dict is missing 'program'") from exc
        if isinstance(program, dict):
            program = AnalogProgram.from_dict(program)
        sites = data.get("sites")
        return cls(
            program=program,
            shots=data.get("shots"),
            tenant=data.get("tenant"),
            resource=data.get("resource"),
            pin=data.get("pin"),
            affinity_key=data.get("affinity_key"),
            sites=tuple(sites) if sites is not None else None,
            iterations=data.get("iterations"),
            malleable=bool(data.get("malleable", True)),
            min_units=data.get("min_units"),
            max_units=data.get("max_units"),
            priority_class=str(data.get("priority_class", "development")),
            budget_hint=data.get("budget_hint"),
            algorithm=data.get("algorithm"),
            metadata=dict(data.get("metadata", {})),
        )

    # -- the legacy-kwarg shim ------------------------------------------------

    @classmethod
    def from_legacy_kwargs(
        cls,
        program: Any,
        *,
        shots: int | None = None,
        owner: str | None = None,
        tenant: str | None = None,
        affinity_key: str | None = None,
        pin: str | None = None,
        resource: str | None = None,
        sites: tuple[str, ...] | list[str] | None = None,
        iterations: int | None = None,
        malleable: bool = True,
        priority_class: str = "development",
        metadata: dict[str, Any] | None = None,
    ) -> "JobSpec":
        """Adapter for the pre-spec kwarg surfaces.

        Every deprecated submit signature (broker, federated client,
        daemon client, cloud gateway) funnels through here, so the
        kwargs keep working while the broker only ever sees specs.
        """
        return cls(
            program=program,
            shots=shots,
            tenant=tenant if tenant is not None else owner,
            resource=resource,
            pin=pin,
            affinity_key=affinity_key,
            sites=tuple(sites) if sites is not None else None,
            iterations=iterations,
            malleable=malleable,
            priority_class=priority_class,
            metadata=dict(metadata or {}),
        )
