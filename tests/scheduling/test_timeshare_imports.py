"""Regression: importing the timeshare algorithm must not load the daemon.

archlint's layering rule caught a module-import-time cycle
``scheduling -> daemon -> scheduling``: ``scheduling/timeshare.py``
imported ``daemon.queue`` at the top level just to read a state enum it
only compares by value.  The import is now deferred to TYPE_CHECKING
and the comparison uses the enum's string value, so a scheduling
algorithm (and, per the ROADMAP's sharded-broker arc, a shard that
only schedules) loads without dragging the daemon in.
"""

import os
import subprocess
import sys


def test_timeshare_import_does_not_pull_daemon(tmp_path):
    code = (
        "import sys\n"
        "import repro.scheduling.timeshare\n"
        "loaded = sorted(m for m in sys.modules if m.startswith('repro.daemon'))\n"
        "assert not loaded, f'daemon modules loaded: {loaded}'\n"
    )
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run(
        [sys.executable, "-c", code],
        env=env,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_timeshare_queued_value_matches_daemon_enum():
    from repro.daemon.queue import TaskState
    from repro.scheduling.timeshare import _QUEUED

    # the deferred import trades the enum identity for its value; this
    # pins the two from drifting apart
    assert TaskState.QUEUED.value == _QUEUED
