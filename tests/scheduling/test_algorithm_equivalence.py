"""Legacy adapters are bit-identical to the loops they replaced.

Three equivalence proofs, one per scheduling loop:

* daemon — ``FifoPriority`` over ``daemon_views`` consumes the queue in
  exactly ``MiddlewareQueue.pop`` order, including requeued preempted
  tasks going to the back of their class,
* cluster — ``AlgorithmScheduler`` (default ``"cluster-legacy"``)
  produces the same ``SchedulingDecision`` as a plain ``Scheduler`` on
  randomized traces,
* broker — the default ``PolicyRouting`` adapter routes through the
  wrapped policy verbatim, preserving stateful cursors (round-robin).
"""

import random
import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "federation"))

from repro.cluster import Job, LicensePool, Node, Partition
from repro.cluster import JobSpec as ClusterJobSpec
from repro.cluster.scheduler import AlgorithmScheduler, Scheduler
from repro.daemon.queue import MiddlewareQueue, PriorityClass, TaskState
from repro.scheduling.algorithms import FifoPriority, daemon_views


def _mk_program():
    # the queue never executes in these tests; a light stub suffices
    class _P:
        shots = 10

        def to_dict(self):
            return {}

    return _P()


def _fill_queue(queue, spec, now=0.0, preempt=3):
    """Submit per the priority script, then preempt + requeue the first
    ``preempt`` tasks in pop order — mirroring the real daemon flow
    (only a popped/running task can be preempted), so requeued tasks
    must fall to the back of their priority class in both disciplines."""
    tasks = []
    for i, priority in enumerate(spec):
        task = queue.submit(
            f"s{i}", "u", _mk_program(), priority, "qpu", now=now + i
        )
        tasks.append(task)
    for _ in range(min(preempt, len(tasks))):
        task = queue.pop()
        task.state = TaskState.RUNNING
        task.state = TaskState.PREEMPTED
        task.preempt_count += 1
        queue.requeue(task, now=50.0)
    return tasks


class TestDaemonPopOrderEquivalence:
    def _drain_by_pop(self, queue):
        order = []
        while True:
            task = queue.pop()
            if task is None:
                return order
            order.append(task.task_id)
            task.state = TaskState.RUNNING

    def _drain_by_algorithm(self, queue):
        algorithm = FifoPriority()
        order = []
        while True:
            eligible = queue.queued_tasks()
            if not eligible:
                return order
            pending, resources, system = daemon_views(eligible, now=0.0)
            decisions = algorithm.schedule(pending, resources, system)
            starts = [d for d in decisions if d.kind in ("start", "backfill")]
            if not starts:
                return order
            chosen = queue.get(starts[0].job_id)
            order.append(chosen.task_id)
            chosen.state = TaskState.RUNNING
            queue.prune()

    @pytest.mark.parametrize("seed", range(5))
    def test_algorithm_order_equals_pop_order(self, seed):
        rng = random.Random(seed)
        spec = [rng.choice(list(PriorityClass)) for _ in range(12)]
        q1, q2 = MiddlewareQueue(), MiddlewareQueue()
        _fill_queue(q1, spec)
        _fill_queue(q2, spec)
        assert self._drain_by_pop(q1) == self._drain_by_algorithm(q2)


def _random_cluster(seed):
    rng = random.Random(seed)
    nodes = {
        "batch": [Node(f"b{i}", cpus=8) for i in range(4)],
        "debug": [Node(f"d{i}", cpus=4) for i in range(2)],
    }
    partitions = {
        "batch": Partition("batch", nodes["batch"], priority_tier=1),
        "debug": Partition("debug", nodes["debug"], priority_tier=0),
    }
    licenses = LicensePool({"qpu_share": 20})
    pending = []
    for i in range(rng.randint(4, 12)):
        part = rng.choice(["batch", "debug"])
        spec = ClusterJobSpec(
            name=f"j{i}",
            cpus=rng.choice([1, 2, 4]),
            num_nodes=rng.choice([1, 1, 1, 2]),
            duration=rng.uniform(5.0, 50.0),
            time_limit=rng.uniform(50.0, 200.0),
            partition=part,
            priority=rng.randint(0, 10),
            licenses=(
                (("qpu_share", rng.randint(1, 3)),) if rng.random() < 0.5 else ()
            ),
        )
        pending.append(Job(100 + i, spec, submit_time=float(i)))
    # some running occupancy so backfill and shadow paths trigger
    running = []
    for i in range(rng.randint(0, 3)):
        node = rng.choice(nodes["batch"])
        spec = ClusterJobSpec(
            name=f"r{i}", cpus=4, duration=100.0, time_limit=100.0, partition="batch"
        )
        job = Job(i + 1, spec, submit_time=0.0)
        from repro.cluster import JobState as CJS

        job.transition(CJS.RUNNING, 0.0)
        job.allocated_nodes = [node.name]
        job.effective_time_limit = 100.0
        node.allocate(job.job_id, 4, 1_000)
        running.append(job)
    return pending, running, partitions, licenses


class TestClusterPlanEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_legacy_adapter_plans_identically(self, seed):
        pending, running, partitions, licenses = _random_cluster(seed)
        legacy = Scheduler().plan(pending, running, partitions, licenses, now=10.0)
        adapted = AlgorithmScheduler().plan(
            pending, running, partitions, licenses, now=10.0
        )
        assert [
            (p.job_id, p.node_names) for p in adapted.starts
        ] == [(p.job_id, p.node_names) for p in legacy.starts]
        assert adapted.backfilled == legacy.backfilled
        assert adapted.head_blocked == legacy.head_blocked
        assert adapted.shadow_time == legacy.shadow_time


class TestBrokerRoutingEquivalence:
    def _build(self, policy):
        from fedutil import build_federation

        return build_federation(n_sites=3, policy=policy)

    def test_round_robin_cursor_preserved(self):
        """The adapter path must advance a stateful policy exactly as
        the direct call did: round-robin keeps strict rotation."""
        from repro.federation.policies import RoundRobinPolicy

        sys_policy = RoundRobinPolicy()
        sim, registry, broker, sites = self._build(sys_policy)
        from fedutil import make_program

        chosen = []
        for _ in range(6):
            job_id = broker.submit(make_program(shots=1))
            chosen.append(broker.job(job_id).current.site)
        # strict rotation over the healthy candidate set
        assert chosen == [f"site-{i % 3}" for i in range(6)]

    def test_adapter_matches_direct_policy_choice(self):
        """Same trace through the algorithm adapter and through a twin
        broker whose _choose_site is forced to the direct policy call."""
        from repro.federation.policies import LeastQueuePolicy

        sim_a, _, broker_a, _ = self._build(LeastQueuePolicy())
        sim_b, _, broker_b, _ = self._build(LeastQueuePolicy())
        broker_b._choose_site = lambda job, candidates: broker_b.policy.choose(
            job, candidates, broker_b.sim.now
        )
        from fedutil import make_program

        for step in range(8):
            program = make_program(shots=5)
            id_a = broker_a.submit(program)
            id_b = broker_b.submit(program)
            assert (
                broker_a.job(id_a).current.site == broker_b.job(id_b).current.site
            ), step
            sim_a.run(until=float(step + 1))
            sim_b.run(until=float(step + 1))


class TestNumpySeedIsolation:
    def test_module_does_not_touch_global_rng(self):
        # the adapters must not consume numpy's global stream
        state = np.random.get_state()[1].copy()
        q = MiddlewareQueue()
        _fill_queue(q, [PriorityClass.PRODUCTION, PriorityClass.DEVELOPMENT])
        assert (np.random.get_state()[1] == state).all()
