"""The pluggable algorithm suite: registry, FIFO, EASY, routing, sweep sim."""

import pytest

from repro.errors import AlgorithmError
from repro.scheduling.algorithms import (
    Decision,
    EasyBackfill,
    FifoPriority,
    PendingJob,
    PolicyRouting,
    ResourceView,
    RunningUnit,
    SchedulingAlgorithm,
    SimJob,
    SystemView,
    available,
    get_algorithm,
    register,
    simulate,
)


class TestRegistry:
    def test_all_disciplines_registered(self):
        names = available()
        for expected in (
            "fifo-priority",
            "easy-backfill",
            "agreement-elastic",
            "policy-routing",
            "cluster-legacy",
        ):
            assert expected in names

    def test_get_by_name(self):
        assert isinstance(get_algorithm("fifo-priority"), FifoPriority)
        assert isinstance(get_algorithm("easy-backfill"), EasyBackfill)

    def test_unknown_name_raises(self):
        with pytest.raises(AlgorithmError, match="unknown"):
            get_algorithm("galactic-random")

    def test_duplicate_registration_raises(self):
        with pytest.raises(AlgorithmError, match="already registered"):

            @register
            class Dup(SchedulingAlgorithm):
                name = "fifo-priority"

    def test_unnamed_registration_raises(self):
        with pytest.raises(AlgorithmError, match="name"):

            @register
            class NoName(SchedulingAlgorithm):
                pass

    def test_base_schedule_is_abstract(self):
        with pytest.raises(NotImplementedError):
            SchedulingAlgorithm().schedule((), (), SystemView(now=0.0))


def _views(jobs, total=4, free=4, running=(), now=0.0):
    resources = (
        ResourceView(name="r0", total_units=total, free_units=free, running=tuple(running)),
    )
    return tuple(jobs), resources, SystemView(now=now)


class TestFifoPriority:
    def test_priority_then_sequence_order(self):
        pending, resources, system = _views(
            [
                PendingJob(job_id="late-prod", priority=0, submit_seq=5, units=1),
                PendingJob(job_id="dev", priority=2, submit_seq=1, units=1),
                PendingJob(job_id="early-prod", priority=0, submit_seq=2, units=1),
            ]
        )
        order = [
            d.job_id
            for d in FifoPriority().schedule(pending, resources, system)
            if d.kind == "start"
        ]
        assert order == ["early-prod", "late-prod", "dev"]

    def test_head_blocks_strictly(self):
        # 3-unit head over 2 free units: nothing behind it may start
        pending, resources, system = _views(
            [
                PendingJob(job_id="big", priority=0, submit_seq=0, units=3),
                PendingJob(job_id="small", priority=1, submit_seq=1, units=1),
            ],
            total=4,
            free=2,
        )
        decisions = FifoPriority().schedule(pending, resources, system)
        assert [d for d in decisions if d.kind == "start"] == []


class TestEasyBackfill:
    def _blocked_head_views(self):
        # r0: 4 units, 2 busy until t=5 — head needs 4, shorts need 1
        running = [RunningUnit(job_id="held", units=2, expected_end=5.0)]
        return _views(
            [
                PendingJob(job_id="head", priority=0, submit_seq=0, units=4,
                           estimated_runtime=10.0),
                PendingJob(job_id="short", priority=1, submit_seq=1, units=1,
                           estimated_runtime=2.0),
                PendingJob(job_id="long", priority=1, submit_seq=2, units=1,
                           estimated_runtime=50.0),
            ],
            total=4,
            free=2,
            running=running,
        )

    def test_reserves_head_and_backfills_safe_jobs_only(self):
        pending, resources, system = self._blocked_head_views()
        decisions = EasyBackfill().schedule(pending, resources, system)
        kinds = {d.job_id: d.kind for d in decisions}
        assert kinds["head"] == "reserve"
        assert kinds["short"] == "backfill"  # ends at 2.0 < shadow 5.0
        assert "long" not in kinds  # would overrun the reservation
        reserve = next(d for d in decisions if d.kind == "reserve")
        assert reserve.payload["shadow_time"] == pytest.approx(5.0)

    def test_no_backfill_mode_blocks_like_fifo(self):
        pending, resources, system = self._blocked_head_views()
        easy = EasyBackfill(backfill=False).schedule(pending, resources, system)
        fifo = FifoPriority().schedule(pending, resources, system)
        assert easy == fifo == []

    def test_greedy_starts_when_head_fits(self):
        pending, resources, system = _views(
            [PendingJob(job_id="a", priority=0, submit_seq=0, units=2,
                        estimated_runtime=1.0)],
            total=4,
            free=4,
        )
        decisions = EasyBackfill().schedule(pending, resources, system)
        assert [(d.kind, d.job_id) for d in decisions] == [("start", "a")]


class _ScriptedPolicy:
    """Legacy-shaped routing policy: records calls, returns by script."""

    def __init__(self, picks):
        self.picks = list(picks)
        self.calls = []

    def choose(self, job, candidates, now):
        self.calls.append((job, tuple(c.name for c in candidates), now))
        want = self.picks.pop(0)
        return next(c for c in candidates if c.name == want)


class _Snap:
    def __init__(self, name):
        self.name = name


class TestPolicyRouting:
    def test_calls_wrapped_policy_exactly_once_per_job(self):
        policy = _ScriptedPolicy(["beta"])
        snaps = [_Snap("alpha"), _Snap("beta")]
        pending = (PendingJob(job_id="j", units=1, native=object()),)
        resources = tuple(
            ResourceView(name=s.name, total_units=4, free_units=4, native=s)
            for s in snaps
        )
        decisions = PolicyRouting(policy=policy).schedule(
            pending, resources, SystemView(now=3.0)
        )
        assert decisions == [Decision(kind="place", job_id="j", resource="beta")]
        assert len(policy.calls) == 1
        assert policy.calls[0][1] == ("alpha", "beta")

    def test_least_loaded_fallback_without_policy(self):
        pending = (PendingJob(job_id="j", units=1),)
        resources = (
            ResourceView(name="busy", total_units=4, free_units=1),
            ResourceView(name="idle", total_units=4, free_units=4),
        )
        decisions = PolicyRouting().schedule(pending, resources, SystemView(now=0.0))
        assert decisions[0].resource == "idle"


class TestSweepSimulator:
    def _trace(self):
        return [
            SimJob(job_id="a", arrival=0.0, units=2, runtime=4.0),
            SimJob(job_id="b", arrival=0.0, units=2, runtime=4.0),
            SimJob(job_id="c", arrival=1.0, units=1, runtime=2.0),
        ]

    def test_conservation_and_metrics(self):
        report = simulate(get_algorithm("fifo-priority"), self._trace(), {"r0": 4})
        assert report.completed == 3
        assert report.makespan > 0
        assert 0.0 < report.utilization <= 1.0

    def test_every_registered_algorithm_completes_the_trace(self):
        for name in available():
            if name == "cluster-legacy":
                continue  # needs native cluster state, not sim-able
            report = simulate(get_algorithm(name), self._trace(), {"r0": 4})
            assert report.completed == 3, name

    def test_easy_beats_fifo_on_blocked_head_trace(self):
        # wide head arrives while half the machine is held: FIFO idles
        # the free units, EASY backfills the shorts into the hole
        jobs = [
            SimJob(job_id="hold", arrival=0.0, units=2, runtime=10.0),
            SimJob(job_id="head", arrival=1.0, units=4, runtime=5.0),
        ] + [
            SimJob(job_id=f"s{i}", arrival=1.0, units=1, runtime=2.0)
            for i in range(4)
        ]
        fifo = simulate(get_algorithm("fifo-priority"), jobs, {"r0": 4})
        easy = simulate(get_algorithm("easy-backfill"), jobs, {"r0": 4})
        assert easy.makespan < fifo.makespan
        assert easy.backfills > 0
