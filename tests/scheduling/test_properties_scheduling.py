"""Property-based tests for scheduling policies (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling import (
    MalleablePool,
    MalleableTask,
    PatternAwarePlanner,
    SequentialPlanner,
    TimeshareAllocator,
)
from repro.scheduling.interleave import HybridJobEstimate


estimate_strategy = st.builds(
    HybridJobEstimate,
    job_name=st.uuids().map(str),
    qpu_seconds=st.floats(min_value=1.0, max_value=1000.0),
    classical_seconds=st.floats(min_value=0.0, max_value=1000.0),
)


class TestPlannerProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(estimate_strategy, min_size=1, max_size=20))
    def test_every_job_planned_exactly_once(self, jobs):
        for planner in (SequentialPlanner(), PatternAwarePlanner()):
            plan = planner.plan(jobs)
            planned = sorted(j.job_name for j in plan.jobs())
            assert planned == sorted(j.job_name for j in jobs)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(estimate_strategy, min_size=1, max_size=20))
    def test_wave_load_never_exceeds_target_for_multi_job_waves(self, jobs):
        planner = PatternAwarePlanner(target_load=1.0, max_concurrency=8)
        plan = planner.plan(jobs)
        for wave in plan.waves:
            if len(wave) > 1:
                assert sum(j.qpu_fraction for j in wave) <= 1.0 + 1e-6
            assert len(wave) <= 8

    @settings(max_examples=40, deadline=None)
    @given(st.lists(estimate_strategy, min_size=1, max_size=15))
    def test_interleaved_predicted_makespan_never_worse(self, jobs):
        seq = SequentialPlanner().plan(jobs).predicted_makespan()
        inter = PatternAwarePlanner().plan(jobs).predicted_makespan()
        assert inter <= seq + 1e-6


class TestMalleableProperties:
    task_strategy = st.builds(
        dict,
        work=st.floats(min_value=1.0, max_value=5000.0),
        serial=st.floats(min_value=0.0, max_value=0.5),
    )

    @settings(max_examples=30, deadline=None)
    @given(st.lists(task_strategy, min_size=1, max_size=8))
    def test_malleable_never_loses_to_rigid(self, specs):
        def tasks():
            return [
                MalleableTask(f"t{i}", work_cpu_seconds=s["work"],
                              serial_fraction=s["serial"], max_cpus=32)
                for i, s in enumerate(specs)
            ]

        rigid = MalleablePool(32, malleable=False).makespan(tasks())
        flexible = MalleablePool(32, malleable=True).makespan(tasks())
        assert flexible <= rigid * 1.0001

    @settings(max_examples=30, deadline=None)
    @given(st.lists(task_strategy, min_size=1, max_size=8))
    def test_all_tasks_finish_with_full_work_done(self, specs):
        tasks = [
            MalleableTask(f"t{i}", work_cpu_seconds=s["work"],
                          serial_fraction=s["serial"], max_cpus=32)
            for i, s in enumerate(specs)
        ]
        finish = MalleablePool(32, malleable=True).run(tasks)
        assert set(finish) == {t.name for t in tasks}
        for task in tasks:
            assert task.remaining_work == pytest.approx(0.0, abs=1e-6)
            assert task.finished_at is not None

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=1.0, max_value=1000.0))
    def test_makespan_lower_bound_is_perfect_parallel_time(self, work):
        """No schedule can beat total_work / pool_size for serial=0."""
        task = MalleableTask("t", work_cpu_seconds=work, serial_fraction=0.0, max_cpus=16)
        makespan = MalleablePool(16, malleable=True).makespan([task])
        assert makespan >= work / 16 - 1e-9


class TestTimeshareProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=4),
    )
    def test_allocator_conservation(self, grants):
        alloc = TimeshareAllocator(total_units=20)
        granted = 0
        for i, units in enumerate(grants):
            if granted + units <= 20:
                alloc.grant(f"tenant-{i}", units)
                granted += units
        assert alloc.allocated == granted
        assert alloc.allocated + alloc.available == 20
        # shares sum to allocated fraction
        total_share = sum(alloc.share(t) for t in alloc.holdings())
        assert total_share == pytest.approx(granted / 20)
