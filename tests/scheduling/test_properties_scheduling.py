"""Property-based tests for scheduling policies (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling import (
    MalleablePool,
    MalleableTask,
    PatternAwarePlanner,
    SequentialPlanner,
    TimeshareAllocator,
)
from repro.scheduling.interleave import HybridJobEstimate


estimate_strategy = st.builds(
    HybridJobEstimate,
    job_name=st.uuids().map(str),
    qpu_seconds=st.floats(min_value=1.0, max_value=1000.0),
    classical_seconds=st.floats(min_value=0.0, max_value=1000.0),
)


class TestPlannerProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(estimate_strategy, min_size=1, max_size=20))
    def test_every_job_planned_exactly_once(self, jobs):
        for planner in (SequentialPlanner(), PatternAwarePlanner()):
            plan = planner.plan(jobs)
            planned = sorted(j.job_name for j in plan.jobs())
            assert planned == sorted(j.job_name for j in jobs)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(estimate_strategy, min_size=1, max_size=20))
    def test_wave_load_never_exceeds_target_for_multi_job_waves(self, jobs):
        planner = PatternAwarePlanner(target_load=1.0, max_concurrency=8)
        plan = planner.plan(jobs)
        for wave in plan.waves:
            if len(wave) > 1:
                assert sum(j.qpu_fraction for j in wave) <= 1.0 + 1e-6
            assert len(wave) <= 8

    @settings(max_examples=40, deadline=None)
    @given(st.lists(estimate_strategy, min_size=1, max_size=15))
    def test_interleaved_predicted_makespan_never_worse(self, jobs):
        seq = SequentialPlanner().plan(jobs).predicted_makespan()
        inter = PatternAwarePlanner().plan(jobs).predicted_makespan()
        assert inter <= seq + 1e-6


class TestMalleableProperties:
    task_strategy = st.builds(
        dict,
        work=st.floats(min_value=1.0, max_value=5000.0),
        serial=st.floats(min_value=0.0, max_value=0.5),
    )

    @settings(max_examples=30, deadline=None)
    @given(st.lists(task_strategy, min_size=1, max_size=8))
    def test_malleable_never_loses_to_rigid(self, specs):
        def tasks():
            return [
                MalleableTask(f"t{i}", work_cpu_seconds=s["work"],
                              serial_fraction=s["serial"], max_cpus=32)
                for i, s in enumerate(specs)
            ]

        rigid = MalleablePool(32, malleable=False).makespan(tasks())
        flexible = MalleablePool(32, malleable=True).makespan(tasks())
        assert flexible <= rigid * 1.0001

    @settings(max_examples=30, deadline=None)
    @given(st.lists(task_strategy, min_size=1, max_size=8))
    def test_all_tasks_finish_with_full_work_done(self, specs):
        tasks = [
            MalleableTask(f"t{i}", work_cpu_seconds=s["work"],
                          serial_fraction=s["serial"], max_cpus=32)
            for i, s in enumerate(specs)
        ]
        finish = MalleablePool(32, malleable=True).run(tasks)
        assert set(finish) == {t.name for t in tasks}
        for task in tasks:
            assert task.remaining_work == pytest.approx(0.0, abs=1e-6)
            assert task.finished_at is not None

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=1.0, max_value=1000.0))
    def test_makespan_lower_bound_is_perfect_parallel_time(self, work):
        """No schedule can beat total_work / pool_size for serial=0."""
        task = MalleableTask("t", work_cpu_seconds=work, serial_fraction=0.0, max_cpus=16)
        makespan = MalleablePool(16, malleable=True).makespan([task])
        assert makespan >= work / 16 - 1e-9

    # -- run() edge cases -------------------------------------------------

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=4),
        st.lists(
            st.floats(min_value=1.0, max_value=500.0), min_size=1, max_size=12
        ),
    )
    def test_zero_cpu_grants_respect_pool_capacity(self, cpus, works):
        """Oversubscription grants zero CPUs instead of inventing cores:
        the aggregate consumption rate can never exceed the pool, so the
        makespan is bounded below by perfect parallelism and above by a
        fully serial schedule."""
        tasks = [
            MalleableTask(f"t{i}", work_cpu_seconds=w, serial_fraction=0.0)
            for i, w in enumerate(works)
        ]
        finish = MalleablePool(cpus, malleable=True).run(tasks)
        assert set(finish) == {t.name for t in tasks}
        makespan = max(finish.values())
        total = sum(works)
        assert makespan >= total / cpus - 1e-6
        assert makespan <= total + 1e-6

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=2, max_value=8),
        st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=200.0),
                st.integers(min_value=1, max_value=4),
            ),
            min_size=1,
            max_size=6,
        ),
    )
    def test_min_cpus_floors_never_oversubscribe(self, cpus, specs):
        """min_cpus > 1 floors must not grant more aggregate CPUs than
        the pool holds (the makespan lower bound stays physical)."""
        from hypothesis import assume

        assume(all(m <= cpus for _, m in specs))
        tasks = [
            MalleableTask(
                f"t{i}", work_cpu_seconds=w, serial_fraction=0.0, min_cpus=m
            )
            for i, (w, m) in enumerate(specs)
        ]
        finish = MalleablePool(cpus, malleable=True).run(tasks)
        total = sum(w for w, _ in specs)
        assert max(finish.values()) >= total / cpus - 1e-6

    def test_zero_cpu_grants_run_in_waves(self):
        """5 equal tasks on 2 CPUs: two waves of pairs (the overflow
        waits on zero CPUs), then the lone survivor grows to the whole
        pool and finishes in half the time."""
        tasks = [
            MalleableTask(f"t{i}", work_cpu_seconds=10.0, serial_fraction=0.0)
            for i in range(5)
        ]
        finish = MalleablePool(2, malleable=True).run(tasks)
        assert sorted(finish.values()) == pytest.approx([10, 10, 20, 20, 25])

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=2, max_value=8),
        st.floats(min_value=1.0, max_value=500.0),
        st.floats(min_value=0.0, max_value=0.5),
    )
    def test_simultaneous_finish_at_resize_boundary(self, n, work, serial):
        """Identical tasks all finish at exactly the same boundary —
        the resize that fires there must not double-count work or spin."""
        tasks = [
            MalleableTask(
                f"t{i}", work_cpu_seconds=work, serial_fraction=serial, max_cpus=64
            )
            for i in range(n)
        ]
        finish = MalleablePool(64, malleable=True).run(tasks)
        times = list(finish.values())
        assert all(t == pytest.approx(times[0]) for t in times)
        for task in tasks:
            assert task.remaining_work == pytest.approx(0.0, abs=1e-6)

    def test_finish_exactly_at_resize_boundary_then_regrow(self):
        """One task finishes exactly when another does: the survivor's
        regrow happens once, at the shared boundary."""
        a = MalleableTask("a", work_cpu_seconds=8.0, serial_fraction=0.0, max_cpus=8)
        b = MalleableTask("b", work_cpu_seconds=8.0, serial_fraction=0.0, max_cpus=8)
        c = MalleableTask("c", work_cpu_seconds=24.0, serial_fraction=0.0, max_cpus=8)
        # 8 CPUs / 3 live -> 2 each; a and b finish together at t=4 with
        # c at 24-8=16 left; c then takes the whole pool: 4 + 16/8 = 6
        finish = MalleablePool(8, malleable=True).run([a, b, c])
        assert finish["a"] == pytest.approx(4.0)
        assert finish["b"] == pytest.approx(4.0)
        assert finish["c"] == pytest.approx(6.0)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=1.0, max_value=500.0),
        st.floats(min_value=0.0, max_value=0.5),
    )
    def test_rigid_parity_for_symmetric_workloads(self, n, work, serial):
        """With identical tasks and a pool an exact multiple of n, there
        is nothing for malleability to exploit: malleable=True must
        reproduce the rigid path exactly."""
        total = 8 * n

        def tasks():
            return [
                MalleableTask(
                    f"t{i}",
                    work_cpu_seconds=work,
                    serial_fraction=serial,
                    max_cpus=total,
                )
                for i in range(n)
            ]

        rigid = MalleablePool(total, malleable=False).run(tasks())
        flexible = MalleablePool(total, malleable=True).run(tasks())
        assert set(rigid) == set(flexible)
        for name in rigid:
            assert flexible[name] == pytest.approx(rigid[name])


class TestTimeshareProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=4),
    )
    def test_allocator_conservation(self, grants):
        alloc = TimeshareAllocator(total_units=20)
        granted = 0
        for i, units in enumerate(grants):
            if granted + units <= 20:
                alloc.grant(f"tenant-{i}", units)
                granted += units
        assert alloc.allocated == granted
        assert alloc.allocated + alloc.available == 20
        # shares sum to allocated fraction
        total_share = sum(alloc.share(t) for t in alloc.holdings())
        assert total_share == pytest.approx(granted / 20)
