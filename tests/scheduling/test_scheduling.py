"""Tests for patterns, interleaving, malleability, timeshares, metrics."""

import pytest

from repro.errors import SchedulerError
from repro.scheduling import (
    MalleablePool,
    MalleableTask,
    PatternAwarePlanner,
    SchedulerHint,
    SequentialPlanner,
    TimeshareAllocator,
    WeightedFairPolicy,
    WorkloadPattern,
    classify_pattern,
    hint_for_pattern,
)
from repro.scheduling.interleave import HybridJobEstimate
from repro.scheduling.patterns import PATTERN_TABLE


class TestPatterns:
    def test_classification_thresholds(self):
        assert classify_pattern(90, 10) is WorkloadPattern.HIGH_QC_LOW_CC
        assert classify_pattern(10, 90) is WorkloadPattern.LOW_QC_HIGH_CC
        assert classify_pattern(50, 50) is WorkloadPattern.BALANCED

    def test_edge_cases(self):
        assert classify_pattern(100, 0) is WorkloadPattern.HIGH_QC_LOW_CC
        assert classify_pattern(0, 100) is WorkloadPattern.LOW_QC_HIGH_CC
        with pytest.raises(SchedulerError):
            classify_pattern(0, 0)
        with pytest.raises(SchedulerError):
            classify_pattern(-1, 5)

    def test_hint_round_trip(self):
        for pattern in WorkloadPattern:
            assert hint_for_pattern(pattern).pattern is pattern

    def test_hint_parse(self):
        assert SchedulerHint.parse("qc-balanced") is SchedulerHint.QC_BALANCED
        with pytest.raises(SchedulerError):
            SchedulerHint.parse("qc-mega")

    def test_pattern_table_matches_paper(self):
        """Table 1 has exactly three rows with the paper's hints."""
        assert len(PATTERN_TABLE) == 3
        hints = [row.scheduler_hint for row in PATTERN_TABLE]
        assert hints == [
            "Sequential QPU queue",
            "Interleave jobs to kill QPU idle time",
            "Fine-grained orchestration",
        ]


class TestInterleavePlanner:
    def jobs(self):
        return [
            HybridJobEstimate("qc1", qpu_seconds=300, classical_seconds=30),
            HybridJobEstimate("qc2", qpu_seconds=300, classical_seconds=30),
            HybridJobEstimate("cc1", qpu_seconds=30, classical_seconds=600),
            HybridJobEstimate("cc2", qpu_seconds=30, classical_seconds=600),
            HybridJobEstimate("bal", qpu_seconds=120, classical_seconds=120),
        ]

    def test_sequential_one_per_wave(self):
        plan = SequentialPlanner().plan(self.jobs())
        assert plan.num_waves == 5
        assert all(len(w) == 1 for w in plan.waves)

    def test_pattern_aware_packs_complementary_jobs(self):
        plan = PatternAwarePlanner(target_load=1.0).plan(self.jobs())
        assert plan.num_waves < 5
        # some wave must mix a QC-heavy with CC-heavy job
        mixed = any(
            {j.pattern for j in wave}
            >= {WorkloadPattern.HIGH_QC_LOW_CC, WorkloadPattern.LOW_QC_HIGH_CC}
            for wave in plan.waves
        )
        assert mixed

    def test_pattern_aware_beats_sequential_makespan(self):
        jobs = self.jobs()
        seq = SequentialPlanner().plan(jobs).predicted_makespan()
        inter = PatternAwarePlanner().plan(jobs).predicted_makespan()
        assert inter < seq

    def test_all_jobs_planned_once(self):
        jobs = self.jobs()
        plan = PatternAwarePlanner().plan(jobs)
        assert sorted(j.job_name for j in plan.jobs()) == sorted(j.job_name for j in jobs)

    def test_pure_qc_stream_degenerates_to_sequential(self):
        jobs = [
            HybridJobEstimate(f"qc{i}", qpu_seconds=100, classical_seconds=5)
            for i in range(4)
        ]
        plan = PatternAwarePlanner(target_load=1.0).plan(jobs)
        # fractions ~0.95 each: no two fit a wave
        assert plan.num_waves == 4

    def test_utilization_prediction(self):
        jobs = self.jobs()
        seq_util = SequentialPlanner().plan(jobs).predicted_qpu_utilization()
        inter_util = PatternAwarePlanner().plan(jobs).predicted_qpu_utilization()
        assert inter_util > seq_util

    def test_planner_validation(self):
        with pytest.raises(SchedulerError):
            PatternAwarePlanner(target_load=0.0)
        with pytest.raises(SchedulerError):
            PatternAwarePlanner(max_concurrency=0)


class TestMalleable:
    def test_amdahl_speedup(self):
        task = MalleableTask("t", work_cpu_seconds=100.0, serial_fraction=0.1)
        assert task.speedup(1) == pytest.approx(1.0)
        assert task.speedup(10) == pytest.approx(1.0 / (0.1 + 0.09))
        # diminishing returns
        assert task.speedup(1000) < 10.0

    def test_single_task_gets_whole_pool(self):
        pool = MalleablePool(total_cpus=16)
        task = MalleableTask("t", work_cpu_seconds=100.0, serial_fraction=0.0, max_cpus=16)
        finish = pool.run([task])
        assert finish["t"] == pytest.approx(100.0 / 16.0)

    def test_malleable_grows_after_departure(self):
        """Second task should speed up once the first finishes."""
        pool = MalleablePool(total_cpus=8)
        short = MalleableTask("short", work_cpu_seconds=8.0, serial_fraction=0.0, max_cpus=8)
        long = MalleableTask("long", work_cpu_seconds=80.0, serial_fraction=0.0, max_cpus=8)
        finish = pool.run([short, long])
        # static halves: long would take 80/4 = 20s. malleable: 4 cpus until
        # short done (t=2), then 8 cpus: 2 + (80-8)/8 = 11
        assert finish["long"] == pytest.approx(11.0)

    def test_static_baseline_slower(self):
        def tasks():
            return [
                MalleableTask("a", work_cpu_seconds=8.0, serial_fraction=0.0, max_cpus=8),
                MalleableTask("b", work_cpu_seconds=80.0, serial_fraction=0.0, max_cpus=8),
            ]

        rigid = MalleablePool(total_cpus=8, malleable=False).makespan(tasks())
        flexible = MalleablePool(total_cpus=8, malleable=True).makespan(tasks())
        assert flexible < rigid

    def test_validation(self):
        with pytest.raises(SchedulerError):
            MalleableTask("t", work_cpu_seconds=0.0)
        with pytest.raises(SchedulerError):
            MalleablePool(total_cpus=0)


class TestTimeshare:
    def test_grant_revoke_accounting(self):
        alloc = TimeshareAllocator(total_units=10)
        alloc.grant("alice", 6)
        alloc.grant("bob", 4)
        assert alloc.available == 0
        assert alloc.share("alice") == pytest.approx(0.6)
        with pytest.raises(SchedulerError):
            alloc.grant("carol", 1)
        assert alloc.revoke("bob") == 4
        assert alloc.available == 4

    def test_slurm_license_mapping(self):
        alloc = TimeshareAllocator(total_units=10)
        assert alloc.as_slurm_licenses() == {"qpu_share": 10}

    def test_weighted_fair_converges_to_shares(self):
        """70/30 grant -> long-run served time ~70/30."""
        from repro.daemon.queue import MiddlewareQueue, PriorityClass

        alloc = TimeshareAllocator(total_units=10)
        alloc.grant("alice", 7)
        alloc.grant("bob", 3)
        policy = WeightedFairPolicy(alloc, estimate_seconds=lambda t: 10.0)
        queue = MiddlewareQueue(shot_cap=None)

        # a steady backlog from both tenants
        from tests.daemon.test_http_auth_sessions import make_program

        now = 0.0
        for _ in range(40):
            for user in ("alice", "bob"):
                queue.submit("s", user, make_program(), PriorityClass.TEST, "qpu", now)
        # drain 30 selections, 10 simulated seconds apart
        for _ in range(30):
            task = policy([t for t in queue.all_tasks() if t.state.value == "queued"], now)
            assert task is not None
            task.state = task.state.__class__.COMPLETED
            now += 10.0
        shares = policy.observed_shares()
        assert shares["alice"] == pytest.approx(0.7, abs=0.12)
        assert shares["bob"] == pytest.approx(0.3, abs=0.12)


class TestMetrics:
    def test_qpu_busy_fraction(self):
        from repro.scheduling import qpu_busy_fraction
        from repro.simkernel import TraceRecorder

        trace = TraceRecorder()
        trace.emit(0.0, "qpu", "busy_start", task_id="a")
        trace.emit(30.0, "qpu", "busy_end", task_id="a")
        trace.emit(50.0, "qpu", "busy_start", task_id="b")
        trace.emit(100.0, "qpu", "busy_end", task_id="b")
        assert qpu_busy_fraction(trace, horizon=100.0) == pytest.approx(0.8)

    def test_scheduling_metrics_from_traces(self):
        from repro.scheduling import SchedulingMetrics
        from repro.simkernel import TraceRecorder

        qpu = TraceRecorder()
        daemon = TraceRecorder()
        daemon.emit(0.0, "daemon", "task_enqueued", task_id="t1", priority="production")
        daemon.emit(5.0, "daemon", "task_start", task_id="t1", priority="production", wait=5.0)
        qpu.emit(5.0, "qpu", "busy_start", task_id="t1")
        qpu.emit(25.0, "qpu", "busy_end", task_id="t1")
        daemon.emit(25.0, "daemon", "task_end", task_id="t1", state="completed", priority="production")
        metrics = SchedulingMetrics.from_traces(qpu, daemon)
        assert metrics.tasks_completed == 1
        assert metrics.makespan == pytest.approx(25.0)
        assert metrics.qpu_utilization == pytest.approx(0.8)
        assert metrics.wait_by_class["production"]["mean"] == pytest.approx(5.0)

    def test_row_rendering(self):
        from repro.scheduling import SchedulingMetrics

        metrics = SchedulingMetrics(
            horizon=100.0,
            qpu_utilization=0.75,
            qpu_idle_seconds=25.0,
            makespan=90.0,
            tasks_completed=4,
        )
        row = metrics.row("test-scenario")
        assert row["scenario"] == "test-scenario"
        assert row["qpu_util_%"] == 75.0
