"""Property tests for the EASY ``delays_head`` safety invariant.

EASY's guarantee is *per decision*: a backfill is only legal if it
provably cannot push the reservation of the job that is head **at that
instant**.  With mixed priorities and staggered arrivals a later,
higher-priority head can still inherit delay from an earlier (legal)
backfill — that is the textbook EASY trade-off, not a bug — so the
schedule-level form of the property is asserted only for batch
workloads (everything queued at t=0, one priority class), where the
head identity cannot be usurped mid-run.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling.algorithms import (
    EasyBackfill,
    PendingJob,
    ResourceView,
    RunningUnit,
    SimJob,
    SystemView,
    simulate,
)

_jobs = st.lists(
    st.builds(
        dict,
        arrival=st.floats(min_value=0.0, max_value=20.0),
        units=st.integers(min_value=1, max_value=6),
        runtime=st.floats(min_value=0.5, max_value=30.0),
        priority=st.integers(min_value=0, max_value=2),
    ),
    min_size=1,
    max_size=14,
)

_batch_jobs = st.lists(
    st.builds(
        dict,
        units=st.integers(min_value=1, max_value=6),
        runtime=st.floats(min_value=0.5, max_value=30.0),
    ),
    min_size=1,
    max_size=14,
)

_pass_state = st.builds(
    dict,
    held=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=3),  # units
            st.floats(min_value=0.5, max_value=50.0),  # expected end
        ),
        max_size=3,
    ),
    queue=st.lists(
        st.builds(
            dict,
            units=st.integers(min_value=1, max_value=6),
            runtime=st.floats(min_value=0.0, max_value=40.0),
            priority=st.integers(min_value=0, max_value=2),
        ),
        min_size=1,
        max_size=10,
    ),
)


def _trace(raw):
    return [SimJob(job_id=f"j{i}", **params) for i, params in enumerate(raw)]


class TestDelaysHeadProperty:
    @settings(max_examples=200, deadline=None)
    @given(state=_pass_state)
    def test_pass_backfills_never_push_the_reservation(self, state):
        """The core safety rule, per pass: after all backfills commit,
        the shadow resource still frees at least ``head.units`` by the
        reserved shadow instant."""
        capacity = 6
        held = []
        used = 0
        for units, end in state["held"]:
            if used + units > capacity:
                break
            held.append(RunningUnit(job_id=f"h{len(held)}", units=units, expected_end=end))
            used += units
        resources = (
            ResourceView(
                name="r0",
                total_units=capacity,
                free_units=capacity - used,
                running=tuple(held),
            ),
        )
        pending = tuple(
            PendingJob(
                job_id=f"j{i}",
                priority=p["priority"],
                submit_seq=i,
                units=p["units"],
                estimated_runtime=p["runtime"],
            )
            for i, p in enumerate(state["queue"])
        )
        decisions = EasyBackfill().schedule(pending, resources, SystemView(now=0.0))
        reserve = next((d for d in decisions if d.kind == "reserve"), None)
        if reserve is None or reserve.resource is None:
            return  # no blocked head this pass — nothing to protect
        shadow = reserve.payload["shadow_time"]
        by_id = {j.job_id: j for j in pending}
        # occupancy on the reserved resource at the shadow instant:
        # pre-existing units still running, plus everything this pass
        # started there that cannot prove it drains in time
        still_held = sum(u.units for u in held if u.expected_end > shadow)
        for d in decisions:
            if d.kind not in ("start", "backfill") or d.resource != reserve.resource:
                continue
            job = by_id[d.job_id]
            end = math.inf if job.estimated_runtime <= 0 else job.estimated_runtime
            if end > shadow:
                still_held += job.units
        assert capacity - still_held >= reserve.units, decisions

    @settings(max_examples=150, deadline=None)
    @given(raw=_batch_jobs)
    def test_batch_head_never_delayed(self, raw):
        """Batch workload (one priority class, all queued at t=0): the
        first job the strict baseline blocks is head at every pass until
        it starts, so EASY must never start it later."""
        jobs = _trace(
            [dict(arrival=0.0, priority=0, **params) for params in raw]
        )
        pool = {"r0": 6}
        base = simulate(EasyBackfill(backfill=False), jobs, pool)
        easy = simulate(EasyBackfill(backfill=True), jobs, pool)
        assert base.completed == easy.completed == len(jobs)
        blocked = [j for j in jobs if base.start_times[j.job_id] > 1e-9]
        if not blocked:
            return
        head = min(blocked, key=lambda j: int(j.job_id[1:]))
        assert (
            easy.start_times[head.job_id] <= base.start_times[head.job_id] + 1e-9
        ), head.job_id

    @settings(max_examples=150, deadline=None)
    @given(raw=_jobs)
    def test_work_conservation(self, raw):
        """Backfill reorders work but never creates or destroys it: the
        busy integral matches the strict baseline on any trace."""
        jobs = _trace(raw)
        pool = {"r0": 6}
        base = simulate(EasyBackfill(backfill=False), jobs, pool)
        easy = simulate(EasyBackfill(backfill=True), jobs, pool)
        assert base.completed == easy.completed == len(jobs)
        base_work = base.utilization * base.makespan
        easy_work = easy.utilization * easy.makespan
        assert math.isclose(base_work, easy_work, rel_tol=1e-6, abs_tol=1e-6)

    @settings(max_examples=80, deadline=None)
    @given(raw=_jobs, capacity=st.integers(min_value=2, max_value=8))
    def test_capacity_never_overcommitted(self, raw, capacity):
        """One pass's starts + backfills never exceed the free units
        the algorithm was shown."""
        pending = tuple(
            PendingJob(
                job_id=f"j{i}",
                priority=p["priority"],
                submit_seq=i,
                units=min(p["units"], capacity),
                estimated_runtime=p["runtime"],
            )
            for i, p in enumerate(raw)
        )
        resources = (
            ResourceView(name="r0", total_units=capacity, free_units=capacity),
        )
        decisions = EasyBackfill().schedule(pending, resources, SystemView(now=0.0))
        committed = sum(
            d.units for d in decisions if d.kind in ("start", "backfill")
        )
        assert committed <= capacity
