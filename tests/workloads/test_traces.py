"""Tests for arrival-trace record/replay."""

import pytest

from repro.errors import SchedulerError
from repro.scheduling import WorkloadPattern
from repro.workloads import ArrivalTrace, StreamConfig
from repro.workloads.traces import TraceEntry


def make_trace(seed=0, num_jobs=8):
    return ArrivalTrace.from_stream_config(StreamConfig(num_jobs=num_jobs), root_seed=seed)


class TestRecordReplay:
    def test_record_matches_stream(self):
        trace = make_trace()
        assert len(trace) == 8
        assert trace.horizon > 0

    def test_jobs_reconstructed_identically(self):
        trace = make_trace()
        jobs = trace.jobs()
        for (arrival, job), entry in zip(jobs, trace.entries, strict=True):
            assert job.name == entry.name
            assert job.pattern.value == entry.pattern
            assert arrival == entry.arrival_s

    def test_same_seed_same_trace(self):
        a, b = make_trace(seed=3), make_trace(seed=3)
        assert a.entries == b.entries

    def test_different_seed_differs(self):
        assert make_trace(seed=1).entries != make_trace(seed=2).entries

    def test_pattern_mix(self):
        trace = make_trace(num_jobs=20)
        mix = trace.pattern_mix()
        assert sum(mix.values()) == 20
        assert set(mix) <= {"A", "B", "C"}


class TestSerialization:
    def test_json_roundtrip(self):
        trace = make_trace()
        again = ArrivalTrace.from_json(trace.to_json())
        assert again.entries == trace.entries

    def test_malformed_json(self):
        with pytest.raises(SchedulerError):
            ArrivalTrace.from_json("not json")
        with pytest.raises(SchedulerError):
            ArrivalTrace.from_json('[{"bogus": 1}]')

    def test_unordered_entries_rejected(self):
        entry = dict(
            arrival_s=5.0, name="x", user="u", pattern="A",
            shots_per_burst=10, classical_seconds=1.0, iterations=1, n_atoms=2,
        )
        later = TraceEntry(**entry)
        earlier = TraceEntry(**{**entry, "arrival_s": 1.0, "name": "y"})
        with pytest.raises(SchedulerError):
            ArrivalTrace([later, earlier])


class TestPolicyFairness:
    def test_replay_gives_identical_estimates_to_both_policies(self):
        """The point of traces: both planners see byte-identical input."""
        from repro.scheduling import PatternAwarePlanner, SequentialPlanner

        trace = make_trace(num_jobs=10)
        estimates_a = [job.estimate(1.0) for _, job in trace.jobs()]
        estimates_b = [job.estimate(1.0) for _, job in trace.jobs()]
        assert estimates_a == estimates_b
        plan_seq = SequentialPlanner().plan(estimates_a)
        plan_int = PatternAwarePlanner().plan(estimates_b)
        assert sorted(j.job_name for j in plan_seq.jobs()) == sorted(
            j.job_name for j in plan_int.jobs()
        )

    def test_trace_pattern_matches_reconstructed_job(self):
        trace = make_trace(num_jobs=15)
        for _, job in trace.jobs():
            estimate = job.estimate(1.0)
            assert estimate.pattern is WorkloadPattern(job.pattern.value)


class TestMultiSiteTrace:
    def test_merge_preserves_order_and_entries(self):
        a, b = make_trace(seed=1), make_trace(seed=2)
        merged = ArrivalTrace.merge(a, b)
        assert len(merged) == len(a) + len(b)
        times = [e.arrival_s for e in merged]
        assert times == sorted(times)

    def test_multi_site_trace_overlays_tenant_streams(self):
        from repro.workloads import multi_site_trace

        trace = multi_site_trace(
            streams=3, config=StreamConfig(num_jobs=5), root_seed=4
        )
        assert len(trace) == 15
        # distinct tenant populations, unique job names across the overlay
        tenants = {e.user.split("-")[0] for e in trace.entries}
        assert tenants == {"tenant0", "tenant1", "tenant2"}
        names = [e.name for e in trace.entries]
        assert len(names) == len(set(names))

    def test_multi_site_trace_is_reproducible(self):
        from repro.workloads import multi_site_trace

        one = multi_site_trace(streams=2, config=StreamConfig(num_jobs=4), root_seed=9)
        two = multi_site_trace(streams=2, config=StreamConfig(num_jobs=4), root_seed=9)
        assert one.to_json() == two.to_json()

    def test_rejects_zero_streams(self):
        from repro.workloads import multi_site_trace

        with pytest.raises(SchedulerError):
            multi_site_trace(streams=0)


class TestContentionBurstTrace:
    def test_burst_rides_on_background_stream(self):
        from repro.workloads import contention_burst_trace

        trace = contention_burst_trace(
            config=StreamConfig(num_jobs=4),
            streams=2,
            burst_at=300.0,
            burst_jobs=6,
            burst_spacing_s=2.0,
            root_seed=3,
        )
        burst = [e for e in trace.entries if e.user.startswith("burst-")]
        background = [e for e in trace.entries if not e.user.startswith("burst-")]
        assert len(burst) == 6 and len(background) == 8
        # the burst is tight: six quantum-heavy arrivals in ten seconds
        times = [e.arrival_s for e in burst]
        assert times == [300.0 + 2.0 * i for i in range(6)]
        assert all(e.pattern == WorkloadPattern.HIGH_QC_LOW_CC.value for e in burst)
        # the merge stays time-ordered and replayable
        all_times = [e.arrival_s for e in trace.entries]
        assert all_times == sorted(all_times)
        assert ArrivalTrace.from_json(trace.to_json()).to_json() == trace.to_json()

    def test_reproducible_and_validated(self):
        from repro.workloads import contention_burst_trace

        one = contention_burst_trace(burst_jobs=3, root_seed=11)
        two = contention_burst_trace(burst_jobs=3, root_seed=11)
        assert one.to_json() == two.to_json()
        with pytest.raises(SchedulerError):
            contention_burst_trace(burst_jobs=0)
        with pytest.raises(SchedulerError):
            contention_burst_trace(burst_at=-1.0)
